//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! implements the subset of criterion 0.5 that the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistics engine: each benchmark is warmed up once and then
//! timed for `measurement_time` (or `sample_size` iterations, whichever is
//! reached first), and the mean and minimum wall-clock times are printed.
//! That is enough to compare implementations locally and in CI smoke runs.
//!
//! Setting the environment variable `CRITERION_SMOKE=1` caps every benchmark
//! at 3 iterations so the whole suite can run as a CI smoke test.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("run", &mut f);
        group.finish();
        self
    }
}

/// Identifier of one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: function.to_owned(),
            parameter: parameter.to_string(),
        }
    }

    /// An id from a parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is always a single iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: fmt::Display,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let smoke = std::env::var_os("CRITERION_SMOKE").is_some();
        let samples = if smoke { 3 } else { self.sample_size };
        let budget = if smoke {
            Duration::from_millis(200)
        } else {
            self.measurement_time
        };
        let mut bencher = Bencher {
            samples,
            budget,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("  {}/{id}: no iterations run", self.name);
            return;
        }
        let mean = bencher.total / bencher.iters as u32;
        println!(
            "  {}/{id}: mean {:>12?}  min {:>12?}  ({} iters)",
            self.name, mean, bencher.min, bencher.iters
        );
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording wall-clock time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
