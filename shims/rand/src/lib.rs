//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! provides the (small, fully deterministic) subset of the rand 0.8 API that
//! the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for data generation and
//! reproducible across platforms. The streams differ from the real crate's
//! `StdRng` (ChaCha12), which only matters if datasets generated here are
//! compared byte-for-byte against ones generated with the real crate.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The low-level entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits -> [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128) + 1) as u128;
                ((start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(4..=12);
            assert!((4..=12).contains(&x));
            let y = rng.gen_range(0u32..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious bias: {trues}");
    }
}
