//! Collection strategies (`prop::collection::vec` / `hash_set`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` of `size.start..size.end` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet`s; duplicates drawn from `element` collapse, so the
/// set may be smaller than the drawn length (the real proptest retries — for
/// testing set semantics the collapsed behaviour is equivalent).
#[derive(Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `HashSet` of roughly `size.start..size.end` elements from `element`.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
