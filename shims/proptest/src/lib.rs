//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! implements the subset of proptest 1.x that the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   attribute) and the [`prop_assert!`]/[`prop_assert_eq!`] assertions,
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive` and
//!   `boxed`,
//! * range, tuple, `Just`, [`prop_oneof!`] union and
//!   [`collection`] (`vec` / `hash_set`) strategies,
//! * `any::<bool>()` via a minimal [`arbitrary::Arbitrary`].
//!
//! Semantics are the same "run the body on N random inputs" contract;
//! the differences from the real crate are that failing inputs are *not
//! shrunk* (the failing values are printed instead) and the RNG stream is
//! unrelated to the real proptest's. Each test function's stream is seeded
//! from its own name, so runs are fully deterministic.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` on `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = || {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg
                            ));
                        )+
                        s
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed with inputs:\n{}",
                            config.cases,
                            inputs()
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// `assert_ne!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}
