//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can be mixed.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| inner.generate(rng)),
        }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns the composite strategy. `depth` bounds the
    /// nesting; the remaining two parameters (target size hints in the real
    /// proptest) are accepted for signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            let shallower = current;
            // Mix the levels so generated structures have varying depth.
            current = BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| {
                    if rng.below(3) == 0 {
                        shallower.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several boxed strategies (the [`crate::prop_oneof!`]
/// macro).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $via).wrapping_sub(self.start as $via);
                self.start + (rng.next_u64() as $via % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "cannot sample empty range");
        loop {
            let v = lo + (rng.next_u64() % (hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
