//! Deterministic RNG and run configuration.

/// Configuration consumed by the [`crate::proptest!`] macro.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic generator (SplitMix64) seeded from the test's name, so every
/// run explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary string (the test function's name).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}
