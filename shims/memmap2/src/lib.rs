//! Offline stand-in for the `memmap2` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! provides the small subset of the memmap2 0.9 API the workspace uses:
//! [`MmapOptions::map`] / [`Mmap::map`] producing a read-only [`Mmap`] that
//! derefs to `&[u8]`.
//!
//! On unix the mapping is a real `mmap(2)` (`PROT_READ`, `MAP_PRIVATE`),
//! called through the C library that the Rust standard library already links
//! against — no external crate needed. On other platforms, for zero-length
//! files, or if the syscall fails, the file is read into an 8-byte-aligned
//! heap buffer instead; callers observe the same `&[u8]` either way, only
//! the paging behaviour differs. The buffer fallback keeps the alignment
//! guarantee the snapshot loader relies on (mapped bases are page-aligned;
//! the fallback allocates `u64` storage).

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    //! Direct bindings to the three libc symbols we need. The Rust standard
    //! library links libc on every unix target, so these resolve without any
    //! build-script or external crate.

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, length: usize) -> i32;
    }
}

/// How the bytes are held: a kernel mapping or an owned aligned buffer.
enum Backing {
    /// A live `mmap(2)` region (unmapped on drop).
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned storage, kept as `u64` words so the base is 8-byte aligned.
    Owned { words: Vec<u64>, len: usize },
}

// The mapping is immutable and private: no aliasing hazards beyond those of
// any shared `&[u8]`, so the handle can cross and be shared between threads.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// A read-only memory map of a file (or an owned aligned copy when mapping
/// is unavailable). Derefs to `&[u8]`.
pub struct Mmap {
    backing: Backing,
}

impl Mmap {
    /// Maps `file` read-only.
    ///
    /// # Safety
    /// As with the real memmap2 crate: the caller must ensure the underlying
    /// file is not truncated or mutated while the map is alive (on the
    /// fallback path the bytes are copied, which is trivially safe).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        MmapOptions::new().map(file)
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned { words, len } => unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, *len)
            },
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // Failure here is unrecoverable and harmless (the region just
            // stays mapped until process exit), so the result is ignored.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => "mapped",
            Backing::Owned { .. } => "owned",
        };
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("backing", &kind)
            .finish()
    }
}

/// Builder mirroring `memmap2::MmapOptions` (read-only subset).
#[derive(Debug, Default)]
pub struct MmapOptions {
    _private: (),
}

impl MmapOptions {
    /// Creates a default option set.
    pub fn new() -> MmapOptions {
        MmapOptions::default()
    }

    /// Maps `file` read-only. See [`Mmap::map`] for the safety contract.
    ///
    /// # Safety
    /// The caller must ensure the file is not truncated or mutated while the
    /// map is alive.
    pub unsafe fn map(&self, file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        // mmap(2) rejects zero-length mappings; an empty owned buffer is the
        // canonical empty map.
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let ptr = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr as usize != usize::MAX {
                return Ok(Mmap {
                    backing: Backing::Mapped { ptr, len },
                });
            }
            // Fall through to the owned-buffer fallback on failure.
        }
        read_aligned(file, len)
    }
}

/// Reads the whole file into an 8-byte-aligned buffer (the fallback path).
fn read_aligned(mut file: &File, len: usize) -> io::Result<Mmap> {
    let mut words = vec![0u64; len.div_ceil(8)];
    let bytes =
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8) };
    let mut read = 0;
    while read < len {
        match file.read(&mut bytes[read..len]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "file shrank while reading",
                ))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Mmap {
        backing: Backing::Owned { words, len },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(contents: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "memmap2-shim-test-{}-{}",
            std::process::id(),
            contents.len()
        ));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(contents).unwrap();
        }
        let file = File::open(&path).unwrap();
        (path, file)
    }

    #[test]
    fn maps_file_contents() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let (path, file) = temp_file(&data);
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&*map, &data[..]);
        // Page alignment (or the 8-byte fallback guarantee) for typed casts.
        assert_eq!(map.as_ptr() as usize % 8, 0);
        drop(map);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let (path, file) = temp_file(&[]);
        let map = unsafe { MmapOptions::new().map(&file) }.unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fallback_reader_is_aligned_and_exact() {
        let data = vec![7u8; 1234];
        let (path, file) = temp_file(&data);
        let map = read_aligned(&file, data.len()).unwrap();
        assert_eq!(&*map, &data[..]);
        assert_eq!(map.as_ptr() as usize % 8, 0);
        std::fs::remove_file(path).ok();
    }
}
