//! The L4All case study in miniature: generate the L1 data graph of the
//! paper, run the Figure 4 query set in exact, APPROX and RELAX mode, and
//! print answer counts, distance breakdowns and timings (Figures 5–8).
//!
//! Queries run through the `Database` prepared-statement cache: the second
//! and third operator variants of each query share nothing, but re-running
//! the binary-internal loop pays compilation once per distinct query text.
//!
//! ```text
//! cargo run --release --example l4all_study
//! ```

use std::time::Instant;

use omega::core::{Database, ExecOptions};
use omega::datagen::{generate_l4all, l4all_queries, L4AllConfig, L4AllScale};

fn main() {
    let config = L4AllConfig::at_scale(L4AllScale::L1);
    println!("generating L4All L1 ({} timelines)…", config.timelines);
    let data = generate_l4all(&config);
    println!(
        "graph: {} nodes, {} edges\n",
        data.graph.node_count(),
        data.graph.edge_count()
    );
    let db = Database::new(data.graph, data.ontology);

    println!(
        "{:<5} {:<8} {:>8} {:>10}  distance breakdown",
        "query", "mode", "answers", "time (ms)"
    );
    for spec in l4all_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            // Queries with ample exact answers are exact-only in the paper.
            if !spec.flexible_in_study && !operator.is_empty() {
                continue;
            }
            let text = spec.with_operator(operator);
            let mut request = ExecOptions::new();
            if !operator.is_empty() {
                request = request.with_limit(100);
            }
            let prepared = db.prepare(&text).expect("query compiles");
            let start = Instant::now();
            let answers = prepared.execute(&request).expect("query evaluates");
            let elapsed = start.elapsed();
            let mut by_distance = std::collections::BTreeMap::new();
            for a in &answers {
                *by_distance.entry(a.distance).or_insert(0usize) += 1;
            }
            let breakdown: Vec<String> = by_distance
                .iter()
                .filter(|(d, _)| **d > 0)
                .map(|(d, n)| format!("{d} ({n})"))
                .collect();
            println!(
                "{:<5} {:<8} {:>8} {:>10.2}  {}",
                spec.id,
                if operator.is_empty() {
                    "exact"
                } else {
                    operator
                },
                answers.len(),
                elapsed.as_secs_f64() * 1e3,
                breakdown.join(" ")
            );
        }
    }
}
