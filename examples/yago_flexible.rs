//! The YAGO case study: generate the YAGO-like graph, run the Figure 9
//! query set, and show how the Section 4.3 optimisations (distance-aware
//! retrieval, alternation→disjunction) change execution time for the
//! flexible queries.
//!
//! One shared `Database` serves both configurations: the optimisations are
//! toggled per request through `ExecOptions`, not by rebuilding an engine.
//!
//! ```text
//! cargo run --release --example yago_flexible [scale]
//! ```

use std::time::Instant;

use omega::core::{Database, ExecOptions, OmegaError};
use omega::datagen::{generate_yago, yago_queries, YagoConfig};

fn timed(db: &Database, text: &str, request: &ExecOptions) -> (usize, f64, bool) {
    let start = Instant::now();
    match db.execute(text, request) {
        Ok(answers) => (answers.len(), start.elapsed().as_secs_f64() * 1e3, false),
        Err(OmegaError::ResourceExhausted { .. }) => (0, start.elapsed().as_secs_f64() * 1e3, true),
        Err(other) => panic!("query failed: {other}"),
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("generating YAGO-like graph at scale {scale}…");
    let data = generate_yago(&YagoConfig::scaled(scale));
    println!(
        "graph: {} nodes, {} edges\n",
        data.graph.node_count(),
        data.graph.edge_count()
    );

    let db = Database::new(data.graph, data.ontology);

    // A memory budget turns the paper's out-of-memory failures into clean
    // errors (the '?' rows below). Like the optimisation toggles, it is a
    // per-request override.
    let budget = 2_000_000;
    let plain = ExecOptions::new().with_max_tuples(budget);
    let optimised = ExecOptions::new()
        .with_max_tuples(budget)
        .with_distance_aware(true)
        .with_disjunction_decomposition(true);

    println!(
        "{:<5} {:<8} {:>9} {:>12} {:>12}",
        "query", "mode", "answers", "plain (ms)", "optimised (ms)"
    );
    for spec in yago_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            if !spec.flexible_in_study && !operator.is_empty() {
                continue;
            }
            let text = spec.with_operator(operator);
            let (plain_req, opt_req) = if operator.is_empty() {
                (plain.clone(), optimised.clone())
            } else {
                (
                    plain.clone().with_limit(100),
                    optimised.clone().with_limit(100),
                )
            };
            let (count, plain_ms, plain_oom) = timed(&db, &text, &plain_req);
            let (_, opt_ms, opt_oom) = timed(&db, &text, &opt_req);
            println!(
                "{:<5} {:<8} {:>9} {:>12} {:>12}",
                spec.id,
                if operator.is_empty() {
                    "exact"
                } else {
                    operator
                },
                if plain_oom {
                    "?".into()
                } else {
                    count.to_string()
                },
                if plain_oom {
                    "?".into()
                } else {
                    format!("{plain_ms:.2}")
                },
                if opt_oom {
                    "?".into()
                } else {
                    format!("{opt_ms:.2}")
                },
            );
        }
    }
}
