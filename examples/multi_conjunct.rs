//! Multi-conjunct queries and the ranked join: combine an exact conjunct
//! with a RELAX one and watch combined answers arrive in non-decreasing
//! total distance through the streaming `Answers` handle.
//!
//! ```text
//! cargo run --example multi_conjunct
//! ```

use omega::core::{Database, ExecOptions};
use omega::datagen::{generate_l4all, L4AllConfig};

fn main() {
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);

    // Find learners (episodes) classified under Software Professionals whose
    // episode is followed by another episode — and relax the classification
    // conjunct so that siblings and superclasses also match, at a cost.
    let query = "(?E, ?N) <- RELAX (Software Professionals, type-.job-, ?E), (?E, next, ?N)";
    println!("query: {query}\n");
    let prepared = db.prepare(query).expect("query compiles");
    let answers = prepared
        .execute(&ExecOptions::new().with_limit(20))
        .expect("query evaluates");
    if answers.is_empty() {
        println!("no answers");
        return;
    }
    for a in &answers {
        println!("  {a}");
    }
    println!(
        "\n{} answers, total distances range {}..{}",
        answers.len(),
        answers.first().unwrap().distance,
        answers.last().unwrap().distance
    );

    // The same query with every conjunct exact, for comparison.
    let exact = db
        .execute(
            "(?E, ?N) <- (Software Professionals, type-.job-, ?E), (?E, next, ?N)",
            &ExecOptions::new().with_limit(20),
        )
        .expect("query evaluates");
    println!("exact version: {} answers", exact.len());

    // Multi-conjunct queries can evaluate their conjuncts on parallel worker
    // threads: each conjunct's ranked stream is produced concurrently over
    // the shared frozen graph and fed to the rank join through a bounded
    // channel. The answers — tuples, distances and order — are guaranteed
    // identical to sequential evaluation; only wall-clock time changes.
    let parallel = prepared
        .execute(
            &ExecOptions::new()
                .with_limit(20)
                .with_parallel_conjuncts(true),
        )
        .expect("query evaluates");
    assert_eq!(answers, parallel, "parallel evaluation is answer-identical");
    println!(
        "parallel evaluation returned the identical {} answers",
        parallel.len()
    );
}
