//! Quickstart: build a small graph and ontology by hand, open a shared
//! `Database` over them, and run exact, APPROX and RELAX queries through
//! prepared statements with per-request options.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use omega::core::{Database, ExecOptions};
use omega::graph::GraphStore;
use omega::ontology::Ontology;

fn main() {
    // ------------------------------------------------------------------
    // 1. A tiny knowledge graph: universities, people, places.
    // ------------------------------------------------------------------
    let mut graph = GraphStore::new();
    for (s, p, o) in [
        ("Birkbeck", "locatedIn", "London"),
        ("London", "locatedIn", "UK"),
        ("Imperial", "locatedIn", "London"),
        ("alice", "gradFrom", "Birkbeck"),
        ("bob", "gradFrom", "Imperial"),
        ("carol", "worksAt", "Birkbeck"),
        ("alice", "knows", "bob"),
        ("bob", "knows", "carol"),
        ("alice", "type", "Student"),
        ("bob", "type", "Researcher"),
        ("carol", "type", "Lecturer"),
    ] {
        graph.add_triple(s, p, o);
    }

    // ------------------------------------------------------------------
    // 2. A small RDFS-style ontology: Student/Researcher/Lecturer ⊑ Person,
    //    gradFrom and worksAt ⊑ affiliatedWith.
    // ------------------------------------------------------------------
    let mut ontology = Ontology::new();
    let person = graph.add_node("Person");
    for class in ["Student", "Researcher", "Lecturer"] {
        let c = graph.node_by_label(class).unwrap();
        ontology.add_subclass(c, person).unwrap();
    }
    let affiliated = graph.intern_label("affiliatedWith");
    for property in ["gradFrom", "worksAt"] {
        let p = graph.label_id(property).unwrap();
        ontology.add_subproperty(p, affiliated).unwrap();
    }

    // A `Database` freezes the graph into its CSR form and is Send + Sync:
    // clone the handle into as many threads as you need.
    let db = Database::new(graph, ontology);

    // ------------------------------------------------------------------
    // 3. Exact regular path queries. `execute` prepares (parse + compile)
    //    through the statement cache and collects the answers.
    // ------------------------------------------------------------------
    println!("== exact: who graduated from something located in London? ==");
    for a in db
        .execute(
            "(?X) <- (London, locatedIn-.gradFrom-, ?X)",
            &ExecOptions::new(),
        )
        .unwrap()
    {
        println!("  {a}");
    }

    // ------------------------------------------------------------------
    // 4. APPROX: the user got an edge direction wrong; approximation
    //    repairs the query and ranks answers by edit distance. Preparing
    //    once compiles the automata once, no matter how often it runs.
    // ------------------------------------------------------------------
    println!(
        "\n== APPROX: (UK, locatedIn-.locatedIn-.gradFrom, ?X) — wrong direction on gradFrom =="
    );
    let exact = db
        .execute(
            "(?X) <- (UK, locatedIn-.locatedIn-.gradFrom, ?X)",
            &ExecOptions::new(),
        )
        .unwrap();
    println!("  exact answers: {}", exact.len());
    let approx = db
        .prepare("(?X) <- APPROX (UK, locatedIn-.locatedIn-.gradFrom, ?X)")
        .unwrap();
    // Each request brings its own limit and wall-clock budget.
    let request = ExecOptions::new()
        .with_limit(5)
        .with_timeout(Duration::from_secs(2));
    for a in approx.execute(&request).unwrap() {
        println!("  {a}");
    }

    // ------------------------------------------------------------------
    // 5. RELAX: relax `worksAt` to its superproperty `affiliatedWith` and
    //    a class constant up the hierarchy; answers are ranked by
    //    relaxation distance. `answers` streams them one by one.
    // ------------------------------------------------------------------
    println!("\n== RELAX: everyone affiliated with Birkbeck ==");
    let relax = db
        .prepare("(?X) <- RELAX (Birkbeck, affiliatedWith-, ?X)")
        .unwrap();
    let mut stream = relax.answers(&ExecOptions::new());
    while let Some(a) = stream.next_answer().unwrap() {
        println!("  {a}");
    }
    println!("  ({} tuples processed)", stream.stats().tuples_processed);
    println!("\n== RELAX: instances of Student, then of its superclass ==");
    for a in db
        .execute("(?X) <- RELAX (Student, type-, ?X)", &ExecOptions::new())
        .unwrap()
    {
        println!("  {a}");
    }
}
