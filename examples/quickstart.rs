//! Quickstart: build a small graph and ontology by hand, then run exact,
//! APPROX and RELAX queries over it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use omega::core::{EvalOptions, Omega};
use omega::graph::GraphStore;
use omega::ontology::Ontology;

fn main() {
    // ------------------------------------------------------------------
    // 1. A tiny knowledge graph: universities, people, places.
    // ------------------------------------------------------------------
    let mut graph = GraphStore::new();
    for (s, p, o) in [
        ("Birkbeck", "locatedIn", "London"),
        ("London", "locatedIn", "UK"),
        ("Imperial", "locatedIn", "London"),
        ("alice", "gradFrom", "Birkbeck"),
        ("bob", "gradFrom", "Imperial"),
        ("carol", "worksAt", "Birkbeck"),
        ("alice", "knows", "bob"),
        ("bob", "knows", "carol"),
        ("alice", "type", "Student"),
        ("bob", "type", "Researcher"),
        ("carol", "type", "Lecturer"),
    ] {
        graph.add_triple(s, p, o);
    }

    // ------------------------------------------------------------------
    // 2. A small RDFS-style ontology: Student/Researcher/Lecturer ⊑ Person,
    //    gradFrom and worksAt ⊑ affiliatedWith.
    // ------------------------------------------------------------------
    let mut ontology = Ontology::new();
    let person = graph.add_node("Person");
    for class in ["Student", "Researcher", "Lecturer"] {
        let c = graph.node_by_label(class).unwrap();
        ontology.add_subclass(c, person).unwrap();
    }
    let affiliated = graph.intern_label("affiliatedWith");
    for property in ["gradFrom", "worksAt"] {
        let p = graph.label_id(property).unwrap();
        ontology.add_subproperty(p, affiliated).unwrap();
    }

    let omega = Omega::with_options(graph, ontology, EvalOptions::default());

    // ------------------------------------------------------------------
    // 3. Exact regular path queries.
    // ------------------------------------------------------------------
    println!("== exact: who graduated from something located in London? ==");
    for a in omega
        .execute("(?X) <- (London, locatedIn-.gradFrom-, ?X)", None)
        .unwrap()
    {
        println!("  {a}");
    }

    // ------------------------------------------------------------------
    // 4. APPROX: the user got an edge direction wrong; approximation
    //    repairs the query and ranks answers by edit distance.
    // ------------------------------------------------------------------
    println!("\n== APPROX: (UK, locatedIn-.gradFrom, ?X) — wrong direction on gradFrom ==");
    let exact = omega
        .execute("(?X) <- (UK, locatedIn-.locatedIn-.gradFrom, ?X)", None)
        .unwrap();
    println!("  exact answers: {}", exact.len());
    for a in omega
        .execute(
            "(?X) <- APPROX (UK, locatedIn-.locatedIn-.gradFrom, ?X)",
            Some(5),
        )
        .unwrap()
    {
        println!("  {a}");
    }

    // ------------------------------------------------------------------
    // 5. RELAX: relax `worksAt` to its superproperty `affiliatedWith` and
    //    a class constant up the hierarchy; answers are ranked by
    //    relaxation distance.
    // ------------------------------------------------------------------
    println!("\n== RELAX: everyone affiliated with Birkbeck ==");
    for a in omega
        .execute("(?X) <- RELAX (Birkbeck, affiliatedWith-, ?X)", None)
        .unwrap()
    {
        println!("  {a}");
    }
    println!("\n== RELAX: instances of Student, then of its superclass ==");
    for a in omega
        .execute("(?X) <- RELAX (Student, type-, ?X)", None)
        .unwrap()
    {
        println!("  {a}");
    }
}
