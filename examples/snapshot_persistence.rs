//! Snapshot persistence: build a database once, save it as a single binary
//! image, and re-open it with memory-mapped zero-copy CSR views.
//!
//! ```text
//! cargo run --example snapshot_persistence
//! ```

use std::time::Instant;

use omega::datagen::{generate_yago, YagoConfig};
use omega::{Database, ExecOptions};

fn main() {
    // Build once: generate the YAGO-like dataset and freeze the engine.
    let start = Instant::now();
    let dataset = generate_yago(&YagoConfig::scaled(0.25));
    let db = Database::new(dataset.graph, dataset.ontology);
    println!(
        "built: {} nodes, {} edges in {:.1?}",
        db.graph().node_count(),
        db.graph().edge_count(),
        start.elapsed()
    );

    // Save the frozen state as one versioned, checksummed image.
    let path = std::env::temp_dir().join("omega-example.snapshot");
    let start = Instant::now();
    db.save_snapshot(&path).expect("snapshot save");
    println!(
        "saved {} bytes to {} in {:.1?}",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display(),
        start.elapsed()
    );

    // Every later process opens in page-cache-warm-up time: the CSR arrays
    // and the node dictionary are served straight from the mapping.
    let start = Instant::now();
    let mapped = Database::open_snapshot(&path).expect("snapshot open");
    println!("opened in {:.1?}", start.elapsed());

    // Identical answers, identical order, identical statistics.
    let query = "(?X) <- APPROX (?X, type.wasBornIn, ?Y)";
    let request = ExecOptions::new().with_limit(5);
    let rebuilt_answers = db.execute(query, &request).expect("query");
    let mapped_answers = mapped.execute(query, &request).expect("query");
    assert_eq!(rebuilt_answers, mapped_answers);
    for answer in &mapped_answers {
        println!("  {answer:?}");
    }

    std::fs::remove_file(&path).ok();
}
