//! Snapshot persistence: round-trip fidelity, corruption handling, and
//! mapping-lifetime behaviour.
//!
//! The contract under test: a [`Database`] opened from a snapshot image is
//! *indistinguishable* from one rebuilt from the original graph and
//! ontology — identical answer sequences (same tuples, same rank order,
//! same distances) and identical [`EvalStats`] on the exact, APPROX and
//! RELAX query sets — while corruption of the image in any form surfaces as
//! a typed [`SnapshotError`] at open time, never a panic or a wrong answer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use omega::core::{EvalStats, SnapshotError};
use omega::datagen::{
    generate_l4all, generate_yago, l4all_multi_conjunct_queries, l4all_queries,
    yago_multi_conjunct_queries, yago_queries, Dataset, L4AllConfig, YagoConfig,
};
use omega::{Answer, Database, EvalOptions, ExecOptions, GraphStore, Ontology};
use proptest::prelude::*;

/// A unique temp path per call (tests and proptest cases run concurrently).
fn temp_snapshot(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "omega-snapshot-test-{}-{tag}-{}.snapshot",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Keeps a temp file until the end of the test even on panic.
struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn save_and_open(db: &Database, tag: &str) -> (Database, TempFile) {
    let path = temp_snapshot(tag);
    db.save_snapshot(&path).expect("snapshot save");
    let opened = Database::open_snapshot_with(&path, db.options().clone()).expect("snapshot open");
    (opened, TempFile(path))
}

/// Drains up to `limit` answers with parallelism forced off (so the
/// evaluator counters are deterministic) and returns them with the stats.
/// Compile failures (e.g. a query constant absent at this dataset scale)
/// are returned, not panicked: both databases must fail identically too.
fn drain(
    db: &Database,
    text: &str,
    limit: usize,
) -> Result<(Vec<Answer>, EvalStats), omega::core::OmegaError> {
    let prepared = db.prepare(text)?;
    let request = ExecOptions::new()
        .with_limit(limit)
        .with_parallel_conjuncts(false);
    let mut stream = prepared.answers(&request);
    let answers = stream.collect_up_to(None)?;
    Ok((answers, stream.stats()))
}

/// Asserts rebuilt and snapshot-backed databases agree on the full ordered
/// answer sequence *and* the evaluator counters for `text` — or fail with
/// the same error.
fn assert_identical(rebuilt: &Database, snapshot: &Database, text: &str, limit: usize) {
    match (drain(rebuilt, text, limit), drain(snapshot, text, limit)) {
        (Ok((expected, expected_stats)), Ok((got, got_stats))) => {
            assert_eq!(got, expected, "answer sequence diverged on {text}");
            assert_eq!(got_stats, expected_stats, "EvalStats diverged on {text}");
        }
        (Err(expected), Err(got)) => {
            assert_eq!(got, expected, "error diverged on {text}");
        }
        (expected, got) => {
            panic!("one side failed on {text}: rebuilt {expected:?}, snapshot {got:?}")
        }
    }
}

// ----------------------------------------------------------------------
// Round-trip fidelity on the paper's query sets
// ----------------------------------------------------------------------

fn dataset_db(dataset: &Dataset) -> Database {
    Database::with_options(
        dataset.graph.clone(),
        dataset.ontology.clone(),
        EvalOptions::default().with_max_tuples(Some(500_000)),
    )
}

#[test]
fn l4all_query_sets_are_bit_identical_after_reopen() {
    let dataset = generate_l4all(&L4AllConfig::tiny());
    let rebuilt = dataset_db(&dataset);
    let (snapshot, _guard) = save_and_open(&rebuilt, "l4all");
    for spec in l4all_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            assert_identical(&rebuilt, &snapshot, &spec.with_operator(operator), 100);
        }
    }
    for spec in l4all_multi_conjunct_queries() {
        for operator in ["", "APPROX"] {
            assert_identical(
                &rebuilt,
                &snapshot,
                &spec.with_operator_everywhere(operator),
                50,
            );
        }
    }
}

#[test]
fn yago_query_sets_are_bit_identical_after_reopen() {
    let dataset = generate_yago(&YagoConfig::scaled(0.1));
    let rebuilt = dataset_db(&dataset);
    let (snapshot, _guard) = save_and_open(&rebuilt, "yago");
    for spec in yago_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            assert_identical(&rebuilt, &snapshot, &spec.with_operator(operator), 100);
        }
    }
    for spec in yago_multi_conjunct_queries() {
        for operator in ["", "APPROX"] {
            assert_identical(
                &rebuilt,
                &snapshot,
                &spec.with_operator_everywhere(operator),
                50,
            );
        }
    }
}

#[test]
fn parallel_execution_agrees_on_a_snapshot_backed_database() {
    let dataset = generate_l4all(&L4AllConfig::tiny());
    let rebuilt = dataset_db(&dataset);
    let (snapshot, _guard) = save_and_open(&rebuilt, "parallel");
    let spec = &l4all_multi_conjunct_queries()[0];
    let text = spec.with_operator_everywhere("APPROX");
    let sequential = rebuilt
        .execute(
            &text,
            &ExecOptions::new()
                .with_limit(50)
                .with_parallel_conjuncts(false),
        )
        .unwrap();
    let parallel = snapshot
        .execute(
            &text,
            &ExecOptions::new()
                .with_limit(50)
                .with_parallel_conjuncts(true),
        )
        .unwrap();
    assert_eq!(sequential, parallel);
}

// ----------------------------------------------------------------------
// Property test: random graphs round-trip losslessly
// ----------------------------------------------------------------------

const LABELS: [&str; 4] = ["p", "q", "r", "type"];

fn graph_strategy() -> impl Strategy<Value = Vec<(u8, usize, u8)>> {
    prop::collection::vec((0u8..12, 0usize..LABELS.len(), 0u8..12), 1..60)
}

fn build(triples: &[(u8, usize, u8)]) -> (GraphStore, Ontology) {
    let mut g = GraphStore::new();
    for (s, p, o) in triples {
        if LABELS[*p] == "type" {
            g.add_triple(&format!("n{s}"), "type", &format!("C{}", o % 3));
        } else {
            g.add_triple(&format!("n{s}"), LABELS[*p], &format!("n{o}"));
        }
    }
    let mut o = Ontology::new();
    let root = g.add_node("CRoot");
    for c in 0..3 {
        if let Some(class) = g.node_by_label(&format!("C{c}")) {
            let _ = o.add_subclass(class, root);
        }
    }
    if let (Some(p), Some(q)) = (g.label_id("p"), g.label_id("q")) {
        let super_p = g.intern_label("super_p");
        let _ = o.add_subproperty(p, super_p);
        let _ = o.add_subproperty(q, super_p);
    }
    (g, o)
}

const QUERIES: [&str; 5] = [
    "(?X, ?Y) <- (?X, p.q, ?Y)",
    "(?X, ?Y) <- APPROX (?X, p+, ?Y)",
    "(?X, ?Y) <- RELAX (?X, super_p, ?Y)",
    "(?X, ?Y) <- RELAX (?X, type.type-, ?Y)",
    "(?X, ?Z) <- (?X, p, ?Y), (?Y, q|r, ?Z)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Saving and re-opening a random database changes nothing observable:
    /// same ordered answers, same distances, same evaluator counters, for
    /// every operator mode.
    #[test]
    fn random_databases_round_trip_losslessly(triples in graph_strategy(), qi in 0usize..QUERIES.len()) {
        let (g, o) = build(&triples);
        let rebuilt = Database::with_options(g, o, EvalOptions::default().with_max_tuples(Some(200_000)));
        let (snapshot, _guard) = save_and_open(&rebuilt, "prop");
        assert_identical(&rebuilt, &snapshot, QUERIES[qi], 200);
    }
}

// ----------------------------------------------------------------------
// Corruption: every failure mode is a typed error, never a panic
// ----------------------------------------------------------------------

fn small_snapshot(tag: &str) -> (Vec<u8>, TempFile) {
    let mut g = GraphStore::new();
    g.add_triple("alice", "knows", "bob");
    g.add_triple("bob", "worksAt", "acme");
    g.add_triple("alice", "type", "Person");
    let db = Database::new(g, Ontology::new());
    let path = temp_snapshot(tag);
    db.save_snapshot(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (bytes, TempFile(path))
}

#[test]
fn truncated_snapshots_fail_typed() {
    let (bytes, guard) = small_snapshot("truncate");
    // Cut at several depths: inside the header, inside the section table,
    // and inside the last payload.
    for keep in [4, 20, bytes.len() / 2, bytes.len() - 3] {
        std::fs::write(&guard.0, &bytes[..keep]).unwrap();
        let err = Database::open_snapshot(&guard.0).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ),
            "keep={keep} gave {err:?}"
        );
    }
}

#[test]
fn flipped_checksum_byte_fails_typed() {
    let (mut bytes, guard) = small_snapshot("bitflip");
    // Flip one byte in the last payload (well past the section table).
    let target = bytes.len() - 9;
    bytes[target] ^= 0x01;
    std::fs::write(&guard.0, &bytes).unwrap();
    assert!(matches!(
        Database::open_snapshot(&guard.0),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_version_fails_typed() {
    let (mut bytes, guard) = small_snapshot("version");
    bytes[8] = 0x7F; // format version field
    std::fs::write(&guard.0, &bytes).unwrap();
    match Database::open_snapshot(&guard.0) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0x7F);
            assert_eq!(supported, 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_garbage_fail_typed() {
    let (mut bytes, guard) = small_snapshot("magic");
    bytes[0] = b'X';
    std::fs::write(&guard.0, &bytes).unwrap();
    assert!(matches!(
        Database::open_snapshot(&guard.0),
        Err(SnapshotError::BadMagic { .. })
    ));
    std::fs::write(&guard.0, b"this is not a snapshot at all").unwrap();
    assert!(matches!(
        Database::open_snapshot(&guard.0),
        Err(SnapshotError::BadMagic { .. })
    ));
    let missing = temp_snapshot("missing");
    assert!(matches!(
        Database::open_snapshot(&missing),
        Err(SnapshotError::Io(_))
    ));
}

#[test]
fn flipped_endianness_marker_fails_typed() {
    let (mut bytes, guard) = small_snapshot("endian");
    bytes[12..16].copy_from_slice(&[0x0A, 0x0B, 0x0C, 0x0D]); // big-endian order
    std::fs::write(&guard.0, &bytes).unwrap();
    assert!(matches!(
        Database::open_snapshot(&guard.0),
        Err(SnapshotError::ForeignEndianness)
    ));
}

// ----------------------------------------------------------------------
// Mapping lifetime
// ----------------------------------------------------------------------

#[test]
fn mapping_outlives_reader_clones_and_deleted_files() {
    let mut g = GraphStore::new();
    g.add_triple("alice", "knows", "bob");
    g.add_triple("bob", "knows", "carol");
    let db = Database::new(g, Ontology::new());
    let path = temp_snapshot("lifetime");
    db.save_snapshot(&path).unwrap();

    let first = Database::open_snapshot(&path).unwrap();
    let second = Database::open_snapshot(&path).unwrap();
    // On unix an unlinked file stays readable through a live mapping; the
    // databases must not notice.
    std::fs::remove_file(&path).unwrap();

    let clone = first.clone();
    drop(first);
    let text = "(?X) <- (alice, knows+, ?X)";
    let expected = db.execute(text, &ExecOptions::new()).unwrap();
    assert_eq!(clone.execute(text, &ExecOptions::new()).unwrap(), expected);
    assert_eq!(second.execute(text, &ExecOptions::new()).unwrap(), expected);

    // Prepared queries keep the mapping alive past their database handle.
    let prepared = second.prepare(text).unwrap();
    drop(second);
    drop(clone);
    assert_eq!(prepared.execute(&ExecOptions::new()).unwrap(), expected);
}

// ----------------------------------------------------------------------
// CI hook: exercise an externally built snapshot when one is provided
// ----------------------------------------------------------------------

/// When `OMEGA_SNAPSHOT_FILE` points at an image (CI builds one with
/// `experiments snapshot build`), open it twice, cross-check the two
/// openings and run a wildcard query on both — catching lifetime and
/// alignment regressions on a file that was *not* produced by this process.
#[test]
fn externally_built_snapshot_opens_twice_and_agrees() {
    let Ok(path) = std::env::var("OMEGA_SNAPSHOT_FILE") else {
        return; // No external image supplied; the other tests built their own.
    };
    let first = Database::open_snapshot(&path).expect("external snapshot opens");
    let second = Database::open_snapshot(&path).expect("external snapshot re-opens");
    assert_eq!(first.graph().node_count(), second.graph().node_count());
    assert_eq!(first.graph().edge_count(), second.graph().edge_count());
    assert!(
        first.graph().edge_count() > 0,
        "CI snapshot must not be empty"
    );
    let request = ExecOptions::new()
        .with_limit(25)
        .with_parallel_conjuncts(false);
    let a = first.execute("(?X, ?Y) <- (?X, _, ?Y)", &request);
    let b = second.execute("(?X, ?Y) <- (?X, _, ?Y)", &request);
    match (a, b) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (a, b) => panic!("wildcard query failed: {a:?} vs {b:?}"),
    }
}

// ----------------------------------------------------------------------
// Label-statistics section: round-trip and pre-stats compatibility
// ----------------------------------------------------------------------

/// Current images carry the (optional) label-stats section and the loaded
/// store serves it pre-populated, byte-identical to a recomputation.
#[test]
fn label_stats_round_trip_through_the_image() {
    let dataset = generate_yago(&YagoConfig::scaled(0.05));
    let db = dataset_db(&dataset);
    let (opened, _file) = save_and_open(&db, "label-stats");
    assert_eq!(
        opened.graph().label_stats(),
        db.graph().label_stats(),
        "loaded statistics must equal the freeze-time statistics"
    );
    // And they must equal a from-scratch recomputation on the mapped CSR.
    assert_eq!(
        opened.graph().label_stats(),
        &omega::graph::LabelStats::compute(&db.graph())
    );
}

/// Images written before the stats section existed (the PR-4 section set,
/// produced here via `write_graph_sections_without_stats`) still open; the
/// statistics are recomputed lazily and answers are bit-identical.
#[test]
fn pre_stats_images_open_and_recompute_lazily() {
    use omega::graph::snapshot::{write_graph_sections_without_stats, SnapshotWriter};

    let dataset = generate_yago(&YagoConfig::scaled(0.05));
    let db = dataset_db(&dataset);

    let path = temp_snapshot("pre-stats");
    let mut writer = SnapshotWriter::new();
    write_graph_sections_without_stats(&db.graph(), &mut writer).expect("graph sections");
    omega::ontology::snapshot::write_ontology_section(db.ontology(), &mut writer)
        .expect("ontology section");
    writer.write_to(&path).expect("fixture write");
    let _file = TempFile(path.clone());

    // The fixture really lacks the section…
    {
        use omega::graph::snapshot::{SectionId, SectionKind, SnapshotReader};
        let reader = SnapshotReader::open(&path).expect("fixture opens");
        assert!(
            reader
                .section(SectionId::plain(SectionKind::LabelStats))
                .is_none(),
            "fixture must emulate a pre-stats image"
        );
    }

    let opened =
        Database::open_snapshot_with(&path, db.options().clone()).expect("pre-stats image opens");
    // …and the lazily recomputed statistics match the original store's.
    assert_eq!(opened.graph().label_stats(), db.graph().label_stats());
    for spec in yago_queries() {
        let text = spec.with_operator("APPROX");
        assert_identical(&db, &opened, &text, 50);
    }
}
