//! End-to-end integration tests spanning all crates: data generation →
//! engine construction → query parsing → ranked evaluation → answers.

use omega::core::{EvalOptions, Omega, OmegaError};
use omega::datagen::{
    generate_l4all, generate_yago, l4all_queries, yago_queries, L4AllConfig, YagoConfig,
};

fn l4all_engine() -> Omega {
    let data = generate_l4all(&L4AllConfig::tiny());
    Omega::new(data.graph, data.ontology)
}

fn yago_engine(options: EvalOptions) -> Omega {
    let data = generate_yago(&YagoConfig::tiny());
    Omega::with_options(data.graph, data.ontology, options)
}

#[test]
fn every_l4all_query_parses_and_runs_in_all_modes() {
    let omega = l4all_engine();
    for spec in l4all_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            let limit = if operator.is_empty() { None } else { Some(20) };
            let answers = omega
                .execute(&text, limit)
                .unwrap_or_else(|e| panic!("{} {} failed: {e}", spec.id, operator));
            // Answers must be sorted by distance.
            let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
            let mut sorted = distances.clone();
            sorted.sort_unstable();
            assert_eq!(distances, sorted, "{} {} not sorted", spec.id, operator);
        }
    }
}

#[test]
fn every_yago_query_parses_and_runs_in_all_modes() {
    let omega = yago_engine(EvalOptions::default().with_max_tuples(Some(500_000)));
    for spec in yago_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            let limit = if operator.is_empty() { None } else { Some(20) };
            match omega.execute(&text, limit) {
                Ok(answers) => {
                    let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
                    let mut sorted = distances.clone();
                    sorted.sort_unstable();
                    assert_eq!(distances, sorted);
                }
                // The paper's Q4/Q5 APPROX runs exhaust memory; that is an
                // accepted outcome here too.
                Err(OmegaError::ResourceExhausted { .. }) => {}
                Err(other) => panic!("{} {} failed: {other}", spec.id, operator),
            }
        }
    }
}

#[test]
fn approx_and_relax_only_add_answers() {
    let omega = l4all_engine();
    for spec in l4all_queries() {
        if !spec.flexible_in_study {
            continue;
        }
        let exact = omega.execute(spec.text, Some(100)).unwrap();
        let approx = omega
            .execute(&spec.with_operator("APPROX"), Some(100))
            .unwrap();
        let relax = omega
            .execute(&spec.with_operator("RELAX"), Some(100))
            .unwrap();
        assert!(
            approx.len() >= exact.len().min(100),
            "{}: APPROX returned fewer answers than exact",
            spec.id
        );
        assert!(
            relax.len() >= exact.len().min(100),
            "{}: RELAX returned fewer answers than exact",
            spec.id
        );
        // The distance-0 APPROX answers are exactly the exact answers (both
        // runs were capped at 100 and answers arrive in distance order).
        let approx_zero = approx.iter().filter(|a| a.distance == 0).count();
        assert_eq!(approx_zero, exact.len().min(100), "{}", spec.id);
    }
}

#[test]
fn optimisations_preserve_top_k_answer_multisets() {
    let data = generate_l4all(&L4AllConfig::tiny());
    let plain = Omega::new(data.graph.clone(), data.ontology.clone());
    let optimised = Omega::with_options(
        data.graph.clone(),
        data.ontology.clone(),
        EvalOptions::default()
            .with_distance_aware(true)
            .with_disjunction_decomposition(true),
    );
    for spec in l4all_queries() {
        if !spec.flexible_in_study {
            continue;
        }
        for operator in ["APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            // Collect *all* answers so the comparison is order-insensitive.
            let mut a: Vec<_> = plain
                .execute(&text, None)
                .unwrap()
                .into_iter()
                .map(|ans| (ans.bindings, ans.distance))
                .collect();
            let mut b: Vec<_> = optimised
                .execute(&text, None)
                .unwrap()
                .into_iter()
                .map(|ans| (ans.bindings, ans.distance))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{} {} differs under optimisations", spec.id, operator);
        }
    }
}

#[test]
fn yago_figure10_shape_holds() {
    // The qualitative shape of Figure 10 on the synthetic YAGO graph:
    // Q3/Q9 have no exact answers but APPROX recovers plenty.
    let omega = yago_engine(EvalOptions::default().with_max_tuples(Some(500_000)));
    let queries = yago_queries();
    let q3 = &queries[2];
    let q9 = &queries[8];
    for spec in [q3, q9] {
        let exact = omega.execute(spec.text, None).unwrap();
        assert!(exact.is_empty(), "{} should have no exact answers", spec.id);
        let approx = omega
            .execute(&spec.with_operator("APPROX"), Some(50))
            .unwrap();
        assert!(
            !approx.is_empty(),
            "{} APPROX should recover answers",
            spec.id
        );
        assert!(approx.iter().all(|a| a.distance >= 1));
    }
}

#[test]
fn multi_conjunct_queries_join_across_conjuncts() {
    let omega = l4all_engine();
    let answers = omega
        .execute(
            "(?E, ?N) <- (Work Episode, type-, ?E), (?E, next, ?N)",
            None,
        )
        .unwrap();
    // every answer's ?E must indeed be a work episode with a successor
    assert!(!answers.is_empty());
    for a in &answers {
        assert!(a.get("E").is_some() && a.get("N").is_some());
        assert_eq!(a.distance, 0);
    }
    // joining with an unsatisfiable conjunct yields nothing
    let none = omega
        .execute(
            "(?E) <- (Work Episode, type-, ?E), (?E, qualif.level.level, ?Z)",
            None,
        )
        .unwrap();
    assert!(none.is_empty());
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate exposes the pieces needed to build an engine from
    // scratch without referencing the member crates directly.
    let mut graph = omega::GraphStore::new();
    graph.add_triple("a", "p", "b");
    let engine = omega::Omega::new(graph, omega::Ontology::new());
    let answers = engine.execute("(?X) <- (a, p, ?X)", None).unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].get("X"), Some("b"));
}
