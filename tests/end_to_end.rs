//! End-to-end integration tests spanning all crates: data generation →
//! database construction → query preparation → ranked evaluation → answers.
//!
//! The suite drives the service API (`Database` / `PreparedQuery` /
//! `ExecOptions`) and keeps a handful of tests on the deprecated `Omega`
//! shim to pin its compatibility behaviour.

#![allow(deprecated)]

use std::time::{Duration, Instant};

use omega::core::{Database, EvalOptions, ExecOptions, Omega, OmegaError};
use omega::datagen::{
    generate_l4all, generate_yago, l4all_queries, yago_queries, L4AllConfig, YagoConfig,
};

fn l4all_db() -> Database {
    let data = generate_l4all(&L4AllConfig::tiny());
    Database::new(data.graph, data.ontology)
}

fn yago_db(options: EvalOptions) -> Database {
    let data = generate_yago(&YagoConfig::tiny());
    Database::with_options(data.graph, data.ontology, options)
}

#[test]
fn every_l4all_query_parses_and_runs_in_all_modes() {
    let db = l4all_db();
    for spec in l4all_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            let mut request = ExecOptions::new();
            if !operator.is_empty() {
                request = request.with_limit(20);
            }
            let answers = db
                .execute(&text, &request)
                .unwrap_or_else(|e| panic!("{} {} failed: {e}", spec.id, operator));
            // Answers must be sorted by distance.
            let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
            let mut sorted = distances.clone();
            sorted.sort_unstable();
            assert_eq!(distances, sorted, "{} {} not sorted", spec.id, operator);
        }
    }
}

#[test]
fn every_yago_query_parses_and_runs_in_all_modes() {
    let db = yago_db(EvalOptions::default().with_max_tuples(Some(500_000)));
    for spec in yago_queries() {
        for operator in ["", "APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            let mut request = ExecOptions::new();
            if !operator.is_empty() {
                request = request.with_limit(20);
            }
            match db.execute(&text, &request) {
                Ok(answers) => {
                    let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
                    let mut sorted = distances.clone();
                    sorted.sort_unstable();
                    assert_eq!(distances, sorted);
                }
                // The paper's Q4/Q5 APPROX runs exhaust memory; that is an
                // accepted outcome here too.
                Err(OmegaError::ResourceExhausted { .. }) => {}
                Err(other) => panic!("{} {} failed: {other}", spec.id, operator),
            }
        }
    }
}

#[test]
fn approx_and_relax_only_add_answers() {
    let db = l4all_db();
    let top100 = ExecOptions::new().with_limit(100);
    for spec in l4all_queries() {
        if !spec.flexible_in_study {
            continue;
        }
        let exact = db.execute(spec.text, &top100).unwrap();
        let approx = db.execute(&spec.with_operator("APPROX"), &top100).unwrap();
        let relax = db.execute(&spec.with_operator("RELAX"), &top100).unwrap();
        assert!(
            approx.len() >= exact.len().min(100),
            "{}: APPROX returned fewer answers than exact",
            spec.id
        );
        assert!(
            relax.len() >= exact.len().min(100),
            "{}: RELAX returned fewer answers than exact",
            spec.id
        );
        // The distance-0 APPROX answers are exactly the exact answers (both
        // runs were capped at 100 and answers arrive in distance order).
        let approx_zero = approx.iter().filter(|a| a.distance == 0).count();
        assert_eq!(approx_zero, exact.len().min(100), "{}", spec.id);
    }
}

#[test]
fn optimisations_preserve_top_k_answer_multisets() {
    // One database; the optimisations are toggled per request.
    let db = l4all_db();
    let plain = ExecOptions::new();
    let optimised = ExecOptions::new()
        .with_distance_aware(true)
        .with_disjunction_decomposition(true);
    for spec in l4all_queries() {
        if !spec.flexible_in_study {
            continue;
        }
        for operator in ["APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            // Collect *all* answers so the comparison is order-insensitive.
            let mut a: Vec<_> = db
                .execute(&text, &plain)
                .unwrap()
                .into_iter()
                .map(|ans| (ans.bindings, ans.distance))
                .collect();
            let mut b: Vec<_> = db
                .execute(&text, &optimised)
                .unwrap()
                .into_iter()
                .map(|ans| (ans.bindings, ans.distance))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{} {} differs under optimisations", spec.id, operator);
        }
    }
}

#[test]
fn yago_figure10_shape_holds() {
    // The qualitative shape of Figure 10 on the synthetic YAGO graph:
    // Q3/Q9 have no exact answers but APPROX recovers plenty.
    let db = yago_db(EvalOptions::default().with_max_tuples(Some(500_000)));
    let queries = yago_queries();
    let q3 = &queries[2];
    let q9 = &queries[8];
    for spec in [q3, q9] {
        let exact = db.execute(spec.text, &ExecOptions::new()).unwrap();
        assert!(exact.is_empty(), "{} should have no exact answers", spec.id);
        let approx = db
            .execute(
                &spec.with_operator("APPROX"),
                &ExecOptions::new().with_limit(50),
            )
            .unwrap();
        assert!(
            !approx.is_empty(),
            "{} APPROX should recover answers",
            spec.id
        );
        assert!(approx.iter().all(|a| a.distance >= 1));
    }
}

#[test]
fn multi_conjunct_queries_join_across_conjuncts() {
    let db = l4all_db();
    let answers = db
        .execute(
            "(?E, ?N) <- (Work Episode, type-, ?E), (?E, next, ?N)",
            &ExecOptions::new(),
        )
        .unwrap();
    // every answer's ?E must indeed be a work episode with a successor
    assert!(!answers.is_empty());
    for a in &answers {
        assert!(a.get("E").is_some() && a.get("N").is_some());
        assert_eq!(a.distance, 0);
    }
    // joining with an unsatisfiable conjunct yields nothing
    let none = db
        .execute(
            "(?E) <- (Work Episode, type-, ?E), (?E, qualif.level.level, ?Z)",
            &ExecOptions::new(),
        )
        .unwrap();
    assert!(none.is_empty());
}

/// The acceptance scenario for the service API: one `Database` shared by
/// four worker threads answers prepared APPROX/RELAX queries concurrently,
/// with results identical to single-threaded `Omega::execute`.
#[test]
fn shared_database_matches_single_threaded_omega() {
    let data = generate_l4all(&L4AllConfig::tiny());
    let omega = Omega::new(data.graph.clone(), data.ontology.clone());
    let db = Database::new(data.graph, data.ontology);

    let mut cases = Vec::new();
    for spec in l4all_queries() {
        if !spec.flexible_in_study {
            continue;
        }
        for operator in ["APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            let reference: Vec<_> = omega
                .execute(&text, Some(50))
                .unwrap()
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            cases.push((text, reference));
        }
    }
    assert!(cases.len() >= 8, "enough flexible queries to share around");

    std::thread::scope(|scope| {
        // Each worker executes every case through the shared cache, so the
        // same PreparedQuery instances run on all four threads at once.
        for worker in 0..4 {
            let db = db.clone();
            let cases = &cases;
            scope.spawn(move || {
                for (text, reference) in cases {
                    let prepared = db.prepare(text).unwrap();
                    let got: Vec<_> = prepared
                        .execute(&ExecOptions::new().with_limit(50))
                        .unwrap()
                        .into_iter()
                        .map(|a| (a.bindings, a.distance))
                        .collect();
                    assert_eq!(&got, reference, "worker {worker} diverged on {text}");
                }
            });
        }
    });
}

#[test]
fn zero_deadline_aborts_instead_of_running_to_completion() {
    let db = l4all_db();
    let spec = &l4all_queries()[2];
    let text = spec.with_operator("APPROX");
    let started = Instant::now();
    let err = db
        .execute(&text, &ExecOptions::new().with_timeout(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, OmegaError::DeadlineExceeded));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline must abort promptly"
    );
    // The same query without a deadline still works.
    assert!(db
        .execute(&text, &ExecOptions::new().with_limit(10))
        .is_ok());
}

#[test]
fn max_distance_matches_post_filtering() {
    let db = l4all_db();
    let spec = &l4all_queries()[2];
    let text = spec.with_operator("APPROX");
    let all = db.execute(&text, &ExecOptions::new()).unwrap();
    let capped = db
        .execute(&text, &ExecOptions::new().with_max_distance(1))
        .unwrap();
    let expected: Vec<_> = all.iter().filter(|a| a.distance <= 1).cloned().collect();
    assert_eq!(capped, expected);
}

#[test]
fn prepared_statement_cache_is_shared_between_clones() {
    let db = l4all_db();
    let clone = db.clone();
    let text = l4all_queries()[0].text;
    let first = db.prepare(text).unwrap();
    let second = clone.prepare(text).unwrap();
    assert!(first.shares_plans_with(&second));
    assert_eq!(db.prepared_cache_len(), 1);
}

#[test]
fn omega_shim_still_behaves_like_the_database() {
    // The deprecated facade delegates to the same machinery: answers agree.
    let data = generate_l4all(&L4AllConfig::tiny());
    let omega = Omega::new(data.graph.clone(), data.ontology.clone());
    let db = Database::new(data.graph, data.ontology);
    let spec = &l4all_queries()[9];
    for operator in ["", "APPROX", "RELAX"] {
        let text = spec.with_operator(operator);
        let via_shim = omega.execute(&text, Some(30)).unwrap();
        let via_db = db
            .execute(&text, &ExecOptions::new().with_limit(30))
            .unwrap();
        assert_eq!(via_shim, via_db, "{operator} diverged");
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate exposes the pieces needed to build a database from
    // scratch without referencing the member crates directly.
    let mut graph = omega::GraphStore::new();
    graph.add_triple("a", "p", "b");
    let db = omega::Database::new(graph, omega::Ontology::new());
    let answers = db
        .execute("(?X) <- (a, p, ?X)", &omega::ExecOptions::new())
        .unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].get("X"), Some("b"));
}
