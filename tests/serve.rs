//! End-to-end tests of the serving layer: an in-process `omega-server` on a
//! unix socket (TCP where noted), driven by `omega-client`.
//!
//! What the suite pins:
//!
//! * **bit-identical serving** — every committed L4All and YAGO query
//!   (exact, APPROX and RELAX, single- and multi-conjunct) answers over the
//!   wire exactly as in-process execution does: same answers, same order,
//!   same [`EvalStats`].
//! * **typed errors end-to-end** — parse errors (with position), deadline
//!   exceeded, governor overload (with its `retry_after` hint), unknown
//!   statements, version skew and foreign magic all surface as typed
//!   errors, never a panic or a hang.
//! * **lifecycle** — prepare/execute/stream/cancel work mid-stream and the
//!   connection remains usable; graceful drain under load finishes or
//!   drains every stream and returns every gauge to exactly zero.
//!
//! The suite serialises on a file-local mutex: the conjunct-worker gauge
//! and the fault-injection slot are process-global.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use omega::core::eval::fault::{install, FaultPlan, FaultPoint};
use omega::core::{live_parallel_workers, Database, GovernorConfig, OmegaError};
use omega::datagen::{
    generate_l4all, generate_yago, l4all_multi_conjunct_queries, l4all_queries,
    yago_multi_conjunct_queries, yago_queries, L4AllConfig, QuerySpec, YagoConfig,
};
use omega::ExecOptions;
use omega_client::{ClientError, Connection, Mutation};
use omega_protocol::{Frame, FrameReader, StatementRef, WireError, MAGIC};
use omega_server::{Server, ServerConfig, ServerHandle};

/// Serialises the suite (worker gauge and fault slot are process-global).
fn serve_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh, collision-free unix socket path under the system temp dir.
fn socket_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("omega-serve-{}-{tag}-{n}.sock", std::process::id()))
}

/// Spawns a server over `db` on a fresh unix socket; returns the handle,
/// the socket path and the joiner for `Server::run`.
fn spawn_unix(db: Database, tag: &str) -> (ServerHandle, PathBuf, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let mut server = Server::with_config(db, config);
    let path = socket_path(tag);
    server.listen_unix(&path).expect("bind unix socket");
    let handle = server.handle();
    let joiner = std::thread::spawn(move || server.run());
    (handle, path, joiner)
}

fn l4all_db() -> Database {
    let data = generate_l4all(&L4AllConfig::tiny());
    Database::new(data.graph, data.ontology)
}

fn yago_db() -> Database {
    let data = generate_yago(&YagoConfig::tiny());
    Database::new(data.graph, data.ontology)
}

/// In-process reference execution: answers plus final stats off one stream.
fn local_run(
    db: &Database,
    text: &str,
    options: &ExecOptions,
) -> (Vec<omega::Answer>, omega::core::EvalStats) {
    let prepared = db.prepare(text).expect("prepare locally");
    let mut stream = prepared.answers(options);
    let mut answers = Vec::new();
    while let Some(answer) = stream.next_answer().expect("local evaluation") {
        answers.push(answer);
    }
    let stats = stream.stats();
    (answers, stats)
}

/// Asserts that `text` answers bit-identically over the wire and in
/// process — same answers, same order, same [`omega::core::EvalStats`].
fn assert_wire_matches_local(
    db: &Database,
    conn: &mut Connection,
    text: &str,
    options: &ExecOptions,
) {
    let (local, local_stats) = local_run(db, text, options);
    let (remote, remote_stats) = conn.run(text, options).expect(text);
    assert_eq!(local, remote, "answer sequences differ for {text}");
    assert_eq!(local_stats, remote_stats, "EvalStats differ for {text}");
}

/// Every operator variant the committed study runs for `spec`.
fn variants(spec: &QuerySpec, everywhere: bool) -> Vec<String> {
    let mut texts = vec![spec.text.to_owned()];
    if spec.flexible_in_study {
        for op in ["APPROX", "RELAX"] {
            texts.push(if everywhere {
                spec.with_operator_everywhere(op)
            } else {
                spec.with_operator(op)
            });
        }
    }
    texts
}

/// Polls until the conjunct-worker gauge settles back to zero.
fn assert_workers_settle() {
    let deadline = Instant::now() + Duration::from_secs(10);
    while live_parallel_workers() > 0 {
        assert!(
            Instant::now() < deadline,
            "leaked conjunct workers: {} live",
            live_parallel_workers()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Shuts a server down via its handle and joins `Server::run`.
fn drain(handle: &ServerHandle, joiner: std::thread::JoinHandle<()>) {
    handle.shutdown();
    joiner.join().expect("server run thread");
}

// ---------------------------------------------------------------------------
// Bit-identical serving across every committed query set
// ---------------------------------------------------------------------------

#[test]
fn l4all_query_set_is_bit_identical_over_the_wire() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "l4all");
    let mut conn = Connection::connect_unix(&path).expect("connect");
    let options = ExecOptions::new().with_limit(200);
    for spec in l4all_queries() {
        for text in variants(&spec, false) {
            assert_wire_matches_local(&db, &mut conn, &text, &options);
        }
    }
    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn yago_query_set_is_bit_identical_over_the_wire() {
    let _guard = serve_lock();
    let db = yago_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "yago");
    let mut conn = Connection::connect_unix(&path).expect("connect");
    let options = ExecOptions::new().with_limit(200);
    for spec in yago_queries() {
        for text in variants(&spec, false) {
            assert_wire_matches_local(&db, &mut conn, &text, &options);
        }
    }
    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn multi_conjunct_query_sets_are_bit_identical_over_the_wire() {
    let _guard = serve_lock();
    let options = ExecOptions::new().with_limit(100);
    for (db, specs, tag) in [
        (l4all_db(), l4all_multi_conjunct_queries(), "mc-l4all"),
        (yago_db(), yago_multi_conjunct_queries(), "mc-yago"),
    ] {
        let (handle, path, joiner) = spawn_unix(db.clone(), tag);
        let mut conn = Connection::connect_unix(&path).expect("connect");
        for spec in specs {
            for text in variants(&spec, true) {
                assert_wire_matches_local(&db, &mut conn, &text, &options);
            }
        }
        drop(conn);
        drain(&handle, joiner);
    }
}

#[test]
fn tcp_transport_serves_bit_identically_too() {
    let _guard = serve_lock();
    let db = l4all_db();
    let mut server = Server::new(db.clone());
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind tcp");
    let handle = server.handle();
    let joiner = std::thread::spawn(move || server.run());
    let mut conn = Connection::connect_tcp(addr).expect("connect tcp");
    let options = ExecOptions::new().with_limit(100);
    for spec in l4all_queries().into_iter().take(4) {
        assert_wire_matches_local(&db, &mut conn, spec.text, &options);
    }
    drop(conn);
    drain(&handle, joiner);
}

// ---------------------------------------------------------------------------
// Prepared statements and streaming lifecycle
// ---------------------------------------------------------------------------

#[test]
fn prepare_execute_close_lifecycle() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "lifecycle");
    let mut conn = Connection::connect_unix(&path).expect("connect");

    let spec = &l4all_queries()[0];
    let statement = conn.prepare(spec.text).expect("prepare");
    assert_eq!(statement.conjuncts, 1);
    assert_eq!(statement.head, vec!["X".to_owned()]);
    assert_eq!(handle.stats().statements_open, 1);

    let options = ExecOptions::new().with_limit(50);
    let (local, local_stats) = local_run(&db, spec.text, &options);
    let mut stream = conn
        .execute_prepared(&statement, &options)
        .expect("execute prepared");
    let mut remote = Vec::new();
    while let Some(answer) = stream.next_answer().expect("stream") {
        remote.push(answer);
    }
    let remote_stats = stream.stats().expect("finished stream has stats");
    drop(stream);
    assert_eq!(local, remote);
    assert_eq!(local_stats, remote_stats);

    conn.close(statement.id).expect("close statement");
    assert_eq!(handle.stats().statements_open, 0);
    // Closing twice is a typed error, and the connection stays usable.
    match conn.close(statement.id) {
        Err(ClientError::Remote(WireError::UnknownStatement(id))) => {
            assert_eq!(id, statement.id)
        }
        other => panic!("expected UnknownStatement, got {other:?}"),
    }
    conn.run(spec.text, &options).expect("connection reusable");

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn cancel_mid_stream_keeps_the_connection_usable() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "cancel");
    let mut conn = Connection::connect_unix(&path).expect("connect");
    // A window of one forces the server to pause for credits after the
    // first answer, so the cancel provably lands mid-stream.
    conn.set_window(1);

    let spec = &l4all_queries()[4]; // (?X, ?Y) <- (?X, next+, ?Y): many answers
    let mut stream = conn
        .execute_text(spec.text, &ExecOptions::new())
        .expect("execute");
    let first = stream.next_answer().expect("first answer");
    assert!(first.is_some(), "query should produce answers");
    stream.cancel().expect("cancel acknowledged");

    // The stream's execution is gone server-side: gauges return to zero.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().streams_in_flight > 0 {
        assert!(Instant::now() < deadline, "stream leaked after cancel");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(handle.stats().gauges.executions, 0);

    // Same connection serves the next request.
    conn.set_window(64);
    let (answers, _) = conn
        .run(spec.text, &ExecOptions::new().with_limit(10))
        .expect("connection reusable after cancel");
    assert_eq!(answers.len(), 10);

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn dropping_the_connection_cancels_in_flight_work() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "disconnect");
    {
        let mut conn = Connection::connect_unix(&path).expect("connect");
        conn.set_window(1);
        let spec = &l4all_queries()[4];
        let mut stream = conn
            .execute_text(spec.text, &ExecOptions::new())
            .expect("execute");
        assert!(stream.next_answer().expect("first answer").is_some());
        // Vanish without cancel: drop the stream (which tries a best-effort
        // abort) and the connection together by shutting the socket first.
        std::mem::forget(stream);
    }
    // The server notices the EOF and cancels the execution.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().streams_in_flight > 0 || handle.stats().connections_open > 0 {
        assert!(
            Instant::now() < deadline,
            "in-flight stream or connection leaked after disconnect: {:?}",
            handle.stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(handle.stats().gauges.executions, 0);
    assert_workers_settle();
    drain(&handle, joiner);
}

// ---------------------------------------------------------------------------
// Typed errors end-to-end
// ---------------------------------------------------------------------------

#[test]
fn engine_errors_cross_the_wire_typed() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "errors");
    let mut conn = Connection::connect_unix(&path).expect("connect");

    // Parse error, with its position preserved.
    let local = db.prepare("(?X <- nonsense").unwrap_err();
    match conn.run("(?X <- nonsense", &ExecOptions::new()) {
        Err(ClientError::Remote(WireError::Engine(remote))) => {
            assert_eq!(format!("{remote:?}"), format!("{local:?}"));
        }
        other => panic!("expected remote parse error, got {other:?}"),
    }

    // Deadline exceeded: a zero timeout expires before evaluation starts.
    let options = ExecOptions::new().with_timeout(Duration::ZERO);
    match conn.run(l4all_queries()[0].text, &options) {
        Err(ClientError::Remote(WireError::Engine(OmegaError::DeadlineExceeded))) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Unknown statement id.
    match conn.execute(StatementRef::Id(777), &ExecOptions::new()) {
        Ok(mut stream) => match stream.next_answer() {
            Err(ClientError::Remote(WireError::UnknownStatement(777))) => {}
            other => panic!("expected UnknownStatement, got {other:?}"),
        },
        Err(e) => panic!("execute itself should not fail: {e}"),
    }

    // The connection survived three typed failures.
    conn.run(l4all_queries()[0].text, &ExecOptions::new().with_limit(1))
        .expect("connection usable after typed errors");

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn governor_overload_rejection_carries_retry_after() {
    let _guard = serve_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    // A one-token bucket that essentially never refills: the first request
    // is admitted, the second rejected at the edge.
    let db = Database::with_governor(
        data.graph,
        data.ontology,
        omega::EvalOptions::default(),
        GovernorConfig::default()
            .with_admission_rate(1e-6, 1)
            .with_retry_after(Duration::from_millis(123)),
    );
    let (handle, path, joiner) = spawn_unix(db, "overload");
    let mut conn = Connection::connect_unix(&path).expect("connect");

    let text = l4all_queries()[0].text;
    conn.run(text, &ExecOptions::new().with_limit(5))
        .expect("first request admitted");
    match conn.run(text, &ExecOptions::new().with_limit(5)) {
        Err(ClientError::Remote(err)) => {
            let retry = err.retry_after().expect("overload carries retry_after");
            assert!(
                retry >= Duration::from_millis(123),
                "retry_after hint lost: {retry:?}"
            );
            assert!(matches!(
                err,
                WireError::Engine(OmegaError::Overloaded { .. })
            ));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(handle.stats().rejected >= 1);
    assert_eq!(handle.stats().gauges.rejected, 1);

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn version_skew_and_bad_magic_fail_typed_not_panic() {
    let _guard = serve_lock();
    let (handle, path, joiner) = spawn_unix(l4all_db(), "skew");

    // Version skew: a future client version is answered with a typed
    // VersionSkew naming both sides.
    {
        let stream = std::os::unix::net::UnixStream::connect(&path).expect("connect raw");
        let mut writer = stream.try_clone().expect("clone");
        omega_protocol::write_frame(&mut writer, &Frame::Hello { version: 99 }).expect("send");
        let mut reader = FrameReader::new(stream);
        match reader.read_frame().expect("reply") {
            Some(Frame::Fail {
                error: WireError::VersionSkew { client, server },
            }) => {
                assert_eq!(client, 99);
                assert_eq!(server, omega_protocol::PROTOCOL_VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    // Foreign magic: a peer speaking some other protocol gets a typed
    // failure (and a closed socket), never a panic.
    {
        use std::io::Write;
        let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect raw");
        let mut payload = vec![0x01u8];
        payload.extend_from_slice(b"NOTOMEGA");
        payload.extend_from_slice(&1u32.to_le_bytes());
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        stream.write_all(&wire).expect("send");
        stream.flush().expect("flush");
        let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
        match reader.read_frame().expect("reply") {
            Some(Frame::Fail {
                error: WireError::Malformed(message),
            }) => assert!(message.contains("magic"), "unhelpful message: {message}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The server hung up afterwards.
        assert!(matches!(reader.read_frame(), Ok(None)));
    }

    assert_eq!(handle.stats().connections_open, 0);
    drain(&handle, joiner);
    assert_eq!(MAGIC, *b"OMEGWIRE");
}

// ---------------------------------------------------------------------------
// Graceful drain under load
// ---------------------------------------------------------------------------

#[test]
fn shutdown_under_load_drains_streams_and_zeroes_gauges() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "drain");

    // An in-flight stream parked on credits: window 1, nothing consumed
    // beyond the first answer.
    let mut parked = Connection::connect_unix(&path).expect("connect parked");
    parked.set_window(1);
    let spec = &l4all_queries()[4];
    let mut stream = parked
        .execute_text(spec.text, &ExecOptions::new())
        .expect("execute");
    let mut got = Vec::new();
    let first = stream.next_answer().expect("first answer").expect("answer");
    got.push(first);
    assert_eq!(handle.stats().streams_in_flight, 1);

    // A second client asks the daemon to shut down.
    let mut admin = Connection::connect_unix(&path).expect("connect admin");
    admin.shutdown_server().expect("shutdown accepted");
    assert!(handle.is_draining());

    // New work is refused: either the typed Shutdown error (the request
    // won the race against the idle-connection close) or a clean hangup.
    match admin.run(spec.text, &ExecOptions::new()) {
        Err(ClientError::Remote(WireError::Shutdown)) => {}
        Err(ClientError::Protocol(_)) => {}
        other => panic!("expected Shutdown rejection or hangup, got {other:?}"),
    }

    // The parked stream ends at its batch boundary with a Drained finish;
    // everything already received is a correct rank-order prefix.
    while let Some(answer) = stream.next_answer().expect("drained stream") {
        got.push(answer);
    }
    assert_eq!(
        stream.finish_reason(),
        Some(omega_protocol::FinishReason::Drained)
    );
    let (local, _) = local_run(&db, spec.text, &ExecOptions::new());
    assert!(got.len() <= local.len());
    assert_eq!(got[..], local[..got.len()], "drained prefix diverged");
    drop(stream);

    // Connections close, the server run loop exits, and every gauge is
    // back at exactly zero.
    drop(parked);
    drop(admin);
    joiner.join().expect("server drained");
    let stats = handle.stats();
    assert_eq!(stats.connections_open, 0, "open connections after drain");
    assert_eq!(stats.streams_in_flight, 0, "streams after drain");
    assert_eq!(stats.statements_open, 0, "statements after drain");
    assert!(stats.degraded >= 1, "drained stream not counted");
    assert_eq!(stats.gauges.executions, 0, "executions after drain");
    assert_eq!(stats.gauges.live_tuples, 0, "live tuples after drain");
    assert_eq!(
        stats.gauges.join_buffer_entries, 0,
        "join buffers after drain"
    );
    assert_eq!(stats.live_workers, 0, "leaked workers after drain");
    assert_workers_settle();
}

// ---------------------------------------------------------------------------
// Socket-path hygiene
// ---------------------------------------------------------------------------

#[test]
fn listen_unix_refuses_live_sockets_and_reclaims_stale_ones() {
    let _guard = serve_lock();
    let path = socket_path("hygiene");

    // A live server owns its path: a second daemon binding the same path
    // must fail with AddrInUse instead of silently stealing the socket
    // file (which would leave the first daemon accepting on an unlinked
    // inode no client can reach).
    let (handle, bound_path, joiner) = {
        let mut server = Server::new(l4all_db());
        server.listen_unix(&path).expect("first bind");
        let handle = server.handle();
        let joiner = std::thread::spawn(move || server.run());
        (handle, path.clone(), joiner)
    };
    let mut rival = Server::new(l4all_db());
    let err = rival
        .listen_unix(&bound_path)
        .expect_err("second bind over a live server must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    // The live server is untouched: a client still connects through the
    // original socket file.
    Connection::connect_unix(&bound_path).expect("live server still reachable");
    drain(&handle, joiner);
    rival.handle().shutdown();
    rival.run();

    // A stale socket file — left behind by a crashed daemon — is
    // reclaimed: nothing accepts on it, so the bind cleans up and
    // proceeds.
    let stale = socket_path("stale");
    drop(std::os::unix::net::UnixListener::bind(&stale).expect("make stale socket"));
    assert!(stale.exists(), "dropping a listener should leave the file");
    let mut server = Server::new(l4all_db());
    server.listen_unix(&stale).expect("stale socket reclaimed");
    let handle = server.handle();
    let joiner = std::thread::spawn(move || server.run());
    Connection::connect_unix(&stale).expect("connect over reclaimed path");
    drain(&handle, joiner);

    // A path occupied by a non-socket file is never deleted.
    let decoy = socket_path("decoy");
    std::fs::write(&decoy, b"not a socket").expect("write decoy");
    let mut server = Server::new(l4all_db());
    let err = server
        .listen_unix(&decoy)
        .expect_err("binding over a regular file must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    assert_eq!(
        std::fs::read(&decoy).expect("decoy survives"),
        b"not a socket"
    );
    std::fs::remove_file(&decoy).expect("cleanup");
    server.handle().shutdown();
    server.run();
}

// ---------------------------------------------------------------------------
// Live mutation over the wire
// ---------------------------------------------------------------------------

#[test]
fn wire_mutations_pin_old_statements_and_refresh_new_ones() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "mutate");
    let mut conn = Connection::connect_unix(&path).expect("connect");
    let options = ExecOptions::new().with_limit(200);

    // A statement prepared before any mutation pins epoch 0.
    let spec = &l4all_queries()[0];
    let statement = conn.prepare(spec.text).expect("prepare");
    let (baseline, _) = local_run(&db, spec.text, &options);

    // Mutate through the wire: brand-new nodes and a brand-new label, so
    // the committed query set is untouched.
    let mut first = Mutation::new();
    first.add("Live Node A", "liveknows", "Live Node B").add(
        "Live Node B",
        "liveknows",
        "Live Node C",
    );
    let report = conn.mutate(&first).expect("mutate");
    assert_eq!((report.epoch, report.added, report.removed), (1, 2, 0));
    // The server db and this test share one storage slot.
    assert_eq!(db.epoch(), 1);

    // The pre-mutation statement still answers from its pinned epoch…
    let mut stream = conn
        .execute_prepared(&statement, &options)
        .expect("execute pinned statement");
    let mut pinned = Vec::new();
    while let Some(answer) = stream.next_answer().expect("pinned stream") {
        pinned.push(answer);
    }
    drop(stream);
    assert_eq!(pinned, baseline, "pinned statement saw the mutation");

    // …while fresh text execution sees the new edges.
    let live_query = "(?X) <- (Live Node A, liveknows+, ?X)";
    let (answers, _) = conn.run(live_query, &options).expect("query new edges");
    let bound: Vec<&str> = answers.iter().map(|a| a.bindings["X"].as_str()).collect();
    assert_eq!(bound, ["Live Node B", "Live Node C"]);

    // Removal is symmetric; unknown edges are not counted.
    let mut second = Mutation::new();
    second
        .remove("Live Node B", "liveknows", "Live Node C")
        .remove("Never", "liveknows", "Existed");
    let report = conn.mutate(&second).expect("mutate remove");
    assert_eq!((report.epoch, report.added, report.removed), (2, 0, 1));
    let (answers, _) = conn.run(live_query, &options).expect("query after remove");
    assert_eq!(answers.len(), 1, "removed edge still reachable");

    // An empty batch is a no-op that does not spend an epoch.
    let report = conn.mutate(&Mutation::new()).expect("empty mutate");
    assert_eq!((report.epoch, report.added, report.removed), (2, 0, 0));
    assert_eq!(db.epoch(), 2);

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn mutations_under_traffic_stay_clean_and_background_compaction_runs() {
    let _guard = serve_lock();
    let db = l4all_db();
    // Threshold 1: every effective mutation arms the background compactor,
    // so the soak exercises mutate/compact/query interleavings hard.
    let config = ServerConfig {
        poll_interval: Duration::from_millis(5),
        compact_threshold: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::with_config(db.clone(), config);
    let path = socket_path("soak");
    server.listen_unix(&path).expect("bind unix socket");
    let handle = server.handle();
    let joiner = std::thread::spawn(move || server.run());

    let spec = &l4all_queries()[0];
    let options = ExecOptions::new().with_limit(200);
    let (baseline, _) = local_run(&db, spec.text, &options);

    // Readers hammer a committed query; the writer's edges use fresh nodes
    // and a fresh label, so every read must keep answering the baseline
    // bit-identically no matter which epoch it lands on.
    let mut threads = Vec::new();
    for reader in 0..3 {
        let path = path.clone();
        let options = options.clone();
        let baseline = baseline.clone();
        let text = spec.text.to_owned();
        threads.push(std::thread::spawn(move || {
            let mut conn = Connection::connect_unix(&path).expect("reader connect");
            for round in 0..15 {
                let (answers, _) = conn.run(&text, &options).expect("reader query");
                assert_eq!(answers, baseline, "reader {reader} round {round} diverged");
            }
        }));
    }
    let writer_path = path.clone();
    threads.push(std::thread::spawn(move || {
        let mut conn = Connection::connect_unix(&writer_path).expect("writer connect");
        for i in 0..25 {
            let mut mutation = Mutation::new();
            mutation.add("Soak A", &format!("soak{i}"), "Soak B");
            if i % 2 == 1 {
                mutation.remove("Soak A", &format!("soak{}", i - 1), "Soak B");
            }
            let report = conn.mutate(&mutation).expect("writer mutate");
            assert!(report.added >= 1);
        }
    }));
    for thread in threads {
        thread.join().expect("soak thread");
    }

    // Every mutation landed as its own epoch (compactions add more).
    assert!(db.epoch() >= 25, "epochs not advancing: {}", db.epoch());

    // The background compactor converges: keep nudging it (an empty batch
    // re-arms the trigger without spending an epoch) until the overlay is
    // folded into a fresh frozen CSR.
    let mut conn = Connection::connect_unix(&path).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.graph().overlay_edges() > 0 {
        assert!(Instant::now() < deadline, "background compaction stalled");
        conn.mutate(&Mutation::new()).expect("nudge compactor");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Post-soak the graph still serves the baseline, and the drain leaves
    // every gauge at zero.
    let (answers, _) = conn.run(spec.text, &options).expect("post-soak query");
    assert_eq!(answers, baseline);
    drop(conn);
    drain(&handle, joiner);
    let stats = handle.stats();
    assert_eq!(stats.gauges.executions, 0, "executions after soak");
    assert_eq!(stats.gauges.live_tuples, 0, "live tuples after soak");
    assert_eq!(stats.streams_in_flight, 0, "streams after soak");
    assert_workers_settle();
}

// ---------------------------------------------------------------------------
// Observability over the wire
// ---------------------------------------------------------------------------

#[test]
fn metrics_frame_round_trips_and_server_histogram_matches_client_view() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "metrics");
    let mut conn = Connection::connect_unix(&path).expect("connect");

    let text = l4all_queries()[0].text;
    let options = ExecOptions::new().with_limit(50);
    let mut latencies: Vec<Duration> = Vec::new();
    for _ in 0..16 {
        let start = Instant::now();
        conn.run(text, &options).expect("probe request");
        latencies.push(start.elapsed());
    }
    latencies.sort_unstable();
    let client_p50 = latencies[latencies.len() / 2];

    let snapshot = conn.metrics().expect("metrics frame");
    assert_eq!(snapshot.version, omega_protocol::METRICS_EXPOSITION_VERSION);
    assert!(
        snapshot.text.starts_with(omega_obs::EXPOSITION_HEADER),
        "unexpected exposition:\n{}",
        snapshot.text
    );
    // Engine counters made it into the server's registry.
    let executions = omega_obs::find_value(&snapshot.text, "omega_core_executions_total")
        .expect("executions counter exposed");
    assert!(
        executions >= 16.0,
        "executions counter too low: {executions}"
    );
    // The per-frame histogram saw every execute frame, and its median
    // agrees with the client's observed latency to within a histogram
    // bucket plus scheduling noise.
    let count = omega_obs::find_value(
        &snapshot.text,
        "omega_server_frame_ns_count{frame=\"execute\"}",
    )
    .expect("execute frame histogram exposed");
    assert!(count >= 16.0, "execute frame count too low: {count}");
    let server_p50_ns = omega_obs::find_value(
        &snapshot.text,
        "omega_server_frame_ns{frame=\"execute\",quantile=\"0.5\"}",
    )
    .expect("execute frame p50 exposed");
    let server_p50 = Duration::from_nanos(server_p50_ns as u64);
    let tolerance = client_p50.max(Duration::from_millis(10));
    let gap = server_p50.abs_diff(client_p50);
    assert!(
        gap <= tolerance,
        "server p50 {server_p50:?} vs client p50 {client_p50:?} (tolerance {tolerance:?})"
    );

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn profile_travels_the_wire_only_when_requested() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "profile");
    let mut conn = Connection::connect_unix(&path).expect("connect");
    let spec = &l4all_multi_conjunct_queries()[0];
    let options = ExecOptions::new().with_limit(50);

    // Without the flag: no profile in the Finished frame.
    let mut stream = conn.execute_text(spec.text, &options).expect("execute");
    while stream.next_answer().expect("stream").is_some() {}
    assert!(stream.profile().is_none(), "unrequested profile travelled");
    drop(stream);

    // With the flag: the per-phase breakdown arrives with the Finished
    // frame, covering parse through streaming.
    let mut stream = conn
        .execute_text(spec.text, &options.clone().with_profile(true))
        .expect("execute profiled");
    while stream.next_answer().expect("profiled stream").is_some() {}
    let profile = stream.profile().expect("profile requested").clone();
    drop(stream);
    for phase in [
        "parse",
        "compile",
        "conjunct_0",
        "rank_join",
        "streaming",
        "total",
    ] {
        assert!(
            profile.get(phase).is_some(),
            "phase {phase} missing from wire profile:\n{profile}"
        );
    }
    assert!(
        profile.get("total").expect("total phase") > 0,
        "total phase must be non-zero"
    );

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn stats_reply_carries_epoch_overlay_uptime_and_cache_occupancy() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "statsext");
    let mut conn = Connection::connect_unix(&path).expect("connect");

    let before = conn.stats().expect("stats");
    assert_eq!(before.epoch, 0);
    assert_eq!(before.overlay_edges, 0);

    // Text execution populates the prepared cache; a mutation advances the
    // epoch and lands one overlay edge.
    conn.run(l4all_queries()[0].text, &ExecOptions::new().with_limit(1))
        .expect("prime the prepared cache");
    let mut mutation = Mutation::new();
    mutation.add("Stats A", "statslink", "Stats B");
    conn.mutate(&mutation).expect("mutate");

    let after = conn.stats().expect("stats after");
    assert_eq!(after.epoch, 1, "epoch not reported: {after:?}");
    assert_eq!(after.overlay_edges, 1, "overlay edges not reported");
    assert!(
        after.prepared_statements >= 1,
        "prepared cache occupancy missing: {after:?}"
    );
    // Uptime is seconds-granular; it must simply never run backwards.
    assert!(after.uptime_secs >= before.uptime_secs);

    drop(conn);
    drain(&handle, joiner);
}

#[test]
fn stats_reply_reports_durability_state_for_a_wal_backed_database() {
    let _guard = serve_lock();
    let dir = std::env::temp_dir().join(format!("omega-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = generate_l4all(&L4AllConfig::tiny());
    let (db, _) = Database::with_governor_durable(
        data.graph,
        data.ontology,
        omega::core::EvalOptions::default(),
        GovernorConfig::default(),
        &omega::core::WalConfig::new(&dir),
    )
    .expect("durable open");
    let (handle, path, joiner) = spawn_unix(db, "walstats");
    let mut conn = Connection::connect_unix(&path).expect("connect");

    let before = conn.stats().expect("stats");
    assert_eq!(before.wal_seq, 0, "no mutations logged yet: {before:?}");
    assert_eq!(before.durable_epoch, 0);

    let mut mutation = Mutation::new();
    mutation.add("Crash A", "wallink", "Crash B");
    conn.mutate(&mutation).expect("mutate");

    let after = conn.stats().expect("stats after");
    assert_eq!(after.wal_seq, 1, "WAL sequence not reported: {after:?}");
    assert_eq!(
        after.durable_epoch, after.epoch,
        "fsync=always: the published epoch must be durable: {after:?}"
    );
    // The REPL's `stats` renders the same reply; pin the durability line.
    let rendered = format!("{after}");
    assert!(
        rendered.contains("wal_seq=1"),
        "durability state missing from the stats rendering:\n{rendered}"
    );

    drop(conn);
    drain(&handle, joiner);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Chaos: injected faults surface as typed wire errors
// ---------------------------------------------------------------------------

#[test]
fn injected_channel_faults_surface_as_typed_wire_errors() {
    let _guard = serve_lock();
    let db = l4all_db();
    let (handle, path, joiner) = spawn_unix(db.clone(), "chaos");
    let spec = &l4all_multi_conjunct_queries()[0];
    let options = ExecOptions::new()
        .with_limit(50)
        .with_parallel_conjuncts(true)
        .with_parallel_workers(2);

    for seed in [3u64, 42, 31337] {
        let plan = std::sync::Arc::new(FaultPlan::new(seed, 1.0).only(FaultPoint::ChannelSend));
        let guard = install(plan);
        let mut conn = Connection::connect_unix(&path).expect("connect");
        match conn.run(spec.text, &options) {
            // Either the fault landed before any send (clean typed error)…
            Err(ClientError::Remote(_)) => {}
            // …or the engine absorbed/evaded it and the stream completed.
            Ok(_) => {}
            Err(other) => panic!("seed {seed}: transport-level failure {other}"),
        }
        drop(guard);
        // The same connection (or a fresh one) serves clean traffic again.
        conn.run(spec.text, &ExecOptions::new().with_limit(5))
            .expect("connection usable after injected fault");
        drop(conn);
    }
    assert_workers_settle();
    assert_eq!(handle.stats().gauges.executions, 0);
    drain(&handle, joiner);
}
