//! The deterministic chaos suite: seeded fault-injection schedules over
//! multi-conjunct L4All and YAGO workloads.
//!
//! A [`FaultPlan`] decides failures purely as a function of
//! `(seed, injection point, hit counter)`, so every committed seed replays
//! the exact same schedule on every run and machine — CI sweeps the seeds
//! below (see the `chaos` job) and a reproduction needs nothing but the
//! seed. Set `OMEGA_CHAOS_SEED` to probe one specific seed instead.
//!
//! What the suite pins, per schedule:
//!
//! * **no hangs** — every execution terminates (the test binary's own
//!   timeout is the only clock),
//! * **typed failures only** — an injected fault surfaces as the matching
//!   [`OmegaError`] (or as a clean degraded stream under
//!   `OverloadPolicy::Degrade`), never as a panic,
//! * **no leaked workers** — `live_parallel_workers` returns to its
//!   baseline after every schedule,
//! * **no poisoned `Database`** — once the schedule is uninstalled, the
//!   same database answers the same queries bit-identically to its
//!   pre-chaos reference.
//!
//! The fault slot is process-global, so every test serialises on a
//! file-local mutex (same discipline as the concurrency suite).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use omega::core::eval::fault::{install, FaultPlan, FaultPoint};
use omega::core::{
    live_parallel_workers, Database, ExecOptions, OmegaError, OverloadPolicy, SnapshotError,
};
use omega::datagen::{
    generate_l4all, generate_yago, l4all_multi_conjunct_queries, yago_multi_conjunct_queries,
    L4AllConfig, YagoConfig,
};
use omega::{Answer, GraphStore, Ontology};

/// The committed chaos seeds. CI replays each one in its own job-matrix
/// entry; locally the whole set runs in sequence.
const SEEDS: [u64; 10] = [3, 7, 11, 42, 97, 1009, 4242, 31337, 65537, 999_983];

/// Serialises the suite: the fault slot and the worker gauge are both
/// process-global.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The seeds to replay: `OMEGA_CHAOS_SEED` (one seed) or the committed set.
fn seeds() -> Vec<u64> {
    match std::env::var("OMEGA_CHAOS_SEED") {
        Ok(s) => {
            let seed = s
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("OMEGA_CHAOS_SEED must be a u64, got {s:?}"));
            vec![seed]
        }
        Err(_) => SEEDS.to_vec(),
    }
}

/// Polls until the worker gauge drops back to `baseline`.
fn assert_workers_settle(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = live_parallel_workers();
        if live <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked conjunct workers: {live} live, expected {baseline}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The chaos workload: every multi-conjunct query of both study datasets,
/// exact and APPROX, against one database per dataset.
struct Workload {
    db: Database,
    /// `(query text, fault-free reference answers)`.
    cases: Vec<(String, Vec<Answer>)>,
}

fn workloads(request: &ExecOptions) -> Vec<Workload> {
    let l4all = generate_l4all(&L4AllConfig::tiny());
    let yago = generate_yago(&YagoConfig::tiny());
    let mut out = Vec::new();
    for (dataset, specs) in [
        (l4all, l4all_multi_conjunct_queries()),
        (yago, yago_multi_conjunct_queries()),
    ] {
        let db = Database::new(dataset.graph, dataset.ontology);
        let mut cases = Vec::new();
        for spec in specs {
            for operator in ["", "APPROX"] {
                let text = spec.with_operator_everywhere(operator);
                let reference = db.execute(&text, request).unwrap();
                cases.push((text, reference));
            }
        }
        out.push(Workload { db, cases });
    }
    out
}

/// A request bounded enough for a chaos sweep: top-50 answers, parallel
/// conjuncts (so worker/channel faults have threads to hit), and a generous
/// timeout so the deadline hook is armed without ever firing on its own.
fn chaos_request() -> ExecOptions {
    ExecOptions::new()
        .with_limit(50)
        .with_parallel_conjuncts(true)
        .with_timeout(Duration::from_secs(120))
}

/// Runs one execution under `catch_unwind`, asserting the no-panic
/// contract and returning the outcome.
fn run_guarded(
    db: &Database,
    text: &str,
    request: &ExecOptions,
) -> Result<Vec<Answer>, OmegaError> {
    let db = db.clone();
    let request = request.clone();
    let text_owned = text.to_owned();
    catch_unwind(AssertUnwindSafe(move || db.execute(&text_owned, &request)))
        .unwrap_or_else(|_| panic!("execution panicked under fault injection: {text}"))
}

/// After a schedule, the database must be unpoisoned: the exact reference
/// answers come back with no plan installed.
fn assert_database_survives(workload: &Workload, request: &ExecOptions) {
    for (text, reference) in &workload.cases {
        let again = workload.db.execute(text, request).unwrap();
        assert_eq!(&again, reference, "post-chaos answers diverged: {text}");
    }
}

/// Budget-acquisition faults: every failure is the typed
/// `ResourceExhausted`, nothing hangs, nothing leaks, and the database
/// answers bit-identically once the schedule ends.
#[test]
fn budget_faults_surface_typed_resource_exhaustion() {
    let _guard = chaos_lock();
    let request = chaos_request();
    let baseline = live_parallel_workers();
    for workload in workloads(&request) {
        for seed in seeds() {
            let plan = Arc::new(FaultPlan::new(seed, 0.002).only(FaultPoint::BudgetAcquire));
            {
                let _installed = install(Arc::clone(&plan));
                for (text, reference) in &workload.cases {
                    match run_guarded(&workload.db, text, &request) {
                        Ok(answers) => {
                            assert_eq!(&answers, reference, "lucky run diverged: {text}")
                        }
                        Err(OmegaError::ResourceExhausted { .. }) => {}
                        Err(other) => panic!("unexpected error under budget faults: {other}"),
                    }
                }
            }
            assert_workers_settle(baseline);
        }
        assert_database_survives(&workload, &request);
    }
}

/// The same budget schedules under `OverloadPolicy::Degrade`: every
/// execution ends cleanly — the fault becomes a truncated (possibly empty)
/// answer stream, never an error. (The *bit-identical prefix* guarantee is
/// a single-conjunct property and is pinned in `tests/governor.rs`; a rank
/// join over truncated inputs yields a subset, not necessarily a prefix.)
#[test]
fn degrade_turns_budget_faults_into_clean_streams() {
    let _guard = chaos_lock();
    let reference_request = chaos_request();
    let request = chaos_request().with_on_overload(OverloadPolicy::Degrade);
    let baseline = live_parallel_workers();
    for workload in workloads(&reference_request) {
        for seed in seeds() {
            let plan = Arc::new(FaultPlan::new(seed, 0.002).only(FaultPoint::BudgetAcquire));
            {
                let _installed = install(Arc::clone(&plan));
                for (text, _) in &workload.cases {
                    run_guarded(&workload.db, text, &request)
                        .unwrap_or_else(|e| panic!("degrade must not fail ({text}): {e}"));
                }
            }
            assert_workers_settle(baseline);
        }
        assert_database_survives(&workload, &reference_request);
    }
}

/// Deadline-clock faults (simulated clock jumps): the only observable
/// failure is `DeadlineExceeded`, exactly as if the wall clock had moved.
#[test]
fn clock_faults_surface_as_deadline_exceeded() {
    let _guard = chaos_lock();
    let request = chaos_request();
    let baseline = live_parallel_workers();
    for workload in workloads(&request) {
        for seed in seeds() {
            let plan = Arc::new(FaultPlan::new(seed, 0.01).only(FaultPoint::DeadlineClock));
            {
                let _installed = install(Arc::clone(&plan));
                for (text, reference) in &workload.cases {
                    match run_guarded(&workload.db, text, &request) {
                        Ok(answers) => {
                            assert_eq!(&answers, reference, "lucky run diverged: {text}")
                        }
                        Err(OmegaError::DeadlineExceeded) => {}
                        Err(other) => panic!("unexpected error under clock faults: {other}"),
                    }
                }
            }
            assert_workers_settle(baseline);
        }
        assert_database_survives(&workload, &request);
    }
}

/// Worker-spawn faults at rate 1.0: every spawn fails, every conjunct falls
/// back inline, and the answers are bit-identical — spawn failure is
/// invisible except in wall-clock time.
#[test]
fn spawn_faults_fall_back_inline_bit_identically() {
    let _guard = chaos_lock();
    let request = chaos_request();
    let baseline = live_parallel_workers();
    for workload in workloads(&request) {
        for seed in seeds() {
            let plan = Arc::new(FaultPlan::new(seed, 1.0).only(FaultPoint::WorkerSpawn));
            {
                let _installed = install(Arc::clone(&plan));
                for (text, reference) in &workload.cases {
                    let answers = run_guarded(&workload.db, text, &request)
                        .unwrap_or_else(|e| panic!("inline fallback must not fail ({text}): {e}"));
                    assert_eq!(&answers, reference, "inline fallback diverged: {text}");
                }
                assert!(
                    plan.fired(FaultPoint::WorkerSpawn) > 0,
                    "rate-1.0 spawn plan never consulted: the hook is wired wrong"
                );
            }
            assert_workers_settle(baseline);
        }
        assert_database_survives(&workload, &request);
    }
}

/// Channel-send faults: a worker abandoning its send looks like a
/// disconnect to the consumer, which must report the typed cancellation
/// (or run to completion if the schedule spared it) — never hang or panic.
#[test]
fn channel_faults_surface_cancelled_not_hung() {
    let _guard = chaos_lock();
    let request = chaos_request();
    let baseline = live_parallel_workers();
    for workload in workloads(&request) {
        for seed in seeds() {
            let plan = Arc::new(FaultPlan::new(seed, 0.05).only(FaultPoint::ChannelSend));
            {
                let _installed = install(Arc::clone(&plan));
                for (text, reference) in &workload.cases {
                    match run_guarded(&workload.db, text, &request) {
                        Ok(answers) => {
                            assert_eq!(&answers, reference, "lucky run diverged: {text}")
                        }
                        Err(OmegaError::Cancelled) | Err(OmegaError::DeadlineExceeded) => {}
                        Err(other) => panic!("unexpected error under channel faults: {other}"),
                    }
                }
            }
            assert_workers_settle(baseline);
        }
        assert_database_survives(&workload, &request);
    }
}

/// Snapshot-read faults surface as the typed `SnapshotError::Io`, and the
/// moment the schedule ends the very same file opens and answers queries.
#[test]
fn snapshot_read_faults_are_typed_and_transient() {
    let _guard = chaos_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let request = ExecOptions::new().with_limit(20);
    let text = l4all_multi_conjunct_queries()[0].with_operator_everywhere("APPROX");
    let reference = db.execute(&text, &request).unwrap();

    let path = std::env::temp_dir().join(format!("omega-chaos-{}.snap", std::process::id()));
    db.save_snapshot(&path).unwrap();
    {
        let _installed = install(Arc::new(
            FaultPlan::new(5, 1.0).only(FaultPoint::SnapshotRead),
        ));
        let err = Database::open_snapshot(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "got: {err}");
    }
    let reopened = Database::open_snapshot(&path).unwrap();
    assert_eq!(reopened.execute(&text, &request).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

/// Mutation-apply faults: the failure is the typed `MutationFailed`, the
/// publish is all-or-nothing — no epoch spent, no edge landed, answers
/// pristine — and the very same batch retries successfully once the
/// schedule ends.
#[test]
fn mutation_faults_are_all_or_nothing_and_retryable() {
    let _guard = chaos_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let request = ExecOptions::new().with_limit(50);
    let text = l4all_multi_conjunct_queries()[0].with_operator_everywhere("APPROX");
    let reference = db.execute(&text, &request).unwrap();

    let mut batch = db.begin_mutation();
    batch.add("Chaos A", "chaosknows", "Chaos B");
    for seed in seeds() {
        let plan = Arc::new(FaultPlan::new(seed, 1.0).only(FaultPoint::MutationApply));
        let _installed = install(Arc::clone(&plan));
        let err = db.apply(&batch).unwrap_err();
        assert!(
            matches!(err, OmegaError::MutationFailed { .. }),
            "got: {err}"
        );
        assert!(plan.fired(FaultPoint::MutationApply) > 0);
        assert_eq!(db.epoch(), 0, "failed apply spent an epoch");
        assert_eq!(
            db.execute(&text, &request).unwrap(),
            reference,
            "failed apply perturbed the graph"
        );
    }
    // The identical batch succeeds once no schedule is installed.
    let report = db.apply(&batch).unwrap();
    assert_eq!((report.epoch, report.added, report.removed), (1, 1, 0));
    assert_eq!(
        db.execute(&text, &request).unwrap(),
        reference,
        "an unrelated edge changed committed answers"
    );
}

/// The full storm: every injection point armed at once under
/// `OverloadPolicy::Degrade`. Any typed error (or clean prefix) is
/// acceptable; panics, hangs, leaked workers and poisoned state are not.
#[test]
fn full_storm_only_typed_errors_and_full_recovery() {
    let _guard = chaos_lock();
    let reference_request = chaos_request();
    let request = chaos_request().with_on_overload(OverloadPolicy::Degrade);
    let baseline = live_parallel_workers();
    for workload in workloads(&reference_request) {
        for seed in seeds() {
            let plan = Arc::new(FaultPlan::new(seed, 0.01));
            {
                let _installed = install(Arc::clone(&plan));
                for (text, _) in &workload.cases {
                    match run_guarded(&workload.db, text, &request) {
                        // Spared or degraded: a clean (possibly truncated)
                        // stream.
                        Ok(_) => {}
                        Err(
                            OmegaError::ResourceExhausted { .. }
                            | OmegaError::DeadlineExceeded
                            | OmegaError::Cancelled
                            | OmegaError::Internal { .. }
                            | OmegaError::Overloaded { .. },
                        ) => {}
                        Err(other) => panic!("untyped failure under the storm: {other}"),
                    }
                }
            }
            assert_workers_settle(baseline);
        }
        assert_database_survives(&workload, &reference_request);
    }
}

/// Sanity for the harness itself: `GraphStore`/`Ontology` construction has
/// no injection points, so dataset generation under a rate-1.0 storm is
/// untouched — the chaos surface is evaluation and snapshot IO only.
#[test]
fn datagen_is_outside_the_blast_radius() {
    let _guard = chaos_lock();
    let _installed = install(Arc::new(FaultPlan::new(1, 1.0)));
    let data = generate_l4all(&L4AllConfig::tiny());
    assert!(data.graph.node_count() > 0);
    let mut g = GraphStore::new();
    g.add_triple("a", "p", "b");
    let _ = Ontology::new();
}
