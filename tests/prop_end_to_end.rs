//! Cross-crate property tests: on random small graphs, the ranked evaluator,
//! the BFS baseline and the optimised drivers must agree, the flexible
//! operators must behave monotonically, and the prepared/service API must be
//! indistinguishable from one-shot execution — including under concurrency.

// `Omega` is kept as a deprecated shim; these tests deliberately compare the
// service API against it.
#![allow(deprecated)]

use std::sync::Arc;

use omega::core::{parse_query, BaselineEvaluator, Database, EvalOptions, ExecOptions, Omega};
use omega::graph::GraphStore;
use omega::ontology::Ontology;
use proptest::prelude::*;

const LABELS: [&str; 4] = ["p", "q", "r", "type"];

fn graph_strategy() -> impl Strategy<Value = Vec<(u8, usize, u8)>> {
    prop::collection::vec((0u8..12, 0usize..LABELS.len(), 0u8..12), 1..60)
}

/// Maps one random op to the concrete triple `build` would insert: `type`
/// targets a small set of class nodes so RELAX has something to work with.
fn materialise(s: u8, p: usize, o: u8) -> (String, String, String) {
    if LABELS[p] == "type" {
        (format!("n{s}"), "type".to_owned(), format!("C{}", o % 3))
    } else {
        (format!("n{s}"), LABELS[p].to_owned(), format!("n{o}"))
    }
}

/// The shared ontology shape over whatever classes/properties `g` holds.
fn attach_ontology(g: &mut GraphStore) -> Ontology {
    let mut o = Ontology::new();
    let root = g.add_node("CRoot");
    for c in 0..3 {
        if let Some(class) = g.node_by_label(&format!("C{c}")) {
            let _ = o.add_subclass(class, root);
        }
    }
    if let (Some(p), Some(q)) = (g.label_id("p"), g.label_id("q")) {
        let super_p = g.intern_label("super_p");
        let _ = o.add_subproperty(p, super_p);
        let _ = o.add_subproperty(q, super_p);
    }
    o
}

fn build(triples: &[(u8, usize, u8)]) -> (GraphStore, Ontology) {
    let mut g = GraphStore::new();
    for (s, p, o) in triples {
        let (subject, label, object) = materialise(*s, *p, *o);
        g.add_triple(&subject, &label, &object);
    }
    let o = attach_ontology(&mut g);
    (g, o)
}

const QUERIES: [&str; 6] = [
    "(?X, ?Y) <- (?X, p.q, ?Y)",
    "(?X, ?Y) <- (?X, p+, ?Y)",
    "(?X, ?Y) <- (?X, (p|q).r, ?Y)",
    "(?X, ?Y) <- (?X, p*.q, ?Y)",
    "(?X, ?Y) <- (?X, q-.p, ?Y)",
    "(?X, ?Y) <- (?X, type.type-, ?Y)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ranked evaluator's distance-0 answers equal the BFS baseline's
    /// answers on every query and random graph.
    #[test]
    fn ranked_matches_bfs_baseline(triples in graph_strategy(), qi in 0usize..QUERIES.len()) {
        let (g, o) = build(&triples);
        let query = parse_query(QUERIES[qi]).unwrap();
        let options = EvalOptions::default();
        let mut baseline = BaselineEvaluator::new(&query.conjuncts[0], &g, &o, &options).unwrap();
        let mut expected: Vec<_> = baseline.run().iter().map(|a| (a.x, a.y)).collect();
        expected.sort_unstable();
        expected.dedup();

        let db = Database::with_options(g.clone(), o.clone(), options);
        let prepared = db.prepare(QUERIES[qi]).unwrap();
        let mut stream_answers = Vec::new();
        for answer in prepared.answers(&ExecOptions::new()) {
            let a = answer.unwrap();
            if a.distance == 0 {
                let x = g.node_by_label(a.get("X").unwrap()).unwrap();
                let y = g.node_by_label(a.get("Y").unwrap()).unwrap();
                stream_answers.push((x, y));
            }
        }
        stream_answers.sort_unstable();
        stream_answers.dedup();
        prop_assert_eq!(expected, stream_answers);
    }

    /// APPROX answers are a superset of exact answers, arrive sorted by
    /// distance, and the exact ones sit at distance 0.
    #[test]
    fn approx_is_a_sorted_superset(triples in graph_strategy(), qi in 0usize..QUERIES.len()) {
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let exact = db.execute(QUERIES[qi], &ExecOptions::new()).unwrap();
        let approx_text = QUERIES[qi].replacen("<- (", "<- APPROX (", 1);
        let approx = db
            .execute(&approx_text, &ExecOptions::new().with_limit(200))
            .unwrap();
        let distances: Vec<u32> = approx.iter().map(|a| a.distance).collect();
        let mut sorted = distances.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&distances, &sorted);
        let zero = approx.iter().filter(|a| a.distance == 0).count();
        prop_assert_eq!(zero, exact.len().min(200));
    }

    /// A prepared query executed twice sequentially — and concurrently from
    /// four threads sharing one `Database` — yields exactly the answers and
    /// distances (including their order) of a one-shot `Omega::execute`.
    #[test]
    fn prepared_execution_matches_one_shot(triples in graph_strategy(), qi in 0usize..QUERIES.len(), flex in 0usize..2) {
        let (g, o) = build(&triples);
        let operator = ["APPROX ", "RELAX "][flex];
        let text = QUERIES[qi].replacen("<- (", &format!("<- {operator}("), 1);

        let omega = Omega::new(g.clone(), o.clone());
        let reference: Vec<_> = omega
            .execute(&text, None)
            .unwrap()
            .into_iter()
            .map(|a| (a.bindings, a.distance))
            .collect();

        let db = Database::new(g, o);
        let prepared = db.prepare(&text).unwrap();
        for _ in 0..2 {
            let got: Vec<_> = prepared
                .execute(&ExecOptions::new())
                .unwrap()
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            prop_assert_eq!(&got, &reference);
        }

        let mut concurrent = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let db = db.clone();
                    let text = text.clone();
                    scope.spawn(move || {
                        // Each worker goes through the shared cache: all four
                        // end up executing the same compiled plans.
                        let prepared = db.prepare(&text).unwrap();
                        prepared.execute(&ExecOptions::new()).unwrap()
                    })
                })
                .collect();
            for handle in handles {
                concurrent.push(handle.join().unwrap());
            }
        });
        for answers in concurrent {
            let got: Vec<_> = answers
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            prop_assert_eq!(&got, &reference);
        }
    }

    /// The frozen CSR backend is indistinguishable from the hash-map builder
    /// adjacency: identical neighbour slices at the storage layer, and
    /// identical answer sets *and distances* from the evaluator, for every
    /// query mode.
    #[test]
    fn csr_backend_matches_builder_adjacency(triples in graph_strategy(), qi in 0usize..QUERIES.len()) {
        use omega::core::ConjunctEvaluator;
        use omega::graph::Direction;

        let (builder_graph, o) = build(&triples);
        let mut frozen_graph = builder_graph.clone();
        frozen_graph.freeze();
        prop_assert!(frozen_graph.is_frozen());
        prop_assert!(!builder_graph.is_frozen());

        // Storage layer: every (node, label, direction) neighbour slice and
        // both mixed-label views must agree between the representations.
        for node in builder_graph.node_ids() {
            for (label, _) in builder_graph.labels() {
                for dir in [Direction::Outgoing, Direction::Incoming] {
                    prop_assert_eq!(
                        builder_graph.neighbors(node, label, dir),
                        frozen_graph.neighbors(node, label, dir)
                    );
                }
            }
            for dir in [Direction::Outgoing, Direction::Incoming] {
                prop_assert_eq!(
                    builder_graph.neighbors_any(node, dir),
                    frozen_graph.neighbors_any(node, dir)
                );
            }
        }
        for (label, _) in builder_graph.labels() {
            prop_assert_eq!(builder_graph.heads(label), frozen_graph.heads(label));
            prop_assert_eq!(builder_graph.tails(label), frozen_graph.tails(label));
        }

        // Evaluator layer: answer sets and distances agree in every mode.
        for operator in ["", "APPROX ", "RELAX "] {
            let text = QUERIES[qi].replacen("<- (", &format!("<- {operator}("), 1);
            let query = parse_query(&text).unwrap();
            let options = Arc::new(EvalOptions::default());
            let answers_on = |g: &omega::graph::GraphStore| {
                let plan = omega::core::eval::compile_conjunct(
                    &query.conjuncts[0],
                    g,
                    &o,
                    &options,
                )
                .unwrap();
                let mut eval =
                    ConjunctEvaluator::new(Arc::new(plan), g, &o, Arc::clone(&options), None);
                let mut v: Vec<_> = eval
                    .collect(Some(500))
                    .unwrap()
                    .into_iter()
                    .map(|a| (a.x, a.y, a.distance))
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(
                answers_on(&builder_graph),
                answers_on(&frozen_graph),
                "CSR answers diverge for {}", text
            );
        }
    }

    /// Bound admissibility, end to end: cost-guided evaluation (A* `f = g+h`
    /// ordering, dead-state and `g+h` pruning, deferred expansion,
    /// stats-driven planning) and plain `g`-ordered evaluation produce the
    /// same answers at the same distances, in the same non-decreasing
    /// distance sequence rank by rank, with equal `EvalStats.answers` — on
    /// random graphs, in every operator mode. Order *within* one distance
    /// class is the only thing allowed to differ (both orderings emit each
    /// distance class completely before the next).
    #[test]
    fn cost_guided_matches_unguided(triples in graph_strategy(), qi in 0usize..QUERIES.len(), flex in 0usize..3) {
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let operator = ["", "APPROX ", "RELAX "][flex];
        let text = QUERIES[qi].replacen("<- (", &format!("<- {operator}("), 1);
        let prepared = db.prepare(&text).unwrap();
        // Flexible full drains are huge on some random graphs; a generous
        // limit keeps the test fast while still crossing several distance
        // classes.
        let cap = 300usize;
        let collect = |guided: bool| {
            let request = ExecOptions::new().with_limit(cap).with_cost_guided(guided);
            let mut stream = prepared.answers(&request);
            let mut rows = Vec::new();
            for answer in stream.by_ref() {
                let a = answer.unwrap();
                rows.push((a.bindings, a.distance));
            }
            (rows, stream.stats())
        };
        let (on, on_stats) = collect(true);
        let (off, off_stats) = collect(false);

        // Identical distance sequence, rank by rank.
        let dist = |rows: &[(std::collections::BTreeMap<String, String>, u32)]| {
            rows.iter().map(|(_, d)| *d).collect::<Vec<_>>()
        };
        prop_assert_eq!(dist(&on), dist(&off), "distance ranks diverge for {}", text);
        // Identical answers per distance class (hence identical sorted
        // sequences); with a limit the last class may be truncated
        // differently, so compare the complete classes and containment of
        // the truncated one.
        let last_complete = if on.len() < cap { u32::MAX } else {
            on.last().map_or(u32::MAX, |(_, d)| d.saturating_sub(1))
        };
        let class_set = |rows: &[(std::collections::BTreeMap<String, String>, u32)], upto: u32| {
            let mut v: Vec<_> = rows.iter().filter(|(_, d)| *d <= upto).cloned().collect();
            v.sort();
            v
        };
        prop_assert_eq!(
            class_set(&on, last_complete),
            class_set(&off, last_complete),
            "per-distance answer sets diverge for {}", text
        );
        if on.len() < cap {
            // Fully drained: everything must agree, including the counters'
            // `answers` (the per-conjunct emission counts).
            prop_assert_eq!(on_stats.answers, off_stats.answers);
            prop_assert_eq!(class_set(&on, u32::MAX), class_set(&off, u32::MAX));
        }
    }

    /// A `LIMIT k` cost-guided run returns exactly a prefix-compatible
    /// selection of the unguided full drain: same length, same distance at
    /// every rank, every answer present in the full set at that distance.
    #[test]
    fn cost_guided_limited_prefixes_are_consistent(triples in graph_strategy(), qi in 0usize..QUERIES.len(), k in 1usize..8) {
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let text = QUERIES[qi].replacen("<- (", "<- APPROX (", 1);
        let prepared = db.prepare(&text).unwrap();
        let full: Vec<_> = prepared
            .execute(&ExecOptions::new().with_limit(500).with_cost_guided(false))
            .unwrap()
            .into_iter()
            .map(|a| (a.bindings, a.distance))
            .collect();
        let limited: Vec<_> = prepared
            .execute(&ExecOptions::new().with_limit(k).with_cost_guided(true))
            .unwrap()
            .into_iter()
            .map(|a| (a.bindings, a.distance))
            .collect();
        prop_assert_eq!(limited.len(), full.len().min(k));
        for (i, (bindings, d)) in limited.iter().enumerate() {
            prop_assert_eq!(*d, full[i].1, "rank-{} distance diverges for {}", i, text);
            prop_assert!(
                full.iter().any(|(b, fd)| b == bindings && fd == d),
                "limited answer missing from the full drain for {}", text
            );
        }
    }

    /// Interleaved freeze/mutate/query sequences: after every mutation
    /// batch the live database (frozen CSR + delta overlay) must be
    /// indistinguishable from a database rebuilt from scratch over the
    /// effective edge set — same `edge_count`, same node-index lookups,
    /// same answer sets — while statements prepared at earlier epochs keep
    /// answering bit-identically (answers *and* stats) from their pinned
    /// epoch. Compaction and the snapshot hydrate path (including mutating
    /// a snapshot-loaded store) preserve all of it.
    #[test]
    fn interleaved_mutations_match_a_rebuilt_graph_and_pin_epochs(
        triples in graph_strategy(),
        script in prop::collection::vec(
            prop::collection::vec(
                (any::<bool>(), 0u8..12, 0usize..LABELS.len(), 0u8..12),
                1..8,
            ),
            1..4,
        ),
        qi in 0usize..QUERIES.len(),
    ) {
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let request = ExecOptions::new().with_limit(300);
        let approx_text = QUERIES[qi].replacen("<- (", "<- APPROX (", 1);

        // The model: the effective edge set, mutated in lockstep.
        let mut effective: std::collections::BTreeSet<(String, String, String)> = triples
            .iter()
            .map(|(s, p, o)| materialise(*s, *p, *o))
            .collect();

        let sorted_rows = |db: &Database, text: &str| {
            let mut v: Vec<_> = db
                .execute(text, &request)
                .unwrap()
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            v.sort();
            v
        };
        let rebuilt = |set: &std::collections::BTreeSet<(String, String, String)>| {
            let mut g = GraphStore::new();
            for (s, l, t) in set {
                g.add_triple(s, l, t);
            }
            let o = attach_ontology(&mut g);
            Database::new(g, o)
        };
        let check_epoch = |db: &Database,
                           set: &std::collections::BTreeSet<(String, String, String)>| {
            prop_assert_eq!(db.graph().edge_count(), set.len(), "edge_count diverged at epoch {}", db.epoch());
            for (s, _, t) in set {
                prop_assert!(db.graph().node_by_label(s).is_some(), "lost node {}", s);
                prop_assert!(db.graph().node_by_label(t).is_some(), "lost node {}", t);
            }
            let reference = rebuilt(set);
            for text in [QUERIES[qi], approx_text.as_str()] {
                prop_assert_eq!(
                    sorted_rows(db, text),
                    sorted_rows(&reference, text),
                    "live overlay diverged from a rebuilt graph at epoch {} for {}", db.epoch(), text
                );
            }
        };
        // Pins one statement at the current epoch with its full output.
        let pin = |db: &Database| {
            let prepared = db.prepare(&approx_text).unwrap();
            let mut got = Vec::new();
            let stats;
            {
                let mut stream = prepared.answers(&request);
                for answer in stream.by_ref() {
                    got.push(answer.unwrap());
                }
                stats = stream.stats();
            }
            (prepared, got, stats)
        };

        check_epoch(&db, &effective);
        let mut pinned = vec![pin(&db)];
        for ops in &script {
            let mut batch = db.begin_mutation();
            for (is_add, s, p, o) in ops {
                let (subject, label, object) = materialise(*s, *p, *o);
                if *is_add {
                    batch.add(&subject, &label, &object);
                    effective.insert((subject, label, object));
                } else {
                    batch.remove(&subject, &label, &object);
                    effective.remove(&(subject, label, object));
                }
            }
            db.apply(&batch).unwrap();
            check_epoch(&db, &effective);
            pinned.push(pin(&db));
        }

        // Compaction folds the overlay without changing what is served.
        db.compact();
        check_epoch(&db, &effective);

        // Every pinned statement still answers bit-identically from its
        // epoch — mutations and compaction never reached it.
        for (prepared, expected, expected_stats) in &pinned {
            let mut stream = prepared.answers(&request);
            let mut again = Vec::new();
            for answer in stream.by_ref() {
                again.push(answer.unwrap());
            }
            prop_assert_eq!(&again, expected, "pinned statement drifted");
            prop_assert_eq!(&stream.stats(), expected_stats, "pinned stats drifted");
        }

        // The hydrate path: a snapshot of the live database reopens into an
        // equivalent store, which itself accepts further mutations.
        static SNAP: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "omega-prop-live-{}-{}.snap",
            std::process::id(),
            SNAP.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        db.save_snapshot(&path).unwrap();
        let hydrated = Database::open_snapshot(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        check_epoch(&hydrated, &effective);
        let mut batch = hydrated.begin_mutation();
        let mut after = effective.clone();
        for (is_add, s, p, o) in &script[0] {
            let (subject, label, object) = materialise(*s, *p, *o);
            if *is_add {
                batch.add(&subject, &label, &object);
                after.insert((subject, label, object));
            } else {
                batch.remove(&subject, &label, &object);
                after.remove(&(subject, label, object));
            }
        }
        hydrated.apply(&batch).unwrap();
        check_epoch(&hydrated, &after);
    }

    /// The distance-aware and disjunction drivers — toggled per request
    /// through `ExecOptions` — return the same answer multiset as plain
    /// evaluation on one shared database.
    #[test]
    fn optimised_drivers_agree_with_plain(triples in graph_strategy(), qi in 0usize..QUERIES.len()) {
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let approx_text = QUERIES[qi].replacen("<- (", "<- APPROX (", 1);
        let collect = |request: &ExecOptions| {
            let mut v: Vec<_> = db
                .execute(&approx_text, request)
                .unwrap()
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            v.sort();
            v
        };
        let plain = collect(&ExecOptions::new());
        let optimised = collect(
            &ExecOptions::new()
                .with_distance_aware(true)
                .with_disjunction_decomposition(true),
        );
        prop_assert_eq!(plain, optimised);
    }
}

/// The full triple set a store currently serves (overlay-aware).
fn triple_set(g: &GraphStore) -> std::collections::BTreeSet<(String, String, String)> {
    g.edges()
        .map(|e| {
            (
                g.node_label(e.source).to_owned(),
                g.label_name(e.label).to_owned(),
                g.node_label(e.target).to_owned(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The crash-fault soak of the write-ahead log: on random graphs and
    /// mutation scripts, cut the log at EVERY byte offset inside the final
    /// record — and separately corrupt every byte of it — and recovery must
    /// yield exactly the acknowledged-prefix graph (all batches but the
    /// last), match a database rebuilt from scratch over that prefix, and
    /// never panic. A cut at the exact record boundary is the clean-crash
    /// case and recovers the full history.
    #[test]
    fn wal_recovers_the_acknowledged_prefix_at_every_torn_byte(
        triples in graph_strategy(),
        script in prop::collection::vec(
            prop::collection::vec(
                (any::<bool>(), 0u8..12, 0usize..LABELS.len(), 0u8..12),
                1..5,
            ),
            1..4,
        ),
    ) {
        use omega::core::{FsyncPolicy, GovernorConfig, WalConfig};
        use omega::graph::wal::WAL_FILE;

        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let fresh_dir = || {
            let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let dir = std::env::temp_dir().join(format!(
                "omega-prop-wal-{}-{n}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };
        let open_over = |dir: &std::path::PathBuf| {
            let (g, o) = build(&triples);
            Database::with_governor_durable(
                g,
                o,
                EvalOptions::default(),
                GovernorConfig::default(),
                &WalConfig::new(dir).with_fsync(FsyncPolicy::Never),
            )
            .expect("durable open must not fail on a damaged log")
        };

        // Write the history: one WAL record per batch, tracking the
        // effective edge set after each acknowledged prefix and the log
        // length at each record boundary.
        let dir = fresh_dir();
        let (db, _) = open_over(&dir);
        let mut effective = triple_set(&db.graph());
        let mut prefixes = vec![effective.clone()];
        let log_path = dir.join(WAL_FILE);
        let mut boundaries = vec![std::fs::metadata(&log_path).unwrap().len()];
        for ops in &script {
            let mut batch = db.begin_mutation();
            for (is_add, s, p, o) in ops {
                let (subject, label, object) = materialise(*s, *p, *o);
                if *is_add {
                    batch.add(&subject, &label, &object);
                    effective.insert((subject, label, object));
                } else {
                    batch.remove(&subject, &label, &object);
                    effective.remove(&(subject, label, object));
                }
            }
            db.apply(&batch).unwrap();
            prefixes.push(effective.clone());
            boundaries.push(std::fs::metadata(&log_path).unwrap().len());
        }
        drop(db);
        let log = std::fs::read(&log_path).unwrap();
        prop_assert_eq!(log.len() as u64, *boundaries.last().unwrap());
        let final_start = boundaries[boundaries.len() - 2] as usize;
        let acknowledged = &prefixes[prefixes.len() - 2];
        let records_before_final = (script.len() - 1) as u64;

        // One full evaluator-level check: the acknowledged prefix answers
        // like a rebuilt reference (the cheap per-offset check below is
        // edge-set equality, which the overlay tests tie to answers).
        {
            let crash_dir = fresh_dir();
            std::fs::create_dir_all(&crash_dir).unwrap();
            std::fs::write(crash_dir.join(WAL_FILE), &log[..final_start]).unwrap();
            let (recovered, report) = open_over(&crash_dir);
            prop_assert_eq!(report.records, records_before_final);
            prop_assert_eq!(report.truncated_bytes, 0, "boundary cut is clean");
            let reference = {
                let mut g = GraphStore::new();
                for (s, l, t) in acknowledged {
                    g.add_triple(s, l, t);
                }
                let o = attach_ontology(&mut g);
                Database::new(g, o)
            };
            let request = ExecOptions::new().with_limit(300);
            for text in [QUERIES[0], QUERIES[1]] {
                let rows = |db: &Database| {
                    let mut v: Vec<_> = db
                        .execute(text, &request)
                        .unwrap()
                        .into_iter()
                        .map(|a| (a.bindings, a.distance))
                        .collect();
                    v.sort();
                    v
                };
                prop_assert_eq!(rows(&recovered), rows(&reference));
            }
            let _ = std::fs::remove_dir_all(&crash_dir);
        }

        // Every torn-write length: log cut mid-final-record.
        for cut in final_start + 1..log.len() {
            let crash_dir = fresh_dir();
            std::fs::create_dir_all(&crash_dir).unwrap();
            std::fs::write(crash_dir.join(WAL_FILE), &log[..cut]).unwrap();
            let (recovered, report) = open_over(&crash_dir);
            prop_assert_eq!(
                report.records, records_before_final,
                "cut at {} of {} replayed the wrong prefix", cut, log.len()
            );
            prop_assert_eq!(
                report.truncated_bytes,
                (cut - final_start) as u64,
                "torn tail not fully truncated at cut {}", cut
            );
            prop_assert_eq!(
                triple_set(&recovered.graph()),
                acknowledged.clone(),
                "recovered graph diverged from the acknowledged prefix at cut {}", cut
            );
            let _ = std::fs::remove_dir_all(&crash_dir);
        }

        // Every corrupted byte: full-length log, one byte of the final
        // record inverted (header, body or checksum — all must be caught).
        for i in final_start..log.len() {
            let crash_dir = fresh_dir();
            std::fs::create_dir_all(&crash_dir).unwrap();
            let mut damaged = log.clone();
            damaged[i] ^= 0xff;
            std::fs::write(crash_dir.join(WAL_FILE), &damaged).unwrap();
            let (recovered, report) = open_over(&crash_dir);
            prop_assert_eq!(
                report.records, records_before_final,
                "corruption at byte {} replayed the wrong prefix", i
            );
            prop_assert!(
                report.truncated_bytes > 0,
                "corruption at byte {} was not detected", i
            );
            prop_assert_eq!(
                triple_set(&recovered.graph()),
                acknowledged.clone(),
                "recovered graph diverged after corrupting byte {}", i
            );
            let _ = std::fs::remove_dir_all(&crash_dir);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
