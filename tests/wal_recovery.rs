//! Durability tests: the write-ahead delta log, crash recovery, rotation
//! checkpoints, and degraded read-only mode.
//!
//! What the suite pins:
//!
//! * **acknowledged ⇒ recovered** — every mutation whose `apply` returned
//!   `Ok` is present after dropping the database without any shutdown
//!   ceremony (the in-process stand-in for `kill -9`) and reopening over
//!   the same log directory,
//! * **rotation = incremental snapshot** — `compact`/`save_snapshot`
//!   rotate the log onto a checkpoint image, and recovery over
//!   checkpoint + tail log equals recovery over the full history,
//! * **typed degradation** — an injected append/fsync fault surfaces as
//!   `OmegaError::ReadOnly`, flips the database read-only (reads keep
//!   answering), and leaves a log that still recovers cleanly,
//! * **atomic snapshot writes** — every snapshot rename is followed by a
//!   parent-directory fsync (the [`dir_syncs`] regression counter).
//!
//! The fault slot is process-global, so the fault tests serialise on a
//! file-local mutex (same discipline as the chaos suite).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use omega::core::eval::fault::{install, FaultPlan, FaultPoint};
use omega::core::{
    Database, EvalOptions, ExecOptions, FsyncPolicy, GovernorConfig, OmegaError, RecoveryReport,
    WalConfig,
};
use omega::graph::snapshot::dir_syncs;
use omega::{GraphStore, Ontology};

/// Serialises the fault-injection tests (the fault slot is process-global).
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh, collision-free WAL directory under the system temp dir.
fn wal_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("omega-wal-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The base graph every durable database in this suite starts from.
fn seed() -> (GraphStore, Ontology, BTreeSet<(String, String, String)>) {
    let mut g = GraphStore::new();
    let mut set = BTreeSet::new();
    for (s, l, t) in [("a", "p", "b"), ("b", "p", "c"), ("c", "q", "a")] {
        g.add_triple(s, l, t);
        set.insert((s.to_owned(), l.to_owned(), t.to_owned()));
    }
    (g, Ontology::new(), set)
}

/// Opens (or reopens) a durable database over `dir` from the seed graph.
fn open_durable(dir: &PathBuf, fsync: FsyncPolicy) -> (Database, RecoveryReport) {
    let (g, o, _) = seed();
    Database::with_governor_durable(
        g,
        o,
        EvalOptions::default(),
        GovernorConfig::default(),
        &WalConfig::new(dir).with_fsync(fsync),
    )
    .expect("durable open")
}

/// Applies one batch of signed triples; `true` adds, `false` removes. The
/// `expected` model set is mutated in lockstep.
fn apply(
    db: &Database,
    ops: &[(bool, &str, &str, &str)],
    expected: &mut BTreeSet<(String, String, String)>,
) {
    let mut batch = db.begin_mutation();
    for (is_add, s, l, t) in ops {
        if *is_add {
            batch.add(s, l, t);
            expected.insert(((*s).to_owned(), (*l).to_owned(), (*t).to_owned()));
        } else {
            batch.remove(s, l, t);
            expected.remove(&((*s).to_owned(), (*l).to_owned(), (*t).to_owned()));
        }
    }
    db.apply(&batch).expect("acknowledged apply");
}

/// Asserts `db` serves exactly the `expected` edge set: same `edge_count`,
/// and the same answers as a database rebuilt from scratch over the set.
fn assert_state(db: &Database, expected: &BTreeSet<(String, String, String)>) {
    assert_eq!(
        db.graph().edge_count(),
        expected.len(),
        "edge count diverged"
    );
    let mut g = GraphStore::new();
    for (s, l, t) in expected {
        g.add_triple(s, l, t);
    }
    let reference = Database::new(g, Ontology::new());
    let request = ExecOptions::new().with_limit(200);
    for text in ["(?X, ?Y) <- (?X, p, ?Y)", "(?X, ?Y) <- (?X, (p|q)+, ?Y)"] {
        let rows = |db: &Database| {
            let mut v: Vec<_> = db
                .execute(text, &request)
                .expect("query over recovered graph")
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            v.sort();
            v
        };
        assert_eq!(rows(db), rows(&reference), "answers diverged for {text}");
    }
}

/// The standard three-batch history used by the recovery tests: an add, a
/// remove-then-re-add cycle, and a second remove — so replay order matters.
fn mutate_three_batches(db: &Database, expected: &mut BTreeSet<(String, String, String)>) {
    apply(
        db,
        &[(true, "c", "p", "d"), (false, "a", "p", "b")],
        expected,
    );
    apply(
        db,
        &[(true, "d", "q", "a"), (true, "a", "p", "b")],
        expected,
    );
    apply(
        db,
        &[(false, "b", "p", "c"), (true, "d", "p", "e")],
        expected,
    );
}

#[test]
fn kill9_recovers_every_acknowledged_mutation() {
    let dir = wal_dir("kill9");
    let (db, fresh) = open_durable(&dir, FsyncPolicy::Always);
    assert_eq!(fresh, RecoveryReport::default(), "fresh log has nothing");
    assert!(db.wal_attached());

    let (_, _, mut expected) = seed();
    mutate_three_batches(&db, &mut expected);
    assert_eq!(db.wal_seq(), 3, "one WAL record per acknowledged batch");
    assert_eq!(
        db.durable_epoch(),
        db.epoch(),
        "fsync=always: every published epoch is durable"
    );
    let epoch = db.epoch();
    // The crash: no compaction, no snapshot, no shutdown — just gone.
    drop(db);

    let (db, recovery) = open_durable(&dir, FsyncPolicy::Always);
    assert_eq!(recovery.records, 3, "all three batches replayed");
    assert_eq!(recovery.truncated_bytes, 0, "clean log, no torn tail");
    assert!(!recovery.from_checkpoint, "no rotation happened");
    assert_eq!(db.epoch(), epoch, "replay rebuilt the same epoch");
    assert_state(&db, &expected);

    // Sequencing continues where the dead process stopped.
    apply(&db, &[(true, "e", "q", "a")], &mut expected);
    assert_eq!(db.wal_seq(), 4, "recovered sequencing continues");
    assert_state(&db, &expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotation_checkpoint_plus_tail_log_is_an_incremental_snapshot() {
    let dir = wal_dir("rotate");
    let (db, _) = open_durable(&dir, FsyncPolicy::Always);
    let (_, _, mut expected) = seed();
    apply(
        &db,
        &[(true, "c", "p", "d"), (false, "a", "p", "b")],
        &mut expected,
    );
    apply(&db, &[(true, "d", "q", "a")], &mut expected);

    // Compaction rotates: the history so far moves into the checkpoint
    // image and the log restarts empty.
    db.compact();
    apply(&db, &[(true, "d", "p", "e")], &mut expected);
    drop(db);

    let (db, recovery) = open_durable(&dir, FsyncPolicy::Always);
    assert!(
        recovery.from_checkpoint,
        "recovery starts from the checkpoint"
    );
    assert_eq!(recovery.records, 1, "only the post-rotation batch replays");
    assert_state(&db, &expected);
    // Sequence numbers survive rotation: the next record continues the
    // global numbering, not the per-file one.
    apply(&db, &[(true, "e", "p", "f")], &mut expected);
    assert_eq!(db.wal_seq(), 4, "rotation must not reset sequencing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_snapshot_rotates_and_the_checkpoint_supersedes_the_image() {
    let dir = wal_dir("snap");
    let snap = std::env::temp_dir().join(format!("omega-wal-snap-{}.omega", std::process::id()));
    let (db, _) = open_durable(&dir, FsyncPolicy::Always);
    let (_, _, mut expected) = seed();
    apply(&db, &[(true, "c", "p", "d")], &mut expected);
    db.save_snapshot(&snap).expect("snapshot");
    // Mutations after the snapshot live only in the rotated (fresh) log.
    apply(&db, &[(false, "b", "p", "c")], &mut expected);
    drop(db);

    let (db, recovery) = Database::open_snapshot_durable(
        &snap,
        EvalOptions::default(),
        GovernorConfig::default(),
        &WalConfig::new(&dir),
    )
    .expect("durable snapshot open");
    assert!(recovery.from_checkpoint, "rotation wrote a checkpoint");
    assert_eq!(recovery.records, 1, "only the post-snapshot batch replays");
    assert_state(&db, &expected);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn fsync_never_acknowledges_before_durability() {
    let dir = wal_dir("never");
    let (db, _) = open_durable(&dir, FsyncPolicy::Never);
    let (_, _, mut expected) = seed();
    apply(&db, &[(true, "c", "p", "d")], &mut expected);
    assert_eq!(db.wal_seq(), 1, "the record was appended");
    assert_eq!(
        db.durable_epoch(),
        0,
        "fsync=never: nothing is known durable"
    );
    // The page cache of one process is still coherent: reopening in the
    // same process sees the unsynced record.
    drop(db);
    let (db, recovery) = open_durable(&dir, FsyncPolicy::Never);
    assert_eq!(recovery.records, 1);
    assert_state(&db, &expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_ms_policy_parses_and_acknowledges() {
    assert_eq!(FsyncPolicy::parse("every:25"), Ok(FsyncPolicy::EveryMs(25)));
    let dir = wal_dir("every");
    let (db, _) = open_durable(&dir, FsyncPolicy::EveryMs(0));
    let (_, _, mut expected) = seed();
    // Interval zero syncs on every append: durable immediately, like
    // `always` but through the group-commit path.
    apply(&db, &[(true, "c", "p", "d")], &mut expected);
    assert_eq!(db.durable_epoch(), db.epoch());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_fault_degrades_to_read_only_with_typed_errors() {
    let _guard = fault_lock();
    let dir = wal_dir("degrade");
    let (db, _) = open_durable(&dir, FsyncPolicy::Always);
    let (_, _, mut expected) = seed();
    apply(&db, &[(true, "c", "p", "d")], &mut expected);

    // A torn append: the record hits the disk corrupted and the write
    // errors. The apply must fail typed, and must NOT publish the batch.
    let chaos = install(Arc::new(FaultPlan::new(7, 1.0).only(FaultPoint::WalAppend)));
    let mut batch = db.begin_mutation();
    batch.add("x", "p", "y");
    let epoch_before = db.epoch();
    match db.apply(&batch) {
        Err(OmegaError::ReadOnly { message }) => {
            assert!(
                message.contains("append failed"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected ReadOnly, got {other:?}"),
    }
    drop(chaos);

    assert!(db.read_only(), "append failure degrades the database");
    assert_eq!(db.epoch(), epoch_before, "failed batch never published");
    // Degraded means read-only, not down: queries still answer...
    assert_state(&db, &expected);
    // ...and further writes fail typed without touching the log.
    let mut retry = db.begin_mutation();
    retry.add("x", "p", "y");
    assert!(
        matches!(db.apply(&retry), Err(OmegaError::ReadOnly { .. })),
        "degraded mode rejects writes until restart"
    );
    drop(db);

    // The torn tail is truncated on reopen; every acknowledged batch is
    // back, the poisoned one is gone.
    let (db, recovery) = open_durable(&dir, FsyncPolicy::Always);
    assert_eq!(recovery.records, 1, "only the acknowledged batch replays");
    assert!(recovery.truncated_bytes > 0, "the torn record was cut off");
    assert!(!db.read_only(), "a fresh open starts healthy");
    assert_state(&db, &expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_fault_degrades_but_recovery_is_at_least_once() {
    let _guard = fault_lock();
    let dir = wal_dir("fsync-fault");
    let (db, _) = open_durable(&dir, FsyncPolicy::Always);
    let (_, _, mut expected) = seed();
    apply(&db, &[(true, "c", "p", "d")], &mut expected);

    // The record lands intact but fsync fails: the batch is NOT
    // acknowledged (apply errors, nothing published), yet the bytes may
    // survive — recovery is at-least-once, never at-most-nothing.
    let chaos = install(Arc::new(FaultPlan::new(7, 1.0).only(FaultPoint::WalSync)));
    let mut batch = db.begin_mutation();
    batch.add("x", "p", "y");
    assert!(matches!(db.apply(&batch), Err(OmegaError::ReadOnly { .. })));
    drop(chaos);
    assert!(db.read_only());
    drop(db);

    let (db, recovery) = open_durable(&dir, FsyncPolicy::Always);
    assert_eq!(
        recovery.records, 2,
        "the intact-but-unsynced record replays too"
    );
    expected.insert(("x".to_owned(), "p".to_owned(), "y".to_owned()));
    assert_state(&db, &expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_writes_fsync_the_parent_directory() {
    let dir = wal_dir("dirsync");
    let snap = std::env::temp_dir().join(format!("omega-wal-dirsync-{}.omega", std::process::id()));
    let (db, _) = open_durable(&dir, FsyncPolicy::Always);
    let (_, _, mut expected) = seed();
    apply(&db, &[(true, "c", "p", "d")], &mut expected);

    // Every atomic snapshot write (user snapshots AND rotation
    // checkpoints) must fsync the parent directory after the rename, or
    // the rename itself can vanish in a crash. `save_snapshot` here does
    // both: the image write and the checkpoint rotation.
    let before = dir_syncs();
    db.save_snapshot(&snap).expect("snapshot");
    assert!(
        dir_syncs() >= before + 2,
        "expected a directory fsync for the image and the checkpoint"
    );

    let before = dir_syncs();
    apply(&db, &[(true, "d", "p", "e")], &mut expected);
    db.compact();
    assert!(
        dir_syncs() > before,
        "rotation's checkpoint write must fsync its directory"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn reconfigured_views_share_the_wal_and_the_degraded_state() {
    let dir = wal_dir("views");
    let (db, _) = open_durable(&dir, FsyncPolicy::Always);
    let (_, _, mut expected) = seed();
    // A view with different evaluation options still writes through the
    // same log — durability is a property of the storage, not the view.
    let view = db.reconfigured(EvalOptions::default());
    let mut batch = view.begin_mutation();
    batch.add("c", "p", "d");
    expected.insert(("c".to_owned(), "p".to_owned(), "d".to_owned()));
    view.apply(&batch).expect("apply through the view");
    assert_eq!(db.wal_seq(), 1, "the view's batch went through the WAL");
    drop(view);
    drop(db);

    let (db, recovery) = open_durable(&dir, FsyncPolicy::Always);
    assert_eq!(recovery.records, 1);
    assert_state(&db, &expected);
    let _ = std::fs::remove_dir_all(&dir);
}
