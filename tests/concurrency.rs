//! The parallel-conjunct concurrency suite: deterministic equivalence,
//! stress, cancellation and stats-merging tests for evaluation behind the
//! rank join.
//!
//! Parallel conjunct evaluation must be *bit-identical* to sequential
//! evaluation — same tuples, same rank order, same errors — because the rank
//! join consumes per-conjunct streams whose content and order do not depend
//! on worker scheduling. These tests pin that contract:
//!
//! * property tests over random graphs and random multi-conjunct queries
//!   compare the full answer sequences (bindings *and* order),
//! * an N-thread stress test hammers one `Database` with concurrent
//!   `PreparedQuery::answers` executions,
//! * deadline/drop tests assert workers blocked mid-traversal or on a full
//!   channel are reclaimed promptly, with no leaked workers (via the
//!   drop-guard gauge `live_parallel_workers`),
//! * a stats test asserts the merged `EvalStats` of parallel workers equals
//!   the sequential counters exactly on fully drained executions.
//!
//! Tests that assert on the global worker gauge serialise themselves with a
//! file-local lock so concurrent tests in this binary cannot skew the count.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use omega::core::{live_parallel_workers, Database, ExecOptions, OmegaError};
use omega::datagen::{generate_l4all, l4all_multi_conjunct_queries, L4AllConfig, QuerySpec};
use omega::graph::GraphStore;
use omega::ontology::Ontology;
use proptest::prelude::*;

/// Serialises the tests that assert on the process-wide worker gauge.
fn gauge_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Polls until the worker gauge drops back to `baseline` (it settles as
/// soon as every outstanding stream is dropped, because streams join their
/// workers on drop — the deadline is generous slack for scheduler noise).
fn assert_workers_settle(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = live_parallel_workers();
        if live <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked conjunct workers: {live} live, expected {baseline}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

const LABELS: [&str; 4] = ["p", "q", "r", "type"];

fn graph_strategy() -> impl Strategy<Value = Vec<(u8, usize, u8)>> {
    prop::collection::vec((0u8..12, 0usize..LABELS.len(), 0u8..12), 1..60)
}

fn build(triples: &[(u8, usize, u8)]) -> (GraphStore, Ontology) {
    let mut g = GraphStore::new();
    for (s, p, o) in triples {
        if LABELS[*p] == "type" {
            g.add_triple(&format!("n{s}"), "type", &format!("C{}", o % 3));
        } else {
            g.add_triple(&format!("n{s}"), LABELS[*p], &format!("n{o}"));
        }
    }
    let mut o = Ontology::new();
    let root = g.add_node("CRoot");
    for c in 0..3 {
        if let Some(class) = g.node_by_label(&format!("C{c}")) {
            let _ = o.add_subclass(class, root);
        }
    }
    if let (Some(p), Some(q)) = (g.label_id("p"), g.label_id("q")) {
        let super_p = g.intern_label("super_p");
        let _ = o.add_subproperty(p, super_p);
        let _ = o.add_subproperty(q, super_p);
    }
    (g, o)
}

/// Multi-conjunct query templates: chains, stars and a class join, shaped so
/// every later conjunct shares a variable with an earlier one.
const MULTI_QUERIES: [&str; 6] = [
    "(?X, ?Y) <- (?X, p, ?Y), (?Y, q, ?Z)",
    "(?X, ?Z) <- (?X, p.q, ?Y), (?X, r, ?Z)",
    "(?X, ?Y, ?Z) <- (?X, p, ?Y), (?X, q, ?Z), (?X, r, ?W)",
    "(?X, ?Y) <- (?X, p+, ?Y), (?Y, q, ?Z), (?X, r, ?W)",
    "(?X, ?Y) <- (?X, p|q, ?Y), (?Y, (q.r)|r, ?Z)",
    "(?X, ?C) <- (?X, type, ?C), (?Y, type, ?C), (?X, p, ?Z)",
];

/// Applies `operator` to every conjunct of a template, through the same
/// rewrite the bench suite uses.
fn with_operator(template: &'static str, operator: &str) -> String {
    QuerySpec {
        id: "template",
        text: template,
        flexible_in_study: true,
    }
    .with_operator_everywhere(operator)
}

/// One emitted answer, flattened: name-keyed bindings plus total distance.
type Emitted = (Vec<(String, String)>, u32);

/// One execution's full output: `(bindings, distance)` in emission order, or
/// the terminating error.
fn collect(db: &Database, text: &str, request: &ExecOptions) -> Result<Vec<Emitted>, OmegaError> {
    let prepared = db.prepare(text)?;
    let mut out = Vec::new();
    for answer in prepared.answers(request) {
        let a = answer?;
        out.push((
            a.bindings
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            a.distance,
        ));
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel evaluation returns exactly the sequential answer sequence —
    /// same tuples, same rank order — on random graphs, random
    /// multi-conjunct queries and every operator mode, including with a
    /// tiny channel and a restricted worker budget.
    #[test]
    fn parallel_answers_equal_sequential(
        triples in graph_strategy(),
        qi in 0usize..MULTI_QUERIES.len(),
        flex in 0usize..3,
    ) {
        let _guard = gauge_lock();
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let operator = ["", "APPROX", "RELAX"][flex];
        let text = with_operator(MULTI_QUERIES[qi], operator);
        let reference = collect(&db, &text, &ExecOptions::new().with_parallel_conjuncts(false));
        for request in [
            ExecOptions::new().with_parallel_conjuncts(true),
            ExecOptions::new()
                .with_parallel_conjuncts(true)
                .with_parallel_channel_capacity(1),
            ExecOptions::new()
                .with_parallel_conjuncts(true)
                .with_parallel_workers(1),
        ] {
            let got = collect(&db, &text, &request);
            prop_assert_eq!(&got, &reference, "diverged on {} with {:?}", text, request);
        }
    }

    /// Limits interact identically with both modes: the first `k` parallel
    /// answers are the first `k` sequential answers.
    #[test]
    fn limited_prefixes_agree(
        triples in graph_strategy(),
        qi in 0usize..MULTI_QUERIES.len(),
        limit in 1usize..8,
    ) {
        let _guard = gauge_lock();
        let (g, o) = build(&triples);
        let db = Database::new(g, o);
        let text = with_operator(MULTI_QUERIES[qi], "APPROX");
        let seq = collect(
            &db,
            &text,
            &ExecOptions::new().with_parallel_conjuncts(false).with_limit(limit),
        );
        let par = collect(
            &db,
            &text,
            &ExecOptions::new().with_parallel_conjuncts(true).with_limit(limit),
        );
        prop_assert_eq!(&par, &seq, "limited prefix diverged on {}", text);
    }
}

/// N threads hammer one shared `Database` with concurrent parallel
/// executions of every multi-conjunct query; every execution must equal the
/// sequential reference, and no worker may leak once all streams are done.
#[test]
fn stress_concurrent_prepared_answers_on_one_database() {
    let _guard = gauge_lock();
    const THREADS: usize = 8;
    const ITERS: usize = 3;

    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let baseline = live_parallel_workers();

    let seq = ExecOptions::new()
        .with_parallel_conjuncts(false)
        .with_limit(50);
    let par = ExecOptions::new()
        .with_parallel_conjuncts(true)
        .with_limit(50);
    let mut cases = Vec::new();
    for spec in l4all_multi_conjunct_queries() {
        for operator in ["", "APPROX"] {
            let text = spec.with_operator_everywhere(operator);
            let reference = collect(&db, &text, &seq).unwrap();
            cases.push((text, reference));
        }
    }

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let db = db.clone();
            let par = par.clone();
            let cases = &cases;
            scope.spawn(move || {
                for i in 0..ITERS {
                    // Stagger the case order per thread so different queries
                    // overlap in time.
                    for (case, (text, reference)) in cases
                        .iter()
                        .enumerate()
                        .cycle()
                        .skip(worker + i)
                        .take(cases.len())
                    {
                        let got = collect(&db, text, &par).unwrap();
                        assert_eq!(
                            &got, reference,
                            "worker {worker} iteration {i} diverged on case {case}: {text}"
                        );
                    }
                }
            });
        }
    });
    assert_workers_settle(baseline);
}

/// A zero timeout fails with `DeadlineExceeded` in parallel mode exactly as
/// sequentially, and the cancelled workers are reclaimed.
#[test]
fn parallel_deadline_exceeded_and_workers_reclaimed() {
    let _guard = gauge_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let baseline = live_parallel_workers();
    let text = l4all_multi_conjunct_queries()[1].with_operator_everywhere("APPROX");
    let request = ExecOptions::new()
        .with_parallel_conjuncts(true)
        .with_timeout(Duration::ZERO);
    let err = db.execute(&text, &request).unwrap_err();
    assert!(matches!(err, OmegaError::DeadlineExceeded));
    assert_workers_settle(baseline);
}

/// A worker parked on a *full* channel (capacity 1, consumer not pulling)
/// must observe the wall-clock deadline inside its blocked-send loop and
/// exit on its own — before the stream is dropped or polled again.
#[test]
fn worker_blocked_on_full_channel_observes_deadline() {
    let _guard = gauge_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let baseline = live_parallel_workers();
    let text = l4all_multi_conjunct_queries()[0].with_operator_everywhere("APPROX");
    let prepared = db.prepare(&text).unwrap();
    let timeout = Duration::from_millis(50);
    let request = ExecOptions::new()
        .with_parallel_conjuncts(true)
        .with_parallel_channel_capacity(1)
        .with_timeout(timeout);
    let mut answers = prepared.answers(&request);
    // Do not consume: the workers fill their 1-slot channels and block.
    // Wait until the deadline has certainly passed (the gauge alone cannot
    // distinguish "workers exited" from "workers not started yet"), then
    // require that every blocked worker observed it and exited without any
    // help from the consumer side.
    std::thread::sleep(timeout + Duration::from_millis(20));
    assert_workers_settle(baseline);
    // The stream itself then reports the deadline.
    assert!(matches!(
        answers.next_answer(),
        Err(OmegaError::DeadlineExceeded)
    ));
}

/// Dropping an answer stream mid-flight cancels workers blocked on a full
/// channel or deep in a traversal; the drop joins them, so the gauge is
/// settled immediately afterwards.
#[test]
fn dropping_stream_mid_flight_reclaims_workers() {
    let _guard = gauge_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let baseline = live_parallel_workers();
    let text = l4all_multi_conjunct_queries()[3].with_operator_everywhere("APPROX");
    let prepared = db.prepare(&text).unwrap();
    for capacity in [1, 1024] {
        let request = ExecOptions::new()
            .with_parallel_conjuncts(true)
            .with_parallel_channel_capacity(capacity);
        let mut answers = prepared.answers(&request);
        assert!(answers.next_answer().unwrap().is_some(), "stream produces");
        drop(answers);
        assert_eq!(
            live_parallel_workers(),
            baseline,
            "drop must join every worker (capacity {capacity})"
        );
    }
}

/// Merged `EvalStats` from parallel workers equal the sequential counters
/// exactly on fully drained executions — the only case where the comparison
/// is well-defined: eager workers legitimately overshoot a limited (or
/// early-cancelled) consumer. A bespoke small graph keeps full flexible
/// drains affordable in debug builds; the distance-aware case checks the
/// escalation (`restarts`) counter merges correctly too.
#[test]
fn parallel_stats_merge_equals_sequential() {
    let _guard = gauge_lock();
    let mut g = GraphStore::new();
    g.add_triple("alice", "knows", "bob");
    g.add_triple("bob", "knows", "carol");
    g.add_triple("carol", "knows", "dave");
    g.add_triple("alice", "worksAt", "acme");
    g.add_triple("bob", "worksAt", "acme");
    g.add_triple("alice", "type", "Student");
    g.add_triple("bob", "type", "Person");
    let mut o = Ontology::new();
    let student = g.node_by_label("Student").unwrap();
    let person = g.node_by_label("Person").unwrap();
    o.add_subclass(student, person).unwrap();
    let knows = g.label_id("knows").unwrap();
    let related = g.intern_label("related");
    o.add_subproperty(knows, related).unwrap();
    let db = Database::new(g, o);

    let cases = [
        (
            "exact",
            "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
            false,
        ),
        (
            "approx",
            "(?X, ?Z) <- APPROX (?X, knows, ?Y), APPROX (?Y, worksAt, ?Z)",
            false,
        ),
        (
            "relax",
            "(?X, ?Y) <- RELAX (?X, related, ?Y), (?X, worksAt, ?Z)",
            false,
        ),
        (
            "distance-aware",
            "(?X, ?Z) <- APPROX (?X, knows.knows, ?Y), APPROX (?Y, worksAt, ?Z)",
            true,
        ),
    ];
    for (name, text, distance_aware) in cases {
        let prepared = db.prepare(text).unwrap();
        let stats_of = |parallel: bool| {
            let request = ExecOptions::new()
                .with_parallel_conjuncts(parallel)
                .with_distance_aware(distance_aware);
            let mut stream = prepared.answers(&request);
            let drained = stream.collect_up_to(None).unwrap();
            (drained.len(), stream.stats())
        };
        let (seq_count, seq_stats) = stats_of(false);
        let (par_count, par_stats) = stats_of(true);
        assert_eq!(seq_count, par_count, "{name}: answer counts differ");
        assert_eq!(
            seq_stats, par_stats,
            "{name}: merged parallel EvalStats drifted from sequential"
        );
        if distance_aware {
            assert!(
                seq_stats.restarts > 0,
                "distance-aware case must exercise the escalation counter"
            );
        }
    }
}

/// Per-request parallelism composes with the other toggles: the optimised
/// drivers behind workers still produce the sequential answer sequence.
#[test]
fn parallel_composes_with_optimisation_toggles() {
    let _guard = gauge_lock();
    let data = generate_l4all(&L4AllConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    for spec in l4all_multi_conjunct_queries() {
        let text = spec.with_operator_everywhere("APPROX");
        for toggles in [
            ExecOptions::new().with_distance_aware(true).with_limit(40),
            ExecOptions::new()
                .with_disjunction_decomposition(true)
                .with_limit(40),
            ExecOptions::new()
                .with_distance_aware(true)
                .with_batch_size(1)
                .with_limit(40),
        ] {
            let seq = collect(&db, &text, &toggles.clone().with_parallel_conjuncts(false));
            let par = collect(&db, &text, &toggles.clone().with_parallel_conjuncts(true));
            assert_eq!(
                par, seq,
                "{}: {:?} diverged under parallelism",
                spec.id, toggles
            );
        }
    }
}
