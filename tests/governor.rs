//! The resource-governor suite: admission, shared-pool accounting, budget
//! isolation, the 100-execution cancellation/deadline soak, and the
//! degrade-prefix acceptance on the YAGO study queries.
//!
//! The contract under test:
//!
//! * every execution against a governed [`Database`] is admitted by the
//!   database-wide [`ResourceGovernor`] and draws its live tuples from the
//!   shared pool in chunked reservations,
//! * all reservations, permits and gauge contributions are RAII — however
//!   an execution ends (drained, limited, deadline, cancelled, dropped
//!   mid-stream), the gauges return to zero,
//! * one query's budget failure is invisible to every other query,
//! * under `OverloadPolicy::Degrade`, a tripped budget ends the stream
//!   cleanly with `degraded: true` and a truncation reason, and for
//!   single-conjunct queries the partial answers are a bit-identical
//!   prefix of the uncapped run.
//!
//! Tests asserting on the process-wide worker gauge serialise on a
//! file-local lock, like the concurrency suite.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use omega::core::{
    live_parallel_workers, Database, EvalOptions, ExecOptions, GovernorConfig, OmegaError,
    OverloadPolicy, TruncationReason,
};
use omega::datagen::{
    generate_l4all, generate_yago, l4all_multi_conjunct_queries, yago_queries, L4AllConfig,
    YagoConfig,
};

fn gauge_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn assert_workers_settle(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = live_parallel_workers();
        if live <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked conjunct workers: {live} live, expected {baseline}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn governed_l4all(config: GovernorConfig) -> Database {
    let data = generate_l4all(&L4AllConfig::tiny());
    Database::with_governor(data.graph, data.ontology, EvalOptions::default(), config)
}

/// The soak: 100 executions across worker threads against one governed
/// database, deliberately mixing clean drains, answer limits, zero
/// timeouts and mid-stream drops. Afterwards every gauge must be exactly
/// zero — no reservation, permit or buffer contribution may survive its
/// execution.
#[test]
fn soak_100_executions_returns_the_pool_to_zero() {
    let _guard = gauge_lock();
    let db = governed_l4all(
        GovernorConfig::default()
            .with_max_live_tuples(1 << 20)
            .with_max_concurrent(16),
    );
    let baseline = live_parallel_workers();
    let specs = l4all_multi_conjunct_queries();
    let texts: Vec<String> = specs
        .iter()
        .map(|s| s.with_operator_everywhere("APPROX"))
        .collect();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 25;
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let db = db.clone();
            let texts = &texts;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let text = &texts[(worker + i) % texts.len()];
                    let prepared = db.prepare(text).unwrap();
                    match i % 4 {
                        // Clean drain, bounded by an answer limit.
                        0 => {
                            let request = ExecOptions::new()
                                .with_limit(30)
                                .with_parallel_conjuncts(i % 2 == 0);
                            prepared.execute(&request).unwrap();
                        }
                        // Already-expired deadline: typed error, nothing
                        // retained.
                        1 => {
                            let request = ExecOptions::new().with_timeout(Duration::ZERO);
                            assert!(matches!(
                                prepared.execute(&request),
                                Err(OmegaError::DeadlineExceeded)
                            ));
                        }
                        // Pull a single answer, then drop the stream
                        // mid-flight.
                        2 => {
                            let request = ExecOptions::new().with_parallel_conjuncts(i % 2 == 0);
                            let mut stream = prepared.answers(&request);
                            let _ = stream.next_answer().unwrap();
                            drop(stream);
                        }
                        // Longer drain (APPROX multi-conjunct streams are
                        // effectively unbounded on this dataset, so every
                        // drain carries a limit).
                        _ => {
                            prepared
                                .execute(&ExecOptions::new().with_limit(80))
                                .unwrap();
                        }
                    }
                }
            });
        }
    });

    assert_workers_settle(baseline);
    let gauges = db.governor().gauges();
    assert_eq!(gauges.executions, 0, "permits leaked");
    assert_eq!(gauges.live_tuples, 0, "tuple reservations leaked");
    assert_eq!(gauges.join_buffer_entries, 0, "buffer gauge leaked");
    assert_eq!(gauges.rejected, 0, "soak was sized to never reject");
}

/// Budget isolation: a query failing its own tight `max_tuples` budget is
/// invisible to concurrent uncapped queries on the same governed database —
/// they observe neither the failure nor any shrunken pool.
#[test]
fn one_query_budget_failure_is_invisible_to_others() {
    let db = governed_l4all(
        GovernorConfig::default()
            .with_max_live_tuples(1 << 20)
            .with_max_concurrent(16),
    );
    let capped_text = l4all_multi_conjunct_queries()[1].with_operator_everywhere("APPROX");
    let free_text = l4all_multi_conjunct_queries()[0].with_operator_everywhere("APPROX");
    let reference = db
        .execute(&free_text, &ExecOptions::new().with_limit(40))
        .unwrap();

    std::thread::scope(|scope| {
        let failing = scope.spawn(|| {
            for _ in 0..20 {
                let err = db
                    .execute(&capped_text, &ExecOptions::new().with_max_tuples(3))
                    .unwrap_err();
                assert!(matches!(err, OmegaError::ResourceExhausted { .. }));
            }
        });
        for _ in 0..10 {
            let got = db
                .execute(&free_text, &ExecOptions::new().with_limit(40))
                .unwrap();
            assert_eq!(got, reference, "uncapped query perturbed by a failing one");
        }
        failing.join().unwrap();
    });

    let gauges = db.governor().gauges();
    assert_eq!(gauges.live_tuples, 0);
    assert_eq!(gauges.executions, 0);
}

/// Global pool saturation is its own truncation reason: a database whose
/// shared pool is smaller than the query's appetite fails with
/// `ResourceExhausted` under `Fail` and degrades with
/// `TruncationReason::PoolExhausted` under `Degrade`.
#[test]
fn pool_saturation_trips_with_pool_exhausted_reason() {
    // One reservation chunk fits, the second does not: the pool itself is
    // the binding constraint (no per-query max_tuples is set).
    let db = governed_l4all(GovernorConfig::default().with_max_live_tuples(1500));
    let text = l4all_multi_conjunct_queries()[1].with_operator_everywhere("APPROX");
    let err = db.execute(&text, &ExecOptions::new()).unwrap_err();
    assert!(matches!(err, OmegaError::ResourceExhausted { .. }));

    let prepared = db.prepare(&text).unwrap();
    let mut stream =
        prepared.answers(&ExecOptions::new().with_on_overload(OverloadPolicy::Degrade));
    stream.collect_up_to(None).unwrap();
    let stats = stream.stats();
    assert!(stats.degraded);
    assert_eq!(stats.truncation, Some(TruncationReason::PoolExhausted));
    drop(stream);
    assert_eq!(db.governor().gauges().live_tuples, 0);
}

/// The acceptance criterion from the study queries: YAGO Q4 and Q5 under a
/// tight `max_tuples` budget with `on_overload = Degrade` return
/// *non-empty* partial answers that are a *bit-identical prefix* of the
/// uncapped run, with `degraded: true` and a truncation reason.
#[test]
fn yago_q4_q5_degrade_to_nonempty_bit_identical_prefixes() {
    let data = generate_yago(&YagoConfig::tiny());
    let db = Database::new(data.graph, data.ontology);
    let queries = yago_queries();
    for id in ["Q4", "Q5"] {
        let spec = queries.iter().find(|q| q.id == id).unwrap();
        let text = spec.with_operator("APPROX");
        let prepared = db.prepare(&text).unwrap();
        // "Uncapped" means no tuple budget; the answer limit only bounds how
        // far down the ranked stream we compare, which is exactly what a
        // prefix check needs (APPROX streams on YAGO are near-unbounded).
        let request = ExecOptions::new().with_limit(400);
        let reference = prepared.execute(&request).unwrap();
        assert!(!reference.is_empty(), "{id}: uncapped run must answer");

        // Sweep budgets upward until one is tight enough to trip but roomy
        // enough to have proven some answers first — the dataset is
        // synthetic, so the exact threshold is not worth hard-coding. The
        // range spans Q5 (first answers near 2k tuples) through Q4, whose
        // four-hop path pays ~100k tuples of exploration up front.
        let mut accepted = false;
        for budget in [2048, 8192, 32768, 131_072, 262_144] {
            let capped = request.clone().with_max_tuples(budget);
            let mut stream =
                prepared.answers(&capped.clone().with_on_overload(OverloadPolicy::Degrade));
            let partial = stream.collect_up_to(None).unwrap();
            let stats = stream.stats();
            if !stats.degraded {
                // Budget no longer trips: everything below was too tight.
                assert_eq!(partial, reference, "{id}: undegraded run must be full");
                break;
            }
            assert_eq!(stats.truncation, Some(TruncationReason::TupleBudget));
            assert!(
                partial.len() < reference.len(),
                "{id}: degraded run cannot be complete"
            );
            assert_eq!(
                partial[..],
                reference[..partial.len()],
                "{id}: degraded answers must be a bit-identical prefix (budget {budget})"
            );
            // The same budget under the default policy fails loudly.
            assert!(matches!(
                prepared.execute(&capped),
                Err(OmegaError::ResourceExhausted { .. })
            ));
            if !partial.is_empty() {
                accepted = true;
            }
        }
        assert!(
            accepted,
            "{id}: no budget produced a non-empty degraded prefix"
        );
    }
}

/// Admission pacing at the service layer: a token bucket with zero refill
/// admits exactly its burst, then rejects with the configured retry hint.
#[test]
fn token_bucket_admission_limits_burst() {
    let db = governed_l4all(
        GovernorConfig::default()
            .with_admission_rate(0.0, 2)
            .with_retry_after(Duration::from_millis(3)),
    );
    let text = l4all_multi_conjunct_queries()[0].with_operator_everywhere("");
    for _ in 0..2 {
        db.execute(&text, &ExecOptions::new().with_limit(5))
            .unwrap();
    }
    let err = db
        .execute(&text, &ExecOptions::new().with_limit(5))
        .unwrap_err();
    assert!(
        matches!(err, OmegaError::Overloaded { retry_after } if retry_after >= Duration::from_millis(3))
    );
    assert_eq!(db.governor().gauges().rejected, 1);
}
