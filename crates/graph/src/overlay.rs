//! The mutable delta overlay over a frozen CSR base.
//!
//! PR 8's live-graph substrate: a frozen [`crate::GraphStore`] never loses
//! its CSR index again. Instead of silently dropping the index on mutation,
//! [`crate::GraphStore::with_delta`] derives a *new* store that shares the
//! base CSR (behind an `Arc`) and layers a `DeltaOverlay` on top:
//! per-`(label, direction)` added-edge lists, a set of deleted base edges,
//! and the node/label additions the delta introduced. Every overlay-aware
//! read runs the base CSR first and consults the overlay afterwards, so the
//! empty-overlay cost is a single `Option` discriminant test on the hot
//! path.
//!
//! ## Conservative deletes and admissibility
//!
//! The cost-guided evaluator (PR 5) orders expansion by `MinCostToAccept`
//! lower bounds derived from [`crate::LabelStats`]. Overlay stores keep the
//! per-label **edge counts exact** (base ± overlay counters), so
//! `LabelStats::has_edges` — the only statistic the live-predicate pruning
//! relies on for correctness — never reports a label dead while overlay
//! edges carry it. Deleted edges are handled *conservatively* everywhere
//! else: seed bitmaps ([`crate::GraphStore::heads`] / `tails`) and the
//! distinct-endpoint estimates keep nodes whose last edge was deleted.
//! Over-approximating the candidate set can only add work the automaton
//! then rejects; it can never raise a lower bound above the true cost, so
//! the A* ordering stays admissible while the overlay is live. Compaction
//! ([`crate::GraphStore::compacted`]) restores exact statistics.

use crate::graph::EdgeRef;
use crate::hash::{FxHashMap, FxHashSet};
use crate::ids::{Direction, LabelId, NodeId};

/// A batch of edge additions and removals expressed as string triples,
/// applied atomically by [`crate::GraphStore::with_delta`].
///
/// Additions create missing nodes and edge labels on the fly (the
/// [`crate::GraphStore::add_triple`] convention); removals of unknown
/// nodes, labels or edges are no-ops. Within one batch, operations apply
/// in order: all adds first, then all removes.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    pub(crate) adds: Vec<(String, String, String)>,
    pub(crate) removes: Vec<(String, String, String)>,
}

impl GraphDelta {
    /// An empty batch.
    pub fn new() -> GraphDelta {
        GraphDelta::default()
    }

    /// Queues the edge `source --label--> target` for addition.
    pub fn add(&mut self, source: &str, label: &str, target: &str) -> &mut Self {
        self.adds
            .push((source.to_owned(), label.to_owned(), target.to_owned()));
        self
    }

    /// Queues the edge `source --label--> target` for removal.
    pub fn remove(&mut self, source: &str, label: &str, target: &str) -> &mut Self {
        self.removes
            .push((source.to_owned(), label.to_owned(), target.to_owned()));
        self
    }

    /// Queued additions, in application order.
    pub fn adds(&self) -> &[(String, String, String)] {
        &self.adds
    }

    /// Queued removals, in application order.
    pub fn removes(&self) -> &[(String, String, String)] {
        &self.removes
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.adds.len() + self.removes.len()
    }
}

/// What one [`crate::GraphStore::with_delta`] application did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Edges that were actually added (not already present).
    pub added: u64,
    /// Edges that were actually removed (present before).
    pub removed: u64,
    /// Total overlay entries (added + deleted edges) after application —
    /// the compaction-pressure signal.
    pub overlay_edges: u64,
}

/// Mutable delta state layered over a frozen base CSR.
///
/// Tracks added edges (per `(label, direction)` and per node for the
/// mixed-label views), deleted base edges (canonical `(tail, label, head)`
/// orientation), nodes and labels created after the freeze, and exact
/// per-label added/deleted counters. All lookups the read path performs are
/// O(1) hash probes returning borrowed slices, mirroring the builder maps.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaOverlay {
    /// Node count of the base store when the overlay chain started; overlay
    /// node ids continue from here.
    base_nodes: usize,
    /// Labels of overlay-added nodes, in id order (`base_nodes + i`).
    added_node_labels: Vec<String>,
    /// Label → id index over the overlay-added nodes.
    added_node_index: FxHashMap<String, NodeId>,
    /// Added edges: `(label, tail) → heads` and `(label, head) → tails`.
    adds_out: FxHashMap<(LabelId, NodeId), Vec<NodeId>>,
    adds_in: FxHashMap<(LabelId, NodeId), Vec<NodeId>>,
    /// Added edges in the mixed-label views.
    adds_out_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    adds_in_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    /// Deleted base edges, canonical outgoing orientation.
    deleted: FxHashSet<(NodeId, LabelId, NodeId)>,
    /// How many deletions touch each `(label, node)` slice / node — lets
    /// the read path skip the per-neighbour membership filter entirely for
    /// untouched slices.
    del_out: FxHashMap<(LabelId, NodeId), u32>,
    del_in: FxHashMap<(LabelId, NodeId), u32>,
    del_out_any: FxHashMap<NodeId, u32>,
    del_in_any: FxHashMap<NodeId, u32>,
    /// Exact per-label counters keeping `edge_count_for_label` (and with it
    /// `LabelStats::has_edges`) exact on live stores.
    label_added: Vec<u64>,
    label_deleted: Vec<u64>,
    added_total: u64,
    deleted_total: u64,
}

impl DeltaOverlay {
    pub(crate) fn new(base_nodes: usize) -> DeltaOverlay {
        DeltaOverlay {
            base_nodes,
            ..DeltaOverlay::default()
        }
    }

    /// Whether the overlay records no changes at all.
    pub(crate) fn is_empty(&self) -> bool {
        self.added_total == 0 && self.deleted_total == 0 && self.added_node_labels.is_empty()
    }

    /// Added + deleted edge entries — the compaction-pressure signal.
    pub(crate) fn overlay_edges(&self) -> u64 {
        self.added_total + self.deleted_total
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    pub(crate) fn added_node_count(&self) -> usize {
        self.added_node_labels.len()
    }

    /// The label of overlay node `base_nodes + offset`.
    pub(crate) fn added_node_label(&self, offset: usize) -> &str {
        &self.added_node_labels[offset]
    }

    pub(crate) fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.added_node_index.get(label).copied()
    }

    /// Interns an overlay node, allocating the next id after the base.
    pub(crate) fn add_node(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.added_node_index.get(label) {
            return id;
        }
        let id = NodeId((self.base_nodes + self.added_node_labels.len()) as u32);
        self.added_node_labels.push(label.to_owned());
        self.added_node_index.insert(label.to_owned(), id);
        id
    }

    /// Labels of overlay-added nodes in id order (for folding back into the
    /// builder).
    pub(crate) fn added_node_labels(&self) -> &[String] {
        &self.added_node_labels
    }

    // ------------------------------------------------------------------
    // Edge mutation
    // ------------------------------------------------------------------

    /// Records the addition of `tail --label--> head`; `base_has` says
    /// whether the base CSR already stores the edge. Re-adding a deleted
    /// base edge un-deletes it. Returns `true` if the edge is newly present.
    pub(crate) fn add_edge(
        &mut self,
        tail: NodeId,
        label: LabelId,
        head: NodeId,
        base_has: bool,
    ) -> bool {
        if self.deleted.remove(&(tail, label, head)) {
            decrement(&mut self.del_out, (label, tail));
            decrement(&mut self.del_in, (label, head));
            decrement(&mut self.del_out_any, tail);
            decrement(&mut self.del_in_any, head);
            self.label_deleted[label.index()] -= 1;
            self.deleted_total -= 1;
            return true;
        }
        if base_has {
            return false;
        }
        let out = self.adds_out.entry((label, tail)).or_default();
        if out.contains(&head) {
            return false;
        }
        out.push(head);
        self.adds_in.entry((label, head)).or_default().push(tail);
        self.adds_out_all
            .entry(tail)
            .or_default()
            .push((label, head));
        self.adds_in_all
            .entry(head)
            .or_default()
            .push((label, tail));
        if self.label_added.len() <= label.index() {
            self.label_added.resize(label.index() + 1, 0);
        }
        self.label_added[label.index()] += 1;
        self.added_total += 1;
        true
    }

    /// Records the removal of `tail --label--> head`; `base_has` says
    /// whether the base CSR stores the edge. Removing an overlay-added edge
    /// drops it from the add lists; removing a base edge marks it deleted;
    /// removing a non-existent edge is a no-op. Returns `true` if the edge
    /// was present before.
    pub(crate) fn remove_edge(
        &mut self,
        tail: NodeId,
        label: LabelId,
        head: NodeId,
        base_has: bool,
    ) -> bool {
        if let Some(out) = self.adds_out.get_mut(&(label, tail)) {
            if let Some(pos) = out.iter().position(|&h| h == head) {
                out.swap_remove(pos);
                if out.is_empty() {
                    self.adds_out.remove(&(label, tail));
                }
                remove_pair(&mut self.adds_in, (label, head), tail);
                remove_entry(&mut self.adds_out_all, tail, (label, head));
                remove_entry(&mut self.adds_in_all, head, (label, tail));
                self.label_added[label.index()] -= 1;
                self.added_total -= 1;
                return true;
            }
        }
        if base_has && self.deleted.insert((tail, label, head)) {
            *self.del_out.entry((label, tail)).or_default() += 1;
            *self.del_in.entry((label, head)).or_default() += 1;
            *self.del_out_any.entry(tail).or_default() += 1;
            *self.del_in_any.entry(head).or_default() += 1;
            if self.label_deleted.len() <= label.index() {
                self.label_deleted.resize(label.index() + 1, 0);
            }
            self.label_deleted[label.index()] += 1;
            self.deleted_total += 1;
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Read surface
    // ------------------------------------------------------------------

    /// Overlay-added neighbours of `node` for `label` in `dir`.
    #[inline]
    pub(crate) fn adds_for(&self, node: NodeId, label: LabelId, dir: Direction) -> &[NodeId] {
        let map = match dir {
            Direction::Outgoing => &self.adds_out,
            Direction::Incoming => &self.adds_in,
        };
        map.get(&(label, node)).map_or(&[][..], Vec::as_slice)
    }

    /// Overlay-added `(label, neighbour)` entries of `node` in `dir`.
    #[inline]
    pub(crate) fn adds_any(&self, node: NodeId, dir: Direction) -> &[(LabelId, NodeId)] {
        let map = match dir {
            Direction::Outgoing => &self.adds_out_all,
            Direction::Incoming => &self.adds_in_all,
        };
        map.get(&node).map_or(&[][..], Vec::as_slice)
    }

    /// Whether any deletion touches the `(label, node, dir)` slice.
    #[inline]
    pub(crate) fn deletes_touch(&self, node: NodeId, label: LabelId, dir: Direction) -> bool {
        let map = match dir {
            Direction::Outgoing => &self.del_out,
            Direction::Incoming => &self.del_in,
        };
        map.contains_key(&(label, node))
    }

    /// Whether any deletion touches `node`'s mixed-label slice in `dir`.
    #[inline]
    pub(crate) fn deletes_touch_any(&self, node: NodeId, dir: Direction) -> bool {
        let map = match dir {
            Direction::Outgoing => &self.del_out_any,
            Direction::Incoming => &self.del_in_any,
        };
        map.contains_key(&node)
    }

    /// Whether the canonical edge `tail --label--> head` is deleted.
    #[inline]
    pub(crate) fn is_deleted(&self, tail: NodeId, label: LabelId, head: NodeId) -> bool {
        self.deleted.contains(&(tail, label, head))
    }

    /// Whether the edge between `node` and its neighbour `other` (read in
    /// `dir` at `node`) is deleted, orienting into canonical form.
    #[inline]
    pub(crate) fn edge_deleted(
        &self,
        node: NodeId,
        label: LabelId,
        other: NodeId,
        dir: Direction,
    ) -> bool {
        match dir {
            Direction::Outgoing => self.is_deleted(node, label, other),
            Direction::Incoming => self.is_deleted(other, label, node),
        }
    }

    /// Number of deletions touching the `(label, node, dir)` slice.
    #[inline]
    pub(crate) fn deletes_at(&self, node: NodeId, label: LabelId, dir: Direction) -> usize {
        let map = match dir {
            Direction::Outgoing => &self.del_out,
            Direction::Incoming => &self.del_in,
        };
        map.get(&(label, node)).copied().unwrap_or(0) as usize
    }

    /// Number of deletions touching `node`'s mixed slice in `dir`.
    #[inline]
    pub(crate) fn deletes_at_any(&self, node: NodeId, dir: Direction) -> usize {
        let map = match dir {
            Direction::Outgoing => &self.del_out_any,
            Direction::Incoming => &self.del_in_any,
        };
        map.get(&node).copied().unwrap_or(0) as usize
    }

    /// Exact count of overlay-added edges with `label`.
    pub(crate) fn added_for_label(&self, label: LabelId) -> u64 {
        self.label_added.get(label.index()).copied().unwrap_or(0)
    }

    /// Exact count of deleted base edges with `label`.
    pub(crate) fn deleted_for_label(&self, label: LabelId) -> u64 {
        self.label_deleted.get(label.index()).copied().unwrap_or(0)
    }

    /// Sources of overlay-added edges with `label`.
    pub(crate) fn added_tails(&self, label: LabelId) -> impl Iterator<Item = NodeId> + '_ {
        self.adds_out
            .keys()
            .filter(move |(l, _)| *l == label)
            .map(|&(_, n)| n)
    }

    /// Targets of overlay-added edges with `label`.
    pub(crate) fn added_heads(&self, label: LabelId) -> impl Iterator<Item = NodeId> + '_ {
        self.adds_in
            .keys()
            .filter(move |(l, _)| *l == label)
            .map(|&(_, n)| n)
    }

    /// Nodes with at least one overlay-added edge, in either direction.
    pub(crate) fn added_incident_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adds_out_all
            .keys()
            .chain(self.adds_in_all.keys())
            .copied()
    }

    /// Every overlay-added edge.
    pub(crate) fn added_edge_iter(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.adds_out_all.iter().flat_map(|(&source, entries)| {
            entries.iter().map(move |&(label, target)| EdgeRef {
                source,
                label,
                target,
            })
        })
    }

    /// The deleted base edges (for folding into the builder).
    pub(crate) fn deleted_edge_iter(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.deleted.iter().map(|&(source, label, target)| EdgeRef {
            source,
            label,
            target,
        })
    }
}

fn decrement<K: std::hash::Hash + Eq>(map: &mut FxHashMap<K, u32>, key: K) {
    if let Some(count) = map.get_mut(&key) {
        *count -= 1;
        if *count == 0 {
            map.remove(&key);
        }
    }
}

fn remove_pair(
    map: &mut FxHashMap<(LabelId, NodeId), Vec<NodeId>>,
    key: (LabelId, NodeId),
    value: NodeId,
) {
    if let Some(list) = map.get_mut(&key) {
        if let Some(pos) = list.iter().position(|&n| n == value) {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            map.remove(&key);
        }
    }
}

fn remove_entry(
    map: &mut FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    key: NodeId,
    value: (LabelId, NodeId),
) {
    if let Some(list) = map.get_mut(&key) {
        if let Some(pos) = list.iter().position(|&e| e == value) {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            map.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_then_remove_is_a_no_op() {
        let mut ov = DeltaOverlay::new(4);
        assert!(ov.add_edge(NodeId(0), LabelId(1), NodeId(2), false));
        assert!(!ov.add_edge(NodeId(0), LabelId(1), NodeId(2), false));
        assert_eq!(ov.added_for_label(LabelId(1)), 1);
        assert!(ov.remove_edge(NodeId(0), LabelId(1), NodeId(2), false));
        assert!(ov.is_empty());
        assert_eq!(ov.added_for_label(LabelId(1)), 0);
        assert!(ov
            .adds_for(NodeId(0), LabelId(1), Direction::Outgoing)
            .is_empty());
        assert!(ov.adds_any(NodeId(2), Direction::Incoming).is_empty());
    }

    #[test]
    fn delete_then_re_add_un_deletes() {
        let mut ov = DeltaOverlay::new(4);
        assert!(ov.remove_edge(NodeId(0), LabelId(1), NodeId(2), true));
        assert!(ov.is_deleted(NodeId(0), LabelId(1), NodeId(2)));
        assert!(ov.deletes_touch(NodeId(0), LabelId(1), Direction::Outgoing));
        assert!(ov.deletes_touch(NodeId(2), LabelId(1), Direction::Incoming));
        assert_eq!(ov.deleted_for_label(LabelId(1)), 1);
        // Re-adding restores the base edge: no overlay add is recorded.
        assert!(ov.add_edge(NodeId(0), LabelId(1), NodeId(2), true));
        assert!(ov.is_empty());
        assert!(!ov.deletes_touch(NodeId(0), LabelId(1), Direction::Outgoing));
    }

    #[test]
    fn base_duplicates_and_unknown_removals_are_no_ops() {
        let mut ov = DeltaOverlay::new(4);
        assert!(!ov.add_edge(NodeId(0), LabelId(1), NodeId(2), true));
        assert!(!ov.remove_edge(NodeId(0), LabelId(1), NodeId(3), false));
        assert!(ov.is_empty());
    }

    #[test]
    fn overlay_nodes_continue_base_ids() {
        let mut ov = DeltaOverlay::new(10);
        let a = ov.add_node("new-a");
        let b = ov.add_node("new-b");
        assert_eq!(a, NodeId(10));
        assert_eq!(b, NodeId(11));
        assert_eq!(ov.add_node("new-a"), a);
        assert_eq!(ov.node_by_label("new-b"), Some(b));
        assert_eq!(ov.added_node_label(1), "new-b");
        assert_eq!(ov.added_node_count(), 2);
    }
}
