//! Frozen compressed-sparse-row (CSR) adjacency indexes.
//!
//! The mutable side of [`crate::GraphStore`] keeps adjacency in hash maps so
//! that edges can be added and deduplicated cheaply. Query evaluation never
//! mutates the graph, and its cost is dominated by `Neighbors(n, t, dir)`
//! lookups — so once loading is done the store can be *frozen*: every
//! `(label, direction)` adjacency is laid out as a classic CSR pair of
//! arrays (`offsets[n] .. offsets[n + 1]` indexes into a flat neighbour
//! array), and the mixed-label `out_all` / `in_all` views get the same
//! treatment with `(label, node)` entries. A frozen lookup is two array
//! reads and returns a borrowed slice — no hashing, no per-node `Vec`
//! headers, and neighbours of consecutive nodes are contiguous in memory.
//!
//! This mirrors what Sparksee's neighbour indexes give the paper's Omega
//! implementation: the storage layer serves adjacency as packed vectors
//! rather than pointer-chasing structures.
//!
//! ## Owned and mapped storage
//!
//! Each CSR array lives behind a small storage enum (`U32Store` /
//! `NodeStore` / `PairStore`): either an owned `Vec` built by
//! [`crate::GraphStore::freeze`], or a borrowed view over a memory-mapped
//! snapshot file ([`crate::snapshot`]). Lookups read through the enum with
//! one discriminant test and are otherwise identical, so the evaluator hot
//! paths never know (or care) whether the graph was built in process or
//! mapped from disk.

use crate::hash::FxHashMap;
use crate::ids::{LabelId, NodeId};
use crate::snapshot::error::SnapshotError;
use crate::snapshot::map::{pair_layout_is_label_first, MappedSlice};

/// Array storage for one frozen CSR array: an owned `Vec<T>` or a
/// zero-copy view of a snapshot mapping, with the element pointer and
/// length cached at construction so [`ArrayStore::as_slice`] is exactly a
/// `(ptr, len)` load — no discriminant test, no pointer chase — and the
/// evaluator's adjacency lookups compile to the same code as before the
/// storage became dual-backed.
pub(crate) struct ArrayStore<T> {
    /// What keeps the elements alive; never touched on the read path.
    backing: ArrayBacking<T>,
    /// Cached element pointer into `backing`.
    ptr: *const T,
    /// Cached element count.
    len: usize,
}

enum ArrayBacking<T> {
    /// Heap array built by [`crate::GraphStore::freeze`] (or copied from a
    /// snapshot when zero-copy is unsound for `T`).
    Owned(Vec<T>),
    /// A snapshot mapping holding little-endian words. The `Arc` inside
    /// keeps the mapping alive; the mapped memory itself never moves, so
    /// the cached pointer stays valid for the life of the store.
    Mapped(MappedSlice),
}

// Safety: the store is immutable after construction and owns (or holds
// alive) the memory its cached pointer targets, so sharing/sending it is
// exactly as safe as sharing the underlying Vec or mapping.
unsafe impl<T: Send> Send for ArrayStore<T> {}
unsafe impl<T: Sync> Sync for ArrayStore<T> {}

impl<T> ArrayStore<T> {
    /// Wraps an owned, final (never mutated again) vector.
    pub(crate) fn owned(data: Vec<T>) -> ArrayStore<T> {
        let (ptr, len) = (data.as_ptr(), data.len());
        ArrayStore {
            backing: ArrayBacking::Owned(data),
            ptr,
            len,
        }
    }

    #[inline(always)]
    pub(crate) fn as_slice(&self) -> &[T] {
        // Safety: `ptr`/`len` were derived from the backing at construction
        // and the backing is immutable and owned by `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Clone> Clone for ArrayStore<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            // An owned clone gets a fresh allocation: re-derive the pointer.
            ArrayBacking::Owned(v) => ArrayStore::owned(v.clone()),
            // A mapped clone shares the same region: the pointer is stable.
            ArrayBacking::Mapped(m) => ArrayStore {
                backing: ArrayBacking::Mapped(m.clone()),
                ptr: self.ptr,
                len: self.len,
            },
        }
    }
}

impl<T> Default for ArrayStore<T> {
    fn default() -> Self {
        ArrayStore::owned(Vec::new())
    }
}

impl<T> std::fmt::Debug for ArrayStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backing = match &self.backing {
            ArrayBacking::Owned(_) => "owned",
            ArrayBacking::Mapped(_) => "mapped",
        };
        f.debug_struct("ArrayStore")
            .field("len", &self.len)
            .field("backing", &backing)
            .finish()
    }
}

/// `u32` array storage.
pub(crate) type U32Store = ArrayStore<u32>;
/// [`NodeId`] array storage (`repr(transparent)` over `u32`).
pub(crate) type NodeStore = ArrayStore<NodeId>;
/// `(LabelId, NodeId)` array storage for the mixed-label views.
pub(crate) type PairStore = ArrayStore<(LabelId, NodeId)>;

impl ArrayStore<u32> {
    /// Wraps a mapped section, validating the cast once up front.
    pub(crate) fn mapped(slice: MappedSlice) -> Result<U32Store, SnapshotError> {
        let words = slice.as_u32s()?;
        let (ptr, len) = (words.as_ptr(), words.len());
        Ok(ArrayStore {
            backing: ArrayBacking::Mapped(slice),
            ptr,
            len,
        })
    }
}

impl ArrayStore<NodeId> {
    /// Wraps a mapped section, validating the cast once up front.
    pub(crate) fn mapped(slice: MappedSlice) -> Result<NodeStore, SnapshotError> {
        let nodes = slice.as_node_ids()?;
        let (ptr, len) = (nodes.as_ptr(), nodes.len());
        Ok(ArrayStore {
            backing: ArrayBacking::Mapped(slice),
            ptr,
            len,
        })
    }
}

impl ArrayStore<(LabelId, NodeId)> {
    /// Wraps a mapped section of interleaved `[label, node]` pairs, copying
    /// if the in-memory tuple layout of this build cannot alias the file
    /// layout (see [`pair_layout_is_label_first`]).
    pub(crate) fn mapped(slice: MappedSlice) -> Result<PairStore, SnapshotError> {
        let words = slice.as_u32s()?;
        if !words.len().is_multiple_of(2) {
            return Err(SnapshotError::malformed(
                "mixed-entry section holds an odd number of words",
            ));
        }
        if pair_layout_is_label_first() {
            // Safety: size/align/field order probed, length validated even.
            let ptr = words.as_ptr() as *const (LabelId, NodeId);
            let len = words.len() / 2;
            Ok(ArrayStore {
                backing: ArrayBacking::Mapped(slice),
                ptr,
                len,
            })
        } else {
            Ok(ArrayStore::owned(
                words
                    .chunks_exact(2)
                    .map(|p| (LabelId(p[0]), NodeId(p[1])))
                    .collect(),
            ))
        }
    }
}

/// One `(label, direction)` adjacency in CSR form.
#[derive(Debug, Clone, Default)]
pub struct CsrLayer {
    /// `offsets[n] .. offsets[n + 1]` bounds node `n`'s neighbours;
    /// `node_count + 1` entries.
    offsets: U32Store,
    /// All neighbour lists, concatenated in node order.
    targets: NodeStore,
}

impl CsrLayer {
    /// Builds the layer from the builder-side hash map for `node_count`
    /// nodes, preserving each node's insertion order of neighbours.
    fn build(node_count: usize, adjacency: &FxHashMap<NodeId, Vec<NodeId>>) -> CsrLayer {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let total: usize = adjacency.values().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        offsets.push(0);
        for n in 0..node_count as u32 {
            if let Some(list) = adjacency.get(&NodeId(n)) {
                targets.extend_from_slice(list);
            }
            offsets.push(targets.len() as u32);
        }
        CsrLayer {
            offsets: ArrayStore::owned(offsets),
            targets: ArrayStore::owned(targets),
        }
    }

    /// Assembles a layer from (owned or mapped) parts; the caller has
    /// validated that the offsets are monotone and bounded by the target
    /// count.
    pub(crate) fn from_parts(offsets: U32Store, targets: NodeStore) -> CsrLayer {
        CsrLayer { offsets, targets }
    }

    /// The offsets array (for serialisation).
    pub(crate) fn offset_words(&self) -> &[u32] {
        self.offsets.as_slice()
    }

    /// The neighbour array (for serialisation).
    pub(crate) fn target_nodes(&self) -> &[NodeId] {
        self.targets.as_slice()
    }

    /// The neighbour slice of `node` (empty for out-of-range nodes, which
    /// can exist when nodes were added after freezing).
    #[inline(always)]
    pub fn neighbours(&self, node: NodeId) -> &[NodeId] {
        let offsets = self.offsets.as_slice();
        let i = node.index();
        if i + 1 >= offsets.len() {
            return &[];
        }
        &self.targets.as_slice()[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// Node ids with at least one neighbour in this layer.
    pub fn occupied_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.offsets
            .as_slice()
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Total number of stored neighbour entries.
    pub fn len(&self) -> usize {
        self.targets.as_slice().len()
    }

    /// Whether the layer stores no edges.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The mixed-label adjacency (`out_all` / `in_all`) in CSR form.
#[derive(Debug, Clone, Default)]
pub struct CsrMixed {
    offsets: U32Store,
    entries: PairStore,
}

impl CsrMixed {
    fn build(node_count: usize, adjacency: &FxHashMap<NodeId, Vec<(LabelId, NodeId)>>) -> CsrMixed {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let total: usize = adjacency.values().map(Vec::len).sum();
        let mut entries = Vec::with_capacity(total);
        offsets.push(0);
        for n in 0..node_count as u32 {
            if let Some(list) = adjacency.get(&NodeId(n)) {
                entries.extend_from_slice(list);
            }
            offsets.push(entries.len() as u32);
        }
        CsrMixed {
            offsets: ArrayStore::owned(offsets),
            entries: ArrayStore::owned(entries),
        }
    }

    /// Assembles a mixed view from (owned or mapped) parts.
    pub(crate) fn from_parts(offsets: U32Store, entries: PairStore) -> CsrMixed {
        CsrMixed { offsets, entries }
    }

    /// The offsets array (for serialisation).
    pub(crate) fn offset_words(&self) -> &[u32] {
        self.offsets.as_slice()
    }

    /// The entry array (for serialisation).
    pub(crate) fn entry_pairs(&self) -> &[(LabelId, NodeId)] {
        self.entries.as_slice()
    }

    /// The `(label, neighbour)` slice of `node`.
    #[inline(always)]
    pub fn entries(&self, node: NodeId) -> &[(LabelId, NodeId)] {
        let offsets = self.offsets.as_slice();
        let i = node.index();
        if i + 1 >= offsets.len() {
            return &[];
        }
        &self.entries.as_slice()[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// Node ids with at least one entry in this view.
    pub fn occupied_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.offsets
            .as_slice()
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Total number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.as_slice().len()
    }

    /// Whether the view stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One label's builder-side adjacency: the `(outgoing, incoming)` hash maps.
pub(crate) type BuilderLayerRef<'a> = (
    &'a FxHashMap<NodeId, Vec<NodeId>>,
    &'a FxHashMap<NodeId, Vec<NodeId>>,
);

/// The full frozen index: one [`CsrLayer`] pair per label plus the two
/// mixed-label views.
#[derive(Debug, Clone)]
pub struct CsrIndex {
    pub(crate) out: Vec<CsrLayer>,
    pub(crate) inc: Vec<CsrLayer>,
    pub(crate) out_all: CsrMixed,
    pub(crate) in_all: CsrMixed,
}

impl CsrIndex {
    /// Builds the index from the builder-side maps.
    pub(crate) fn build(
        node_count: usize,
        per_label: &[BuilderLayerRef<'_>],
        out_all: &FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
        in_all: &FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    ) -> CsrIndex {
        CsrIndex {
            out: per_label
                .iter()
                .map(|(o, _)| CsrLayer::build(node_count, o))
                .collect(),
            inc: per_label
                .iter()
                .map(|(_, i)| CsrLayer::build(node_count, i))
                .collect(),
            out_all: CsrMixed::build(node_count, out_all),
            in_all: CsrMixed::build(node_count, in_all),
        }
    }

    /// The per-label layer for `label` in the given direction, if the label
    /// existed at freeze time.
    #[inline]
    pub(crate) fn layer(&self, label: LabelId, outgoing: bool) -> Option<&CsrLayer> {
        if outgoing {
            self.out.get(label.index())
        } else {
            self.inc.get(label.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_roundtrips_hashmap_adjacency() {
        let mut map: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        map.insert(NodeId(0), vec![NodeId(2), NodeId(1)]);
        map.insert(NodeId(2), vec![NodeId(0)]);
        let layer = CsrLayer::build(4, &map);
        assert_eq!(layer.neighbours(NodeId(0)), &[NodeId(2), NodeId(1)]);
        assert_eq!(layer.neighbours(NodeId(1)), &[] as &[NodeId]);
        assert_eq!(layer.neighbours(NodeId(2)), &[NodeId(0)]);
        assert_eq!(layer.neighbours(NodeId(3)), &[] as &[NodeId]);
        // Out-of-range nodes (added after freezing) are empty, not a panic.
        assert_eq!(layer.neighbours(NodeId(100)), &[] as &[NodeId]);
        assert_eq!(layer.len(), 3);
        let occupied: Vec<_> = layer.occupied_nodes().collect();
        assert_eq!(occupied, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn mixed_roundtrips_hashmap_adjacency() {
        let mut map: FxHashMap<NodeId, Vec<(LabelId, NodeId)>> = FxHashMap::default();
        map.insert(
            NodeId(1),
            vec![(LabelId(0), NodeId(2)), (LabelId(1), NodeId(0))],
        );
        let mixed = CsrMixed::build(2, &map);
        assert_eq!(
            mixed.entries(NodeId(1)),
            &[(LabelId(0), NodeId(2)), (LabelId(1), NodeId(0))]
        );
        assert!(mixed.entries(NodeId(0)).is_empty());
        assert!(mixed.entries(NodeId(9)).is_empty());
        assert_eq!(mixed.occupied_nodes().collect::<Vec<_>>(), vec![NodeId(1)]);
    }
}
