//! Frozen compressed-sparse-row (CSR) adjacency indexes.
//!
//! The mutable side of [`crate::GraphStore`] keeps adjacency in hash maps so
//! that edges can be added and deduplicated cheaply. Query evaluation never
//! mutates the graph, and its cost is dominated by `Neighbors(n, t, dir)`
//! lookups — so once loading is done the store can be *frozen*: every
//! `(label, direction)` adjacency is laid out as a classic CSR pair of
//! arrays (`offsets[n] .. offsets[n + 1]` indexes into a flat neighbour
//! array), and the mixed-label `out_all` / `in_all` views get the same
//! treatment with `(label, node)` entries. A frozen lookup is two array
//! reads and returns a borrowed slice — no hashing, no per-node `Vec`
//! headers, and neighbours of consecutive nodes are contiguous in memory.
//!
//! This mirrors what Sparksee's neighbour indexes give the paper's Omega
//! implementation: the storage layer serves adjacency as packed vectors
//! rather than pointer-chasing structures.

use crate::hash::FxHashMap;
use crate::ids::{LabelId, NodeId};

/// One `(label, direction)` adjacency in CSR form.
#[derive(Debug, Clone, Default)]
pub struct CsrLayer {
    /// `offsets[n] .. offsets[n + 1]` bounds node `n`'s neighbours;
    /// `node_count + 1` entries.
    offsets: Vec<u32>,
    /// All neighbour lists, concatenated in node order.
    targets: Vec<NodeId>,
}

impl CsrLayer {
    /// Builds the layer from the builder-side hash map for `node_count`
    /// nodes, preserving each node's insertion order of neighbours.
    fn build(node_count: usize, adjacency: &FxHashMap<NodeId, Vec<NodeId>>) -> CsrLayer {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let total: usize = adjacency.values().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        offsets.push(0);
        for n in 0..node_count as u32 {
            if let Some(list) = adjacency.get(&NodeId(n)) {
                targets.extend_from_slice(list);
            }
            offsets.push(targets.len() as u32);
        }
        CsrLayer { offsets, targets }
    }

    /// The neighbour slice of `node` (empty for out-of-range nodes, which
    /// can exist when nodes were added after freezing).
    #[inline]
    pub fn neighbours(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Node ids with at least one neighbour in this layer.
    pub fn occupied_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Total number of stored neighbour entries.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the layer stores no edges.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// The mixed-label adjacency (`out_all` / `in_all`) in CSR form.
#[derive(Debug, Clone, Default)]
pub struct CsrMixed {
    offsets: Vec<u32>,
    entries: Vec<(LabelId, NodeId)>,
}

impl CsrMixed {
    fn build(node_count: usize, adjacency: &FxHashMap<NodeId, Vec<(LabelId, NodeId)>>) -> CsrMixed {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let total: usize = adjacency.values().map(Vec::len).sum();
        let mut entries = Vec::with_capacity(total);
        offsets.push(0);
        for n in 0..node_count as u32 {
            if let Some(list) = adjacency.get(&NodeId(n)) {
                entries.extend_from_slice(list);
            }
            offsets.push(entries.len() as u32);
        }
        CsrMixed { offsets, entries }
    }

    /// The `(label, neighbour)` slice of `node`.
    #[inline]
    pub fn entries(&self, node: NodeId) -> &[(LabelId, NodeId)] {
        let i = node.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// One label's builder-side adjacency: the `(outgoing, incoming)` hash maps.
pub(crate) type BuilderLayerRef<'a> = (
    &'a FxHashMap<NodeId, Vec<NodeId>>,
    &'a FxHashMap<NodeId, Vec<NodeId>>,
);

/// The full frozen index: one [`CsrLayer`] pair per label plus the two
/// mixed-label views.
#[derive(Debug, Clone)]
pub struct CsrIndex {
    pub(crate) out: Vec<CsrLayer>,
    pub(crate) inc: Vec<CsrLayer>,
    pub(crate) out_all: CsrMixed,
    pub(crate) in_all: CsrMixed,
}

impl CsrIndex {
    /// Builds the index from the builder-side maps.
    pub(crate) fn build(
        node_count: usize,
        per_label: &[BuilderLayerRef<'_>],
        out_all: &FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
        in_all: &FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    ) -> CsrIndex {
        CsrIndex {
            out: per_label
                .iter()
                .map(|(o, _)| CsrLayer::build(node_count, o))
                .collect(),
            inc: per_label
                .iter()
                .map(|(_, i)| CsrLayer::build(node_count, i))
                .collect(),
            out_all: CsrMixed::build(node_count, out_all),
            in_all: CsrMixed::build(node_count, in_all),
        }
    }

    /// The per-label layer for `label` in the given direction, if the label
    /// existed at freeze time.
    #[inline]
    pub(crate) fn layer(&self, label: LabelId, outgoing: bool) -> Option<&CsrLayer> {
        if outgoing {
            self.out.get(label.index())
        } else {
            self.inc.get(label.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_roundtrips_hashmap_adjacency() {
        let mut map: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        map.insert(NodeId(0), vec![NodeId(2), NodeId(1)]);
        map.insert(NodeId(2), vec![NodeId(0)]);
        let layer = CsrLayer::build(4, &map);
        assert_eq!(layer.neighbours(NodeId(0)), &[NodeId(2), NodeId(1)]);
        assert_eq!(layer.neighbours(NodeId(1)), &[] as &[NodeId]);
        assert_eq!(layer.neighbours(NodeId(2)), &[NodeId(0)]);
        assert_eq!(layer.neighbours(NodeId(3)), &[] as &[NodeId]);
        // Out-of-range nodes (added after freezing) are empty, not a panic.
        assert_eq!(layer.neighbours(NodeId(100)), &[] as &[NodeId]);
        assert_eq!(layer.len(), 3);
        let occupied: Vec<_> = layer.occupied_nodes().collect();
        assert_eq!(occupied, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn mixed_roundtrips_hashmap_adjacency() {
        let mut map: FxHashMap<NodeId, Vec<(LabelId, NodeId)>> = FxHashMap::default();
        map.insert(
            NodeId(1),
            vec![(LabelId(0), NodeId(2)), (LabelId(1), NodeId(0))],
        );
        let mixed = CsrMixed::build(2, &map);
        assert_eq!(
            mixed.entries(NodeId(1)),
            &[(LabelId(0), NodeId(2)), (LabelId(1), NodeId(0))]
        );
        assert!(mixed.entries(NodeId(0)).is_empty());
        assert!(mixed.entries(NodeId(9)).is_empty());
    }
}
