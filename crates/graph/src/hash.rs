//! Fast, non-cryptographic hashing for the query hot path.
//!
//! The evaluator keys its visited/emitted sets and the builder's adjacency
//! maps by small dense integers (`NodeId`, packed `(state, node)` words).
//! `std`'s default SipHash is DoS-resistant but an order of magnitude slower
//! than needed for trusted in-process keys, so this module provides the
//! well-known Fx hash (the multiply-xor hash used by rustc), implemented
//! locally because the build environment has no registry access.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: one multiply and one rotate-xor per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn different_keys_hash_differently_mostly() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build = BuildHasherDefault::<FxHasher>::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            seen.insert(build.hash_one(i));
        }
        assert_eq!(seen.len(), 10_000, "unexpected collisions on dense keys");
    }

    #[test]
    fn byte_stream_and_word_agree_on_alignment() {
        // Not required for correctness, just a sanity check that partial
        // chunks do not panic and produce stable values.
        let mut h = FxHasher::default();
        h.write(b"hello world");
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"hello world");
        assert_eq!(a, h2.finish());
    }
}
