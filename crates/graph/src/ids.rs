//! Identifier newtypes used across the workspace.

use std::fmt;

/// Identifier of a node in a [`crate::GraphStore`].
///
/// Node ids are dense: the store allocates them consecutively starting at 0,
/// which lets [`crate::NodeBitmap`] represent node sets compactly.
///
/// The layout is `repr(transparent)` over `u32` so the snapshot loader can
/// reinterpret memory-mapped little-endian `u32` arrays as `&[NodeId]`
/// without copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an interned edge label (the paper's edge *type*).
///
/// `repr(transparent)` over `u32` for the same zero-copy snapshot reason as
/// [`NodeId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Direction of edge traversal.
///
/// RPQ regular expressions may traverse an edge forwards (`a`) or backwards
/// (`a-`); the store indexes adjacency in both directions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Follow an edge from its source to its target.
    Outgoing,
    /// Follow an edge from its target back to its source.
    Incoming,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_debug_and_index() {
        let n = NodeId(7);
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn label_id_debug_and_index() {
        let l = LabelId(3);
        assert_eq!(format!("{l:?}"), "l3");
        assert_eq!(l.index(), 3);
    }

    #[test]
    fn direction_reverse_is_involutive() {
        assert_eq!(Direction::Outgoing.reverse(), Direction::Incoming);
        assert_eq!(Direction::Incoming.reverse(), Direction::Outgoing);
        assert_eq!(Direction::Outgoing.reverse().reverse(), Direction::Outgoing);
    }
}
