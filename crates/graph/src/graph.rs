//! The graph store itself.

use std::sync::{Arc, OnceLock};

use crate::bitmap::NodeBitmap;
use crate::csr::{CsrIndex, CsrLayer};
use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::ids::{Direction, LabelId, NodeId};
use crate::interner::LabelInterner;
use crate::overlay::{DeltaOverlay, DeltaReport, GraphDelta};
use crate::snapshot::map::MappedSlice;
use crate::stats::LabelStats;

/// The distinguished edge label connecting an entity instance to its class.
pub const TYPE_LABEL: &str = "type";

/// A borrowed view of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Source node.
    pub source: NodeId,
    /// Edge label.
    pub label: LabelId,
    /// Target node.
    pub target: NodeId,
}

/// The node string dictionary: owned strings, or zero-copy views into a
/// memory-mapped snapshot.
///
/// The mapped form keeps the `u64` offsets array and the concatenated UTF-8
/// bytes borrowed from the snapshot mapping; the loader validated UTF-8 and
/// offset boundaries once, so lookups slice without copying or re-checking.
/// The first mutation of a loaded store materialises the owned form.
#[derive(Debug, Clone)]
pub(crate) enum NodeLabels {
    /// Heap strings built through [`GraphStore::add_node`].
    Owned(Vec<String>),
    /// Offsets + bytes borrowed from a snapshot mapping.
    Mapped {
        /// `u64[len + 1]` byte offsets, validated monotone and on UTF-8
        /// character boundaries.
        offsets: MappedSlice,
        /// Concatenated label strings, validated as UTF-8.
        bytes: MappedSlice,
        /// Number of labels.
        len: usize,
    },
}

impl NodeLabels {
    pub(crate) fn len(&self) -> usize {
        match self {
            NodeLabels::Owned(v) => v.len(),
            NodeLabels::Mapped { len, .. } => *len,
        }
    }

    /// The label of node `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range (same contract as `Vec` indexing).
    pub(crate) fn get(&self, i: usize) -> &str {
        match self {
            NodeLabels::Owned(v) => &v[i],
            NodeLabels::Mapped {
                offsets,
                bytes,
                len,
            } => {
                assert!(i < *len, "node index {i} out of range for {len} nodes");
                // The loader rejects images whose offset section is not a
                // whole number of u64s, so this cannot fail after open; the
                // expect documents that invariant.
                #[allow(clippy::expect_used)]
                let offsets = offsets.as_u64s().expect("validated at load");
                let slice = &bytes.bytes()[offsets[i] as usize..offsets[i + 1] as usize];
                // Safety: the loader validated the whole byte section as
                // UTF-8 and every offset as a character boundary.
                unsafe { std::str::from_utf8_unchecked(slice) }
            }
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The owned vector, materialising from the mapping if needed (the
    /// mutation path).
    fn make_owned(&mut self) -> &mut Vec<String> {
        if let NodeLabels::Mapped { .. } = self {
            *self = NodeLabels::Owned(self.iter().map(str::to_owned).collect());
        }
        match self {
            NodeLabels::Owned(v) => v,
            NodeLabels::Mapped { .. } => unreachable!("just materialised"),
        }
    }
}

/// Builds the label → id hash index over a node dictionary.
///
/// Node labels are unique by construction for every store this crate
/// writes; if a foreign snapshot nevertheless carries duplicates (its
/// checksums intact but its writer buggy), the *lowest* node id wins, so
/// lookups stay deterministic rather than depending on iteration order.
fn build_node_index(labels: &NodeLabels) -> FxHashMap<String, NodeId> {
    let mut index = FxHashMap::default();
    index.reserve(labels.len());
    for (i, label) in labels.iter().enumerate() {
        index.entry(label.to_owned()).or_insert(NodeId(i as u32));
    }
    index
}

/// Removes the first occurrence of `value` from `map[key]`, dropping the
/// entry if its list empties (so distinct-endpoint counts over the builder
/// maps stay exact). Preserves the relative order of the remaining entries.
fn remove_from_list<K, V>(map: &mut FxHashMap<K, Vec<V>>, key: K, value: &V)
where
    K: Eq + std::hash::Hash,
    V: PartialEq,
{
    if let Some(list) = map.get_mut(&key) {
        if let Some(pos) = list.iter().position(|v| v == value) {
            list.remove(pos);
        }
        if list.is_empty() {
            map.remove(&key);
        }
    }
}

/// Per-label adjacency index (both directions), mirroring Sparksee's
/// neighbour indexing for an edge type. This is the *builder* side: hash
/// maps support cheap insertion and deduplication while the graph is loaded;
/// [`GraphStore::freeze`] compiles them into CSR arrays for querying.
#[derive(Debug, Default, Clone)]
pub(crate) struct Adjacency {
    pub(crate) out: FxHashMap<NodeId, Vec<NodeId>>,
    pub(crate) inc: FxHashMap<NodeId, Vec<NodeId>>,
    pub(crate) edge_count: usize,
}

/// An in-memory labelled directed multigraph with per-(label, direction)
/// adjacency indexes and a unique string label per node.
///
/// The store has two representations of its adjacency:
///
/// * a mutable, hash-map-backed **builder** that [`GraphStore::add_edge`] and
///   friends write into, and
/// * an optional **frozen CSR index** ([`GraphStore::freeze`]) serving
///   [`GraphStore::neighbors`] / [`GraphStore::neighbors_any`] as borrowed
///   slices out of packed arrays — the layout the evaluator's hot path wants.
///
/// Every read works in both states; freezing only changes the data layout.
/// Adding an edge to a frozen store transparently drops the index (the next
/// [`GraphStore::freeze`] rebuilds it).
///
/// A third way to obtain a store is [`crate::snapshot`]: a frozen graph can
/// be serialised to a single image file and re-opened with its CSR arrays
/// memory-mapped in place. Such a store starts with *empty* builder maps —
/// every read is served by the CSR — and transparently rehydrates the
/// builder from the CSR on the first mutation, so the whole mutable API
/// keeps working (at the cost of materialising the adjacency in RAM again).
///
/// ## Live mutation without unfreezing
///
/// [`GraphStore::with_delta`] derives a *new* store from a frozen one
/// without dropping the CSR: the derived store shares the base index
/// (behind an `Arc`) and records the batch in a `DeltaOverlay` — added
/// edges, deleted base edges, and any nodes or labels the batch introduced.
/// The overlay-aware reads ([`GraphStore::neighbors_iter`] /
/// [`GraphStore::neighbors_any_iter`] and all aggregate views) consult the
/// overlay after the base CSR run; [`GraphStore::compacted`] merges the
/// overlay back into a fresh frozen CSR. The plain [`GraphStore::neighbors`]
/// / [`GraphStore::neighbors_any`] slices deliberately stay *base-only*
/// views (they cannot borrow a merged list), which overlay-free stores —
/// the common case — serve unchanged.
///
/// This is the substrate the Omega evaluator traverses; see the crate-level
/// documentation for the correspondence with Sparksee.
#[derive(Debug, Clone)]
pub struct GraphStore {
    pub(crate) node_labels: NodeLabels,
    pub(crate) node_index: FxHashMap<String, NodeId>,
    /// Lazily built label → id index for snapshot-loaded stores (the eager
    /// `node_index` is empty and `node_index_deferred` is set): paying the
    /// hash-and-copy cost of a large dictionary only if a constant lookup
    /// ever happens keeps `open_snapshot` O(sections) instead of O(nodes).
    pub(crate) lazy_node_index: OnceLock<FxHashMap<String, NodeId>>,
    /// Whether `node_by_label` consults `lazy_node_index`.
    pub(crate) node_index_deferred: bool,
    pub(crate) labels: LabelInterner,
    pub(crate) type_label: LabelId,
    pub(crate) adjacency: Vec<Adjacency>,
    pub(crate) out_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    pub(crate) in_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    pub(crate) edge_count: usize,
    /// The frozen CSR index, shared (not copied) between the epoch chain of
    /// stores [`GraphStore::with_delta`] derives.
    pub(crate) csr: Option<Arc<CsrIndex>>,
    /// Whether the builder-side maps mirror the graph. `false` only for
    /// snapshot-loaded stores, whose edges live solely in the CSR until a
    /// mutation forces [`GraphStore::hydrate_builder`].
    pub(crate) hydrated: bool,
    /// Edge additions/deletions layered over the frozen base CSR by
    /// [`GraphStore::with_delta`]. `None` on ordinary and freshly compacted
    /// stores, so the overlay-free read path pays one discriminant test.
    /// Invariant: `overlay.is_some()` implies `csr.is_some()`.
    pub(crate) overlay: Option<DeltaOverlay>,
    /// Cached per-label cardinalities, built on first use (or pre-populated
    /// from a snapshot's stats section) and invalidated by edge mutations.
    pub(crate) label_stats: OnceLock<LabelStats>,
}

impl Default for GraphStore {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphStore {
    /// Creates an empty graph. The `type` label is pre-interned.
    pub fn new() -> Self {
        let mut labels = LabelInterner::new();
        let type_label = labels.intern(TYPE_LABEL);
        GraphStore {
            node_labels: NodeLabels::Owned(Vec::new()),
            node_index: FxHashMap::default(),
            lazy_node_index: OnceLock::new(),
            node_index_deferred: false,
            labels,
            type_label,
            adjacency: vec![Adjacency::default()],
            out_all: FxHashMap::default(),
            in_all: FxHashMap::default(),
            edge_count: 0,
            csr: None,
            hydrated: true,
            overlay: None,
            label_stats: OnceLock::new(),
        }
    }

    // ------------------------------------------------------------------
    // Freezing
    // ------------------------------------------------------------------

    /// Compiles the builder-side adjacency into the frozen CSR index.
    ///
    /// Idempotent; call it once loading is complete. All neighbourhood reads
    /// afterwards are served from packed offset/neighbour arrays.
    pub fn freeze(&mut self) {
        if self.csr.is_some() {
            return;
        }
        let per_label: Vec<_> = self
            .adjacency
            .iter()
            .map(|adj| (&adj.out, &adj.inc))
            .collect();
        self.csr = Some(Arc::new(CsrIndex::build(
            self.node_labels.len(),
            &per_label,
            &self.out_all,
            &self.in_all,
        )));
    }

    /// Whether the frozen CSR index is present and current.
    ///
    /// A store carrying a `DeltaOverlay` still counts as frozen: its base
    /// CSR keeps serving reads, with the overlay consulted afterwards.
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    /// Whether the store carries a non-empty delta overlay over its base
    /// CSR (i.e. it was derived by [`GraphStore::with_delta`] and not yet
    /// compacted).
    pub fn has_overlay(&self) -> bool {
        self.overlay.as_ref().is_some_and(|ov| !ov.is_empty())
    }

    /// Total overlay entries (added + deleted edges) — the compaction
    /// pressure signal; `0` without an overlay.
    pub fn overlay_edges(&self) -> u64 {
        self.overlay.as_ref().map_or(0, DeltaOverlay::overlay_edges)
    }

    /// Rebuilds the builder-side hash maps from the frozen CSR index.
    ///
    /// Snapshot-loaded stores keep their adjacency only in (possibly
    /// memory-mapped) CSR arrays; the first mutation calls this so the
    /// mutable API sees the full graph. No-op for ordinary stores.
    pub(crate) fn hydrate_builder(&mut self) {
        if self.hydrated {
            return;
        }
        // An unhydrated store always carries a CSR index; a store without
        // one simply has nothing to hydrate from.
        let Some(csr) = self.csr.as_ref() else {
            self.hydrated = true;
            return;
        };
        while self.adjacency.len() < csr.out.len() {
            self.adjacency.push(Adjacency::default());
        }
        for (label, (out_layer, in_layer)) in csr.out.iter().zip(&csr.inc).enumerate() {
            let adj = &mut self.adjacency[label];
            for node in out_layer.occupied_nodes() {
                adj.out.insert(node, out_layer.neighbours(node).to_vec());
            }
            for node in in_layer.occupied_nodes() {
                adj.inc.insert(node, in_layer.neighbours(node).to_vec());
            }
            adj.edge_count = out_layer.len();
        }
        for node in csr.out_all.occupied_nodes() {
            self.out_all
                .insert(node, csr.out_all.entries(node).to_vec());
        }
        for node in csr.in_all.occupied_nodes() {
            self.in_all.insert(node, csr.in_all.entries(node).to_vec());
        }
        self.hydrated = true;
    }

    /// Brings the builder-side representation fully up to date with every
    /// read — hydrating from the CSR if needed and folding a delta overlay
    /// back into the builder maps — so the legacy mutable API
    /// ([`GraphStore::add_edge`] and friends) keeps its exact semantics on
    /// overlay-carrying stores. Folding an overlay drops the (now stale)
    /// base CSR; the epoch-pinned mutation path never calls this.
    fn make_mutable(&mut self) {
        self.hydrate_builder();
        let Some(overlay) = self.overlay.take() else {
            return;
        };
        if overlay.is_empty() {
            return;
        }
        self.ensure_node_index();
        for label in overlay.added_node_labels() {
            let id = NodeId(self.node_labels.len() as u32);
            self.node_labels.make_owned().push(label.clone());
            self.node_index.insert(label.clone(), id);
        }
        for edge in overlay.added_edge_iter() {
            let adj = &mut self.adjacency[edge.label.index()];
            adj.out.entry(edge.source).or_default().push(edge.target);
            adj.inc.entry(edge.target).or_default().push(edge.source);
            adj.edge_count += 1;
            self.out_all
                .entry(edge.source)
                .or_default()
                .push((edge.label, edge.target));
            self.in_all
                .entry(edge.target)
                .or_default()
                .push((edge.label, edge.source));
        }
        for edge in overlay.deleted_edge_iter() {
            let adj = &mut self.adjacency[edge.label.index()];
            remove_from_list(&mut adj.out, edge.source, &edge.target);
            remove_from_list(&mut adj.inc, edge.target, &edge.source);
            adj.edge_count -= 1;
            remove_from_list(&mut self.out_all, edge.source, &(edge.label, edge.target));
            remove_from_list(&mut self.in_all, edge.target, &(edge.label, edge.source));
        }
        // `edge_count` already reflects the overlay (kept current by
        // `with_delta`), so only the per-label and map state changed above.
        self.csr = None;
        self.label_stats = OnceLock::new();
    }

    // ------------------------------------------------------------------
    // Delta overlay: mutation without unfreezing
    // ------------------------------------------------------------------

    /// Derives a new store with `delta` applied on top of this (frozen)
    /// store, **without dropping the CSR index**: the derived store shares
    /// the base CSR and records the changes in a `DeltaOverlay` (layered
    /// on top of any overlay this store already carries).
    ///
    /// Additions create missing nodes and edge labels like
    /// [`GraphStore::add_triple`]; removals of unknown edges are no-ops.
    /// All adds apply before all removes. `self` is untouched — readers
    /// holding it keep a bit-identical view, which is what the service
    /// layer's epoch pinning builds on.
    ///
    /// Fails with [`GraphError::NotFrozen`] when called on an unfrozen
    /// store (use the plain mutable API there).
    pub fn with_delta(&self, delta: &GraphDelta) -> Result<(GraphStore, DeltaReport), GraphError> {
        if self.csr.is_none() {
            return Err(GraphError::NotFrozen);
        }
        let mut next = self.clone();
        let mut overlay = next
            .overlay
            .take()
            .unwrap_or_else(|| DeltaOverlay::new(next.node_labels.len()));
        let mut report = DeltaReport::default();
        for (source, label, target) in delta.adds() {
            let l = next.intern_label(label);
            let s = next.resolve_or_add_overlay_node(&mut overlay, source);
            let t = next.resolve_or_add_overlay_node(&mut overlay, target);
            let base_has = self.base_has_edge(s, l, t);
            if overlay.add_edge(s, l, t, base_has) {
                report.added += 1;
                next.edge_count += 1;
            }
        }
        for (source, label, target) in delta.removes() {
            let Some(l) = next.label_id(label) else {
                continue;
            };
            let Some(s) = next.resolve_node(&overlay, source) else {
                continue;
            };
            let Some(t) = next.resolve_node(&overlay, target) else {
                continue;
            };
            let base_has = self.base_has_edge(s, l, t);
            if overlay.remove_edge(s, l, t, base_has) {
                report.removed += 1;
                next.edge_count -= 1;
            }
        }
        report.overlay_edges = overlay.overlay_edges();
        next.overlay = Some(overlay);
        next.label_stats = OnceLock::new();
        Ok((next, report))
    }

    /// Returns a store with any delta overlay merged into a fresh frozen
    /// CSR (and no overlay). Overlay-free stores return a plain clone.
    ///
    /// This is the compaction step: it rebuilds the builder maps (hydrating
    /// a snapshot-loaded base first), folds the overlay in, and re-freezes.
    /// `self` is untouched, so in-flight readers of the old epoch are never
    /// blocked or disturbed.
    pub fn compacted(&self) -> GraphStore {
        let mut merged = self.clone();
        if merged.has_overlay() {
            merged.make_mutable();
            merged.freeze();
        } else {
            merged.overlay = None;
        }
        merged
    }

    /// Whether the *base* CSR stores `source --label--> target`, ignoring
    /// any overlay (nodes or labels beyond the base read as absent).
    fn base_has_edge(&self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        self.csr
            .as_ref()
            .and_then(|csr| csr.layer(label, true))
            .is_some_and(|layer| layer.neighbours(source).contains(&target))
    }

    /// Resolves a node label against base + overlay, creating an overlay
    /// node if absent.
    fn resolve_or_add_overlay_node(&self, overlay: &mut DeltaOverlay, label: &str) -> NodeId {
        if let Some(id) = self.node_by_label(label) {
            return id;
        }
        overlay.add_node(label)
    }

    /// Resolves a node label against base + overlay without creating.
    fn resolve_node(&self, overlay: &DeltaOverlay, label: &str) -> Option<NodeId> {
        self.node_by_label(label)
            .or_else(|| overlay.node_by_label(label))
    }

    // ------------------------------------------------------------------
    // Labels
    // ------------------------------------------------------------------

    /// The id of the distinguished `type` label.
    pub fn type_label(&self) -> LabelId {
        self.type_label
    }

    /// Interns an edge label, creating its adjacency index if new.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        let id = self.labels.intern(name);
        while self.adjacency.len() <= id.index() {
            self.adjacency.push(Adjacency::default());
        }
        id
    }

    /// Looks up an existing edge label by name.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name)
    }

    /// The string name of an edge label.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id)
    }

    /// Number of distinct edge labels (including `type`).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over all edge labels in id order.
    pub fn labels(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.labels.iter()
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Materialises the eager node index (and owned label storage) before a
    /// node mutation; no-op except on snapshot-loaded stores.
    fn ensure_node_index(&mut self) {
        if !self.node_index_deferred {
            return;
        }
        // Reuse the lazily built index if a lookup already created it.
        let index = match self.lazy_node_index.take() {
            Some(index) => index,
            None => build_node_index(&self.node_labels),
        };
        self.node_index = index;
        self.node_index_deferred = false;
    }

    /// Adds a node with the given (unique) string label, or returns the
    /// existing node if one with this label is already present.
    ///
    /// On an overlay-carrying store this first folds the overlay into the
    /// builder (dropping the stale base CSR) so node ids stay consistent;
    /// the epoch-pinned mutation path uses [`GraphStore::with_delta`]
    /// instead and never pays that cost.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        if self.overlay.is_some() {
            self.make_mutable();
        }
        self.ensure_node_index();
        if let Some(&id) = self.node_index.get(label) {
            return id;
        }
        let id = NodeId(self.node_labels.len() as u32);
        self.node_labels.make_owned().push(label.to_owned());
        self.node_index.insert(label.to_owned(), id);
        id
    }

    /// Adds a node, failing if a node with the same label already exists.
    pub fn try_add_node(&mut self, label: &str) -> Result<NodeId, GraphError> {
        if self.overlay.is_some() {
            self.make_mutable();
        }
        self.ensure_node_index();
        if self.node_index.contains_key(label) {
            return Err(GraphError::DuplicateNodeLabel(label.to_owned()));
        }
        Ok(self.add_node(label))
    }

    /// Looks up a node by its string label (the paper's indexed node
    /// attribute).
    ///
    /// On a snapshot-loaded store the hash index is built on the first call
    /// (thread-safe; later calls share it) — opening an image never pays for
    /// an index the workload might not use.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let base = if self.node_index_deferred {
            self.lazy_node_index
                .get_or_init(|| build_node_index(&self.node_labels))
                .get(label)
                .copied()
        } else {
            self.node_index.get(label).copied()
        };
        base.or_else(|| self.overlay.as_ref().and_then(|ov| ov.node_by_label(label)))
    }

    /// The string label of `node`.
    ///
    /// # Panics
    /// Panics if `node` does not belong to this graph.
    pub fn node_label(&self, node: NodeId) -> &str {
        let base = self.node_labels.len();
        if node.index() < base {
            return self.node_labels.get(node.index());
        }
        match &self.overlay {
            Some(ov) if node.index() - base < ov.added_node_count() => {
                ov.added_node_label(node.index() - base)
            }
            _ => panic!(
                "node index {node} out of range for {} nodes",
                self.node_count()
            ),
        }
    }

    /// Whether `node` belongs to this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// Number of nodes (base dictionary plus overlay-added nodes).
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
            + self
                .overlay
                .as_ref()
                .map_or(0, DeltaOverlay::added_node_count)
    }

    /// Iterates over all node ids in increasing order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    /// Adds a directed edge `source --label--> target`. Parallel edges with
    /// the same label are deduplicated (the data model is a set of triples).
    ///
    /// Drops the frozen CSR index, if any; returns `true` if the edge was
    /// new.
    pub fn add_edge(&mut self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        debug_assert!(self.contains_node(source) && self.contains_node(target));
        // A snapshot-loaded store materialises its builder maps (and an
        // overlay-carrying store folds its overlay in) before the first
        // write, so dropping the CSR below cannot lose edges.
        self.make_mutable();
        debug_assert!(label.index() < self.adjacency.len());
        let adj = &mut self.adjacency[label.index()];
        let out = adj.out.entry(source).or_default();
        if out.contains(&target) {
            return false;
        }
        self.csr = None;
        self.label_stats = OnceLock::new();
        out.push(target);
        adj.inc.entry(target).or_default().push(source);
        adj.edge_count += 1;
        self.out_all
            .entry(source)
            .or_default()
            .push((label, target));
        self.in_all.entry(target).or_default().push((label, source));
        self.edge_count += 1;
        true
    }

    /// Convenience: adds an edge between nodes given by string labels,
    /// creating nodes and the edge label as needed.
    pub fn add_triple(&mut self, source: &str, label: &str, target: &str) -> bool {
        let s = self.add_node(source);
        let l = self.intern_label(label);
        let t = self.add_node(target);
        self.add_edge(s, l, t)
    }

    /// Whether the edge `source --label--> target` exists (overlay-aware).
    pub fn has_edge(&self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        if let Some(ov) = &self.overlay {
            if ov.is_deleted(source, label, target) {
                return false;
            }
            if ov
                .adds_for(source, label, Direction::Outgoing)
                .contains(&target)
            {
                return true;
            }
        }
        self.neighbors(source, label, Direction::Outgoing)
            .contains(&target)
    }

    /// Total number of edges (overlay adds and deletes included).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of edges with a given label.
    ///
    /// **Exact** on overlay stores too (base ± exact overlay counters) —
    /// the planner's `has_edges` pruning predicate depends on this never
    /// under-reporting a live label.
    pub fn edge_count_for_label(&self, label: LabelId) -> usize {
        let base = if let Some(csr) = &self.csr {
            // Every labelled edge appears exactly once in its outgoing layer;
            // this also serves snapshot-loaded stores with empty builders.
            csr.layer(label, true).map_or(0, CsrLayer::len)
        } else {
            self.adjacency
                .get(label.index())
                .map_or(0, |adj| adj.edge_count)
        };
        match &self.overlay {
            Some(ov) => {
                base + ov.added_for_label(label) as usize - ov.deleted_for_label(label) as usize
            }
            None => base,
        }
    }

    /// Iterates over every edge in the graph (overlay-aware: deleted base
    /// edges are skipped, overlay-added edges appended).
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        let overlay = self.overlay.as_ref();
        // A frozen store iterates its CSR (the only complete source on a
        // snapshot-loaded store); otherwise the builder maps serve.
        let csr_edges = self
            .csr
            .as_ref()
            .into_iter()
            .flat_map(|csr| {
                csr.out_all.occupied_nodes().flat_map(move |source| {
                    csr.out_all
                        .entries(source)
                        .iter()
                        .map(move |&(label, target)| EdgeRef {
                            source,
                            label,
                            target,
                        })
                })
            })
            .filter(move |e| overlay.is_none_or(|ov| !ov.is_deleted(e.source, e.label, e.target)));
        // `take(0)` never polls the map iterator, so a frozen store does not
        // walk its (possibly fully populated) builder map just to reject it.
        let builder_cap = if self.csr.is_some() { 0 } else { usize::MAX };
        let builder_edges = self
            .out_all
            .iter()
            .take(builder_cap)
            .flat_map(|(&source, targets)| {
                targets.iter().map(move |&(label, target)| EdgeRef {
                    source,
                    label,
                    target,
                })
            });
        let overlay_edges = overlay.into_iter().flat_map(DeltaOverlay::added_edge_iter);
        csr_edges.chain(builder_edges).chain(overlay_edges)
    }

    // ------------------------------------------------------------------
    // Neighbourhood access (the Sparksee surface)
    // ------------------------------------------------------------------

    /// Nodes connected to `node` by an edge labelled `label`, following the
    /// given direction — the paper's `Neighbors(n, t, dir)`.
    ///
    /// On a frozen store this is two array reads into the CSR index; on an
    /// unfrozen store it falls back to the builder's hash maps. Either way
    /// the result is a borrowed slice — never a copy.
    ///
    /// On an overlay-carrying store this is the **base** view only:
    /// overlay-added edges are absent and deleted edges still appear. Use
    /// [`GraphStore::neighbors_iter`] (or [`GraphStore::neighbors_into`])
    /// for the merged live view; on overlay-free stores the two agree.
    #[inline]
    pub fn neighbors(&self, node: NodeId, label: LabelId, dir: Direction) -> &[NodeId] {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, dir == Direction::Outgoing)
                .map_or(&[][..], |layer| layer.neighbours(node));
        }
        self.adjacency
            .get(label.index())
            .and_then(|adj| match dir {
                Direction::Outgoing => adj.out.get(&node),
                Direction::Incoming => adj.inc.get(&node),
            })
            .map_or(&[][..], Vec::as_slice)
    }

    /// Neighbours of `node` over *any* label (including `type`), in the given
    /// direction, with the connecting label — used by wildcard transitions.
    ///
    /// Returns a borrowed slice in both the frozen and builder states. Like
    /// [`GraphStore::neighbors`], this is the base-only view on an
    /// overlay-carrying store; [`GraphStore::neighbors_any_iter`] merges.
    #[inline]
    pub fn neighbors_any(&self, node: NodeId, dir: Direction) -> &[(LabelId, NodeId)] {
        if let Some(csr) = &self.csr {
            return match dir {
                Direction::Outgoing => csr.out_all.entries(node),
                Direction::Incoming => csr.in_all.entries(node),
            };
        }
        let map = match dir {
            Direction::Outgoing => &self.out_all,
            Direction::Incoming => &self.in_all,
        };
        map.get(&node).map_or(&[][..], Vec::as_slice)
    }

    /// The live neighbour view: the base CSR slice run first, minus edges
    /// the overlay deleted, plus edges the overlay added.
    ///
    /// Without an overlay (the common case) this costs one discriminant
    /// test over [`GraphStore::neighbors`]; the deletion filter is skipped
    /// entirely for `(label, node)` slices no deletion touches.
    #[inline]
    pub fn neighbors_iter(
        &self,
        node: NodeId,
        label: LabelId,
        dir: Direction,
    ) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.neighbors(node, label, dir);
        let (adds, filter_deleted) = match &self.overlay {
            Some(ov) => (
                ov.adds_for(node, label, dir),
                ov.deletes_touch(node, label, dir),
            ),
            None => (&[][..], false),
        };
        let overlay = self.overlay.as_ref();
        base.iter()
            .copied()
            .filter(move |&other| {
                !filter_deleted
                    || overlay.is_none_or(|ov| !ov.edge_deleted(node, label, other, dir))
            })
            .chain(adds.iter().copied())
    }

    /// [`GraphStore::neighbors_iter`] materialised into a caller-provided
    /// buffer, for call sites that need a slice (binary search, rayon).
    /// Returns the base slice directly — zero copies — whenever the overlay
    /// does not touch this `(label, node)` slice.
    #[inline]
    pub fn neighbors_into<'g>(
        &'g self,
        node: NodeId,
        label: LabelId,
        dir: Direction,
        buf: &'g mut Vec<NodeId>,
    ) -> &'g [NodeId] {
        let base = self.neighbors(node, label, dir);
        let Some(ov) = &self.overlay else {
            return base;
        };
        let adds = ov.adds_for(node, label, dir);
        let filter_deleted = ov.deletes_touch(node, label, dir);
        if adds.is_empty() && !filter_deleted {
            return base;
        }
        buf.clear();
        if filter_deleted {
            buf.extend(
                base.iter()
                    .copied()
                    .filter(|&other| !ov.edge_deleted(node, label, other, dir)),
            );
        } else {
            buf.extend_from_slice(base);
        }
        buf.extend_from_slice(adds);
        buf
    }

    /// The live mixed-label neighbour view: base entries minus overlay
    /// deletions, plus overlay additions — the merged counterpart of
    /// [`GraphStore::neighbors_any`].
    #[inline]
    pub fn neighbors_any_iter(
        &self,
        node: NodeId,
        dir: Direction,
    ) -> impl Iterator<Item = (LabelId, NodeId)> + '_ {
        let base = self.neighbors_any(node, dir);
        let (adds, filter_deleted) = match &self.overlay {
            Some(ov) => (ov.adds_any(node, dir), ov.deletes_touch_any(node, dir)),
            None => (&[][..], false),
        };
        let overlay = self.overlay.as_ref();
        base.iter()
            .copied()
            .filter(move |&(label, other)| {
                !filter_deleted
                    || overlay.is_none_or(|ov| !ov.edge_deleted(node, label, other, dir))
            })
            .chain(adds.iter().copied())
    }

    /// All nodes that are the *target* of an edge labelled `label`
    /// (the paper's `Heads`).
    ///
    /// On an overlay store this is a conservative over-approximation:
    /// overlay-added heads are included, but nodes whose last `label` edge
    /// was deleted are kept. Seeding from a superset only adds candidates
    /// the automaton rejects — it cannot change answers or break the
    /// admissibility of cost lower bounds.
    pub fn heads(&self, label: LabelId) -> NodeBitmap {
        let mut set: NodeBitmap = if let Some(csr) = &self.csr {
            csr.layer(label, false)
                .map(|layer| layer.occupied_nodes().collect())
                .unwrap_or_default()
        } else {
            self.adjacency
                .get(label.index())
                .map(|adj| adj.inc.keys().copied().collect())
                .unwrap_or_default()
        };
        if let Some(ov) = &self.overlay {
            set.extend(ov.added_heads(label));
        }
        set
    }

    /// All nodes that are the *source* of an edge labelled `label`
    /// (the paper's `Tails`). Conservative on overlay stores like
    /// [`GraphStore::heads`].
    pub fn tails(&self, label: LabelId) -> NodeBitmap {
        let mut set: NodeBitmap = if let Some(csr) = &self.csr {
            csr.layer(label, true)
                .map(|layer| layer.occupied_nodes().collect())
                .unwrap_or_default()
        } else {
            self.adjacency
                .get(label.index())
                .map(|adj| adj.out.keys().copied().collect())
                .unwrap_or_default()
        };
        if let Some(ov) = &self.overlay {
            set.extend(ov.added_tails(label));
        }
        set
    }

    /// Union of [`GraphStore::heads`] and [`GraphStore::tails`]
    /// (the paper's `TailsAndHeads`).
    pub fn tails_and_heads(&self, label: LabelId) -> NodeBitmap {
        let mut t = self.tails(label);
        t.union_with(&self.heads(label));
        t
    }

    /// All nodes incident to at least one edge, in either direction.
    /// Conservative on overlay stores like [`GraphStore::heads`].
    pub fn nodes_with_any_edge(&self) -> NodeBitmap {
        let mut set: NodeBitmap = if let Some(csr) = &self.csr {
            let mut set: NodeBitmap = csr.out_all.occupied_nodes().collect();
            set.extend(csr.in_all.occupied_nodes());
            set
        } else {
            let mut set: NodeBitmap = self.out_all.keys().copied().collect();
            set.extend(self.in_all.keys().copied());
            set
        };
        if let Some(ov) = &self.overlay {
            set.extend(ov.added_incident_nodes());
        }
        set
    }

    /// Out-degree of `node` restricted to `label`, or over all labels if
    /// `label` is `None` (exact, overlay-aware).
    pub fn out_degree(&self, node: NodeId, label: Option<LabelId>) -> usize {
        let dir = Direction::Outgoing;
        let base = match label {
            Some(l) => self.neighbors(node, l, dir).len(),
            None => self.neighbors_any(node, dir).len(),
        };
        match &self.overlay {
            Some(ov) => match label {
                Some(l) => base + ov.adds_for(node, l, dir).len() - ov.deletes_at(node, l, dir),
                None => base + ov.adds_any(node, dir).len() - ov.deletes_at_any(node, dir),
            },
            None => base,
        }
    }

    /// In-degree of `node` restricted to `label`, or over all labels if
    /// `label` is `None` (exact, overlay-aware).
    pub fn in_degree(&self, node: NodeId, label: Option<LabelId>) -> usize {
        let dir = Direction::Incoming;
        let base = match label {
            Some(l) => self.neighbors(node, l, dir).len(),
            None => self.neighbors_any(node, dir).len(),
        };
        match &self.overlay {
            Some(ov) => match label {
                Some(l) => base + ov.adds_for(node, l, dir).len() - ov.deletes_at(node, l, dir),
                None => base + ov.adds_any(node, dir).len() - ov.deletes_at_any(node, dir),
            },
            None => base,
        }
    }

    /// Total degree (in + out) of `node` over all labels.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node, None) + self.in_degree(node, None)
    }

    // ------------------------------------------------------------------
    // Cardinality statistics
    // ------------------------------------------------------------------

    /// Per-label edge and distinct-endpoint counts, computed on first use
    /// and cached (edge mutations invalidate the cache). Snapshot-loaded
    /// stores whose image carried a stats section start pre-populated;
    /// pre-stats images recompute here lazily.
    pub fn label_stats(&self) -> &LabelStats {
        self.label_stats.get_or_init(|| LabelStats::compute(self))
    }

    /// Number of distinct source nodes of edges labelled `label`.
    ///
    /// Exact on overlay-free stores. On an overlay store this is an upper
    /// *estimate* (base occupancy plus overlay-added sources, deletions
    /// ignored) — the planner only uses it as an ordering heuristic, and
    /// compaction restores exactness.
    pub(crate) fn distinct_tails(&self, label: LabelId) -> usize {
        let base = if let Some(csr) = &self.csr {
            csr.layer(label, true)
                .map_or(0, |layer| layer.occupied_nodes().count())
        } else {
            self.adjacency
                .get(label.index())
                .map_or(0, |adj| adj.out.len())
        };
        match &self.overlay {
            Some(ov) => base + ov.added_tails(label).count(),
            None => base,
        }
    }

    /// Number of distinct target nodes of edges labelled `label` (an upper
    /// estimate on overlay stores, like [`GraphStore::distinct_tails`]).
    pub(crate) fn distinct_heads(&self, label: LabelId) -> usize {
        let base = if let Some(csr) = &self.csr {
            csr.layer(label, false)
                .map_or(0, |layer| layer.occupied_nodes().count())
        } else {
            self.adjacency
                .get(label.index())
                .map_or(0, |adj| adj.inc.len())
        };
        match &self.overlay {
            Some(ov) => base + ov.added_heads(label).count(),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        g.add_triple("b", "knows", "c");
        g.add_triple("a", "likes", "c");
        g.add_triple("a", "type", "Person");
        g.add_triple("b", "type", "Person");
        g
    }

    /// Runs `check` against both the builder and the frozen representation.
    fn both_states(mut g: GraphStore, check: impl Fn(&GraphStore)) {
        assert!(!g.is_frozen());
        check(&g);
        g.freeze();
        assert!(g.is_frozen());
        check(&g);
    }

    #[test]
    fn nodes_are_unique_by_label() {
        let mut g = GraphStore::new();
        let a1 = g.add_node("a");
        let a2 = g.add_node("a");
        assert_eq!(a1, a2);
        assert_eq!(g.node_count(), 1);
        assert!(g.try_add_node("a").is_err());
        assert!(g.try_add_node("b").is_ok());
    }

    #[test]
    fn type_label_is_preinterned() {
        let g = GraphStore::new();
        assert_eq!(g.label_id("type"), Some(g.type_label()));
        assert_eq!(g.label_name(g.type_label()), "type");
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut g = GraphStore::new();
        assert!(g.add_triple("a", "knows", "b"));
        assert!(!g.add_triple("a", "knows", "b"));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_by_direction() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let b = g.node_by_label("b").unwrap();
            let c = g.node_by_label("c").unwrap();
            let knows = g.label_id("knows").unwrap();
            assert_eq!(g.neighbors(a, knows, Direction::Outgoing), &[b]);
            assert_eq!(g.neighbors(b, knows, Direction::Incoming), &[a]);
            assert_eq!(g.neighbors(c, knows, Direction::Incoming), &[b]);
            assert!(g.neighbors(c, knows, Direction::Outgoing).is_empty());
        });
    }

    #[test]
    fn neighbors_any_covers_all_labels_and_type() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let out = g.neighbors_any(a, Direction::Outgoing);
            assert_eq!(out.len(), 3); // knows->b, likes->c, type->Person
            let person = g.node_by_label("Person").unwrap();
            let incoming = g.neighbors_any(person, Direction::Incoming);
            assert_eq!(incoming.len(), 2);
        });
    }

    #[test]
    fn heads_tails_and_union() {
        both_states(sample(), |g| {
            let knows = g.label_id("knows").unwrap();
            let heads = g.heads(knows);
            let tails = g.tails(knows);
            assert_eq!(heads.len(), 2); // b, c
            assert_eq!(tails.len(), 2); // a, b
            assert_eq!(g.tails_and_heads(knows).len(), 3); // a, b, c
        });
    }

    #[test]
    fn degrees() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let knows = g.label_id("knows").unwrap();
            assert_eq!(g.out_degree(a, None), 3);
            assert_eq!(g.out_degree(a, Some(knows)), 1);
            assert_eq!(g.in_degree(a, None), 0);
            assert_eq!(g.degree(a), 3);
        });
    }

    #[test]
    fn edge_iteration_and_counts() {
        both_states(sample(), |g| {
            assert_eq!(g.edges().count(), g.edge_count());
            let type_l = g.type_label();
            assert_eq!(g.edge_count_for_label(type_l), 2);
            assert!(g.has_edge(
                g.node_by_label("a").unwrap(),
                g.label_id("likes").unwrap(),
                g.node_by_label("c").unwrap()
            ));
        });
    }

    #[test]
    fn nodes_with_any_edge_excludes_isolated() {
        let mut g = sample();
        g.add_node("isolated");
        both_states(g, |g| {
            let incident = g.nodes_with_any_edge();
            assert!(!incident.contains(g.node_by_label("isolated").unwrap()));
            assert_eq!(incident.len(), g.node_count() - 1);
        });
    }

    #[test]
    fn freeze_is_idempotent_and_preserves_order() {
        let mut g = sample();
        let a = g.node_by_label("a").unwrap();
        let knows = g.label_id("knows").unwrap();
        let before = g.neighbors(a, knows, Direction::Outgoing).to_vec();
        g.freeze();
        g.freeze();
        assert_eq!(g.neighbors(a, knows, Direction::Outgoing), &before[..]);
    }

    #[test]
    fn mutation_after_freeze_drops_and_rebuilds_the_index() {
        let mut g = sample();
        g.freeze();
        assert!(g.is_frozen());
        g.add_triple("c", "knows", "d");
        assert!(
            !g.is_frozen(),
            "adding an edge must invalidate the CSR index"
        );
        let c = g.node_by_label("c").unwrap();
        let d = g.node_by_label("d").unwrap();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.neighbors(c, knows, Direction::Outgoing), &[d]);
        g.freeze();
        assert_eq!(g.neighbors(c, knows, Direction::Outgoing), &[d]);
    }

    /// All-direction merged views of `g` collected into sorted vectors.
    fn live_view(g: &GraphStore, node: &str, label: &str, dir: Direction) -> Vec<String> {
        let n = g.node_by_label(node).unwrap();
        let l = g.label_id(label).unwrap();
        let mut v: Vec<String> = g
            .neighbors_iter(n, l, dir)
            .map(|m| g.node_label(m).to_owned())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn with_delta_keeps_the_csr_and_layers_changes() {
        let mut g = sample();
        g.freeze();
        let mut delta = GraphDelta::new();
        delta.add("c", "knows", "d").add("a", "knows", "c");
        delta.remove("a", "knows", "b");
        let (live, report) = g.with_delta(&delta).unwrap();
        assert!(live.is_frozen(), "with_delta must never drop the CSR");
        assert!(live.has_overlay());
        assert_eq!(report.added, 2);
        assert_eq!(report.removed, 1);
        assert_eq!(report.overlay_edges, 3);
        // The source store is untouched (epoch pinning relies on this).
        assert!(!g.has_overlay());
        assert_eq!(live_view(&g, "a", "knows", Direction::Outgoing), ["b"]);
        // Merged views reflect the delta.
        assert_eq!(live_view(&live, "a", "knows", Direction::Outgoing), ["c"]);
        assert_eq!(live_view(&live, "c", "knows", Direction::Outgoing), ["d"]);
        assert_eq!(
            live_view(&live, "c", "knows", Direction::Incoming),
            ["a", "b"]
        );
        assert_eq!(live.edge_count(), g.edge_count() + 1);
        let knows = live.label_id("knows").unwrap();
        assert_eq!(live.edge_count_for_label(knows), 3);
        assert!(live.has_edge(
            live.node_by_label("c").unwrap(),
            knows,
            live.node_by_label("d").unwrap()
        ));
        assert!(!live.has_edge(
            live.node_by_label("a").unwrap(),
            knows,
            live.node_by_label("b").unwrap()
        ));
        // New node "d" resolves, counts, and labels correctly.
        let d = live.node_by_label("d").unwrap();
        assert_eq!(live.node_label(d), "d");
        assert!(live.contains_node(d));
        assert_eq!(live.node_count(), g.node_count() + 1);
        assert_eq!(live.node_ids().count(), live.node_count());
        // edges() agrees with edge_count.
        assert_eq!(live.edges().count(), live.edge_count());
    }

    #[test]
    fn compacted_store_matches_incremental_views() {
        let mut g = sample();
        g.freeze();
        let mut delta = GraphDelta::new();
        delta
            .add("c", "knows", "d")
            .add("d", "likes", "a")
            .remove("b", "knows", "c");
        let (live, _) = g.with_delta(&delta).unwrap();
        let compact = live.compacted();
        assert!(compact.is_frozen());
        assert!(!compact.has_overlay());
        assert_eq!(compact.edge_count(), live.edge_count());
        assert_eq!(compact.node_count(), live.node_count());
        for node in ["a", "b", "c", "d"] {
            for label in ["knows", "likes", "type"] {
                for dir in [Direction::Outgoing, Direction::Incoming] {
                    assert_eq!(
                        live_view(&compact, node, label, dir),
                        live_view(&live, node, label, dir),
                        "{node} {label} {dir:?}"
                    );
                }
            }
        }
        let knows = compact.label_id("knows").unwrap();
        assert_eq!(
            compact.edge_count_for_label(knows),
            live.edge_count_for_label(knows)
        );
        // Compaction makes the statistics exact again; the live estimates
        // may only over-approximate.
        assert!(live.distinct_tails(knows) >= compact.distinct_tails(knows));
    }

    #[test]
    fn overlay_chains_across_epochs_and_un_deletes() {
        let mut g = sample();
        g.freeze();
        let (e1, r1) = g
            .with_delta(GraphDelta::new().remove("a", "knows", "b"))
            .unwrap();
        assert_eq!(r1.removed, 1);
        // Re-adding the deleted base edge in a later epoch un-deletes it.
        let (e2, r2) = e1
            .with_delta(GraphDelta::new().add("a", "knows", "b"))
            .unwrap();
        assert_eq!(r2.added, 1);
        assert_eq!(r2.overlay_edges, 0, "delete + re-add cancels out");
        assert_eq!(live_view(&e2, "a", "knows", Direction::Outgoing), ["b"]);
        assert_eq!(e2.edge_count(), g.edge_count());
        // Each epoch keeps its own view.
        assert!(live_view(&e1, "a", "knows", Direction::Outgoing).is_empty());
        assert_eq!(live_view(&g, "a", "knows", Direction::Outgoing), ["b"]);
    }

    #[test]
    fn with_delta_duplicates_and_unknown_removals_are_no_ops() {
        let mut g = sample();
        g.freeze();
        let (live, report) = g
            .with_delta(
                GraphDelta::new()
                    .add("a", "knows", "b") // already in base
                    .remove("nope", "knows", "b") // unknown node
                    .remove("a", "missing", "b") // unknown label
                    .remove("a", "knows", "c"), // no such edge
            )
            .unwrap();
        assert_eq!(report.added, 0);
        assert_eq!(report.removed, 0);
        assert!(!live.has_overlay());
        assert_eq!(live.edge_count(), g.edge_count());
    }

    #[test]
    fn with_delta_requires_a_frozen_store() {
        let g = sample();
        assert!(matches!(
            g.with_delta(&GraphDelta::new()),
            Err(GraphError::NotFrozen)
        ));
    }

    #[test]
    fn legacy_mutation_on_an_overlay_store_folds_first() {
        let mut g = sample();
        g.freeze();
        let (mut live, _) = g
            .with_delta(
                GraphDelta::new()
                    .add("c", "knows", "d")
                    .remove("a", "likes", "c"),
            )
            .unwrap();
        // The legacy API still works: the overlay folds into the builder.
        assert!(live.add_triple("d", "knows", "e"));
        assert!(!live.is_frozen(), "legacy add_edge drops the CSR");
        assert!(!live.has_overlay());
        assert_eq!(live_view(&live, "c", "knows", Direction::Outgoing), ["d"]);
        assert_eq!(live_view(&live, "d", "knows", Direction::Outgoing), ["e"]);
        let likes = live.label_id("likes").unwrap();
        assert_eq!(live.edge_count_for_label(likes), 0);
        live.freeze();
        assert_eq!(live_view(&live, "d", "knows", Direction::Outgoing), ["e"]);
        assert_eq!(live.edges().count(), live.edge_count());
    }

    #[test]
    fn overlay_aware_aggregates() {
        let mut g = sample();
        g.freeze();
        let (live, _) = g
            .with_delta(
                GraphDelta::new()
                    .add("c", "knows", "d")
                    .remove("a", "knows", "b"),
            )
            .unwrap();
        let knows = live.label_id("knows").unwrap();
        let d = live.node_by_label("d").unwrap();
        let c = live.node_by_label("c").unwrap();
        let a = live.node_by_label("a").unwrap();
        // heads/tails include overlay additions (and conservatively keep
        // deleted endpoints).
        assert!(live.heads(knows).contains(d));
        assert!(live.tails(knows).contains(c));
        assert!(live.nodes_with_any_edge().contains(d));
        // Degrees are exact.
        assert_eq!(live.out_degree(a, Some(knows)), 0);
        assert_eq!(live.out_degree(c, Some(knows)), 1);
        assert_eq!(live.in_degree(d, None), 1);
        // neighbors_into merges (and borrows straight from the CSR when the
        // slice is untouched).
        let mut buf = Vec::new();
        assert_eq!(
            live.neighbors_into(c, knows, Direction::Outgoing, &mut buf),
            &[d]
        );
        let b = live.node_by_label("b").unwrap();
        let mut buf2 = Vec::new();
        assert_eq!(
            live.neighbors_into(b, knows, Direction::Outgoing, &mut buf2),
            live.neighbors(b, knows, Direction::Outgoing),
        );
        // label_stats over the live store keeps edge counts exact.
        assert_eq!(live.label_stats().entry(knows).edges, 2);
    }

    #[test]
    fn nodes_and_labels_added_after_freeze_read_as_empty() {
        let mut g = sample();
        g.freeze();
        let lonely = g.add_node("lonely");
        let fresh = g.intern_label("fresh");
        assert!(g.is_frozen(), "adding a node or label does not invalidate");
        assert!(g.neighbors(lonely, fresh, Direction::Outgoing).is_empty());
        assert!(g.neighbors_any(lonely, Direction::Outgoing).is_empty());
        let a = g.node_by_label("a").unwrap();
        assert!(g.neighbors(a, fresh, Direction::Outgoing).is_empty());
    }
}
