//! The graph store itself.

use crate::bitmap::NodeBitmap;
use crate::csr::CsrIndex;
use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::ids::{Direction, LabelId, NodeId};
use crate::interner::LabelInterner;

/// The distinguished edge label connecting an entity instance to its class.
pub const TYPE_LABEL: &str = "type";

/// A borrowed view of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Source node.
    pub source: NodeId,
    /// Edge label.
    pub label: LabelId,
    /// Target node.
    pub target: NodeId,
}

/// Per-label adjacency index (both directions), mirroring Sparksee's
/// neighbour indexing for an edge type. This is the *builder* side: hash
/// maps support cheap insertion and deduplication while the graph is loaded;
/// [`GraphStore::freeze`] compiles them into CSR arrays for querying.
#[derive(Debug, Default, Clone)]
struct Adjacency {
    out: FxHashMap<NodeId, Vec<NodeId>>,
    inc: FxHashMap<NodeId, Vec<NodeId>>,
    edge_count: usize,
}

/// An in-memory labelled directed multigraph with per-(label, direction)
/// adjacency indexes and a unique string label per node.
///
/// The store has two representations of its adjacency:
///
/// * a mutable, hash-map-backed **builder** that [`GraphStore::add_edge`] and
///   friends write into, and
/// * an optional **frozen CSR index** ([`GraphStore::freeze`]) serving
///   [`GraphStore::neighbors`] / [`GraphStore::neighbors_any`] as borrowed
///   slices out of packed arrays — the layout the evaluator's hot path wants.
///
/// Every read works in both states; freezing only changes the data layout.
/// Adding an edge to a frozen store transparently drops the index (the next
/// [`GraphStore::freeze`] rebuilds it).
///
/// This is the substrate the Omega evaluator traverses; see the crate-level
/// documentation for the correspondence with Sparksee.
#[derive(Debug, Clone)]
pub struct GraphStore {
    node_labels: Vec<String>,
    node_index: FxHashMap<String, NodeId>,
    labels: LabelInterner,
    type_label: LabelId,
    adjacency: Vec<Adjacency>,
    out_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    in_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    edge_count: usize,
    csr: Option<CsrIndex>,
}

impl Default for GraphStore {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphStore {
    /// Creates an empty graph. The `type` label is pre-interned.
    pub fn new() -> Self {
        let mut labels = LabelInterner::new();
        let type_label = labels.intern(TYPE_LABEL);
        GraphStore {
            node_labels: Vec::new(),
            node_index: FxHashMap::default(),
            labels,
            type_label,
            adjacency: vec![Adjacency::default()],
            out_all: FxHashMap::default(),
            in_all: FxHashMap::default(),
            edge_count: 0,
            csr: None,
        }
    }

    // ------------------------------------------------------------------
    // Freezing
    // ------------------------------------------------------------------

    /// Compiles the builder-side adjacency into the frozen CSR index.
    ///
    /// Idempotent; call it once loading is complete. All neighbourhood reads
    /// afterwards are served from packed offset/neighbour arrays.
    pub fn freeze(&mut self) {
        if self.csr.is_some() {
            return;
        }
        let per_label: Vec<_> = self
            .adjacency
            .iter()
            .map(|adj| (&adj.out, &adj.inc))
            .collect();
        self.csr = Some(CsrIndex::build(
            self.node_labels.len(),
            &per_label,
            &self.out_all,
            &self.in_all,
        ));
    }

    /// Whether the frozen CSR index is present and current.
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    // ------------------------------------------------------------------
    // Labels
    // ------------------------------------------------------------------

    /// The id of the distinguished `type` label.
    pub fn type_label(&self) -> LabelId {
        self.type_label
    }

    /// Interns an edge label, creating its adjacency index if new.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        let id = self.labels.intern(name);
        while self.adjacency.len() <= id.index() {
            self.adjacency.push(Adjacency::default());
        }
        id
    }

    /// Looks up an existing edge label by name.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name)
    }

    /// The string name of an edge label.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id)
    }

    /// Number of distinct edge labels (including `type`).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over all edge labels in id order.
    pub fn labels(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.labels.iter()
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Adds a node with the given (unique) string label, or returns the
    /// existing node if one with this label is already present.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(label) {
            return id;
        }
        let id = NodeId(self.node_labels.len() as u32);
        self.node_labels.push(label.to_owned());
        self.node_index.insert(label.to_owned(), id);
        id
    }

    /// Adds a node, failing if a node with the same label already exists.
    pub fn try_add_node(&mut self, label: &str) -> Result<NodeId, GraphError> {
        if self.node_index.contains_key(label) {
            return Err(GraphError::DuplicateNodeLabel(label.to_owned()));
        }
        Ok(self.add_node(label))
    }

    /// Looks up a node by its string label (the paper's indexed node
    /// attribute).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.node_index.get(label).copied()
    }

    /// The string label of `node`.
    ///
    /// # Panics
    /// Panics if `node` does not belong to this graph.
    pub fn node_label(&self, node: NodeId) -> &str {
        &self.node_labels[node.index()]
    }

    /// Whether `node` belongs to this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_labels.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Iterates over all node ids in increasing order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_labels.len() as u32).map(NodeId)
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    /// Adds a directed edge `source --label--> target`. Parallel edges with
    /// the same label are deduplicated (the data model is a set of triples).
    ///
    /// Drops the frozen CSR index, if any; returns `true` if the edge was
    /// new.
    pub fn add_edge(&mut self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        debug_assert!(self.contains_node(source) && self.contains_node(target));
        debug_assert!(label.index() < self.adjacency.len());
        let adj = &mut self.adjacency[label.index()];
        let out = adj.out.entry(source).or_default();
        if out.contains(&target) {
            return false;
        }
        self.csr = None;
        out.push(target);
        adj.inc.entry(target).or_default().push(source);
        adj.edge_count += 1;
        self.out_all
            .entry(source)
            .or_default()
            .push((label, target));
        self.in_all.entry(target).or_default().push((label, source));
        self.edge_count += 1;
        true
    }

    /// Convenience: adds an edge between nodes given by string labels,
    /// creating nodes and the edge label as needed.
    pub fn add_triple(&mut self, source: &str, label: &str, target: &str) -> bool {
        let s = self.add_node(source);
        let l = self.intern_label(label);
        let t = self.add_node(target);
        self.add_edge(s, l, t)
    }

    /// Whether the edge `source --label--> target` exists.
    pub fn has_edge(&self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        self.neighbors(source, label, Direction::Outgoing)
            .contains(&target)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of edges with a given label.
    pub fn edge_count_for_label(&self, label: LabelId) -> usize {
        self.adjacency
            .get(label.index())
            .map_or(0, |adj| adj.edge_count)
    }

    /// Iterates over every edge in the graph.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out_all.iter().flat_map(|(&source, targets)| {
            targets.iter().map(move |&(label, target)| EdgeRef {
                source,
                label,
                target,
            })
        })
    }

    // ------------------------------------------------------------------
    // Neighbourhood access (the Sparksee surface)
    // ------------------------------------------------------------------

    /// Nodes connected to `node` by an edge labelled `label`, following the
    /// given direction — the paper's `Neighbors(n, t, dir)`.
    ///
    /// On a frozen store this is two array reads into the CSR index; on an
    /// unfrozen store it falls back to the builder's hash maps. Either way
    /// the result is a borrowed slice — never a copy.
    #[inline]
    pub fn neighbors(&self, node: NodeId, label: LabelId, dir: Direction) -> &[NodeId] {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, dir == Direction::Outgoing)
                .map_or(&[][..], |layer| layer.neighbours(node));
        }
        self.adjacency
            .get(label.index())
            .and_then(|adj| match dir {
                Direction::Outgoing => adj.out.get(&node),
                Direction::Incoming => adj.inc.get(&node),
            })
            .map_or(&[][..], Vec::as_slice)
    }

    /// Neighbours of `node` over *any* label (including `type`), in the given
    /// direction, with the connecting label — used by wildcard transitions.
    ///
    /// Returns a borrowed slice in both the frozen and builder states.
    #[inline]
    pub fn neighbors_any(&self, node: NodeId, dir: Direction) -> &[(LabelId, NodeId)] {
        if let Some(csr) = &self.csr {
            return match dir {
                Direction::Outgoing => csr.out_all.entries(node),
                Direction::Incoming => csr.in_all.entries(node),
            };
        }
        let map = match dir {
            Direction::Outgoing => &self.out_all,
            Direction::Incoming => &self.in_all,
        };
        map.get(&node).map_or(&[][..], Vec::as_slice)
    }

    /// All nodes that are the *target* of an edge labelled `label`
    /// (the paper's `Heads`).
    pub fn heads(&self, label: LabelId) -> NodeBitmap {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, false)
                .map(|layer| layer.occupied_nodes().collect())
                .unwrap_or_default();
        }
        self.adjacency
            .get(label.index())
            .map(|adj| adj.inc.keys().copied().collect())
            .unwrap_or_default()
    }

    /// All nodes that are the *source* of an edge labelled `label`
    /// (the paper's `Tails`).
    pub fn tails(&self, label: LabelId) -> NodeBitmap {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, true)
                .map(|layer| layer.occupied_nodes().collect())
                .unwrap_or_default();
        }
        self.adjacency
            .get(label.index())
            .map(|adj| adj.out.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Union of [`GraphStore::heads`] and [`GraphStore::tails`]
    /// (the paper's `TailsAndHeads`).
    pub fn tails_and_heads(&self, label: LabelId) -> NodeBitmap {
        let mut t = self.tails(label);
        t.union_with(&self.heads(label));
        t
    }

    /// All nodes incident to at least one edge, in either direction.
    pub fn nodes_with_any_edge(&self) -> NodeBitmap {
        let mut set: NodeBitmap = self.out_all.keys().copied().collect();
        set.extend(self.in_all.keys().copied());
        set
    }

    /// Out-degree of `node` restricted to `label`, or over all labels if
    /// `label` is `None`.
    pub fn out_degree(&self, node: NodeId, label: Option<LabelId>) -> usize {
        match label {
            Some(l) => self.neighbors(node, l, Direction::Outgoing).len(),
            None => self.neighbors_any(node, Direction::Outgoing).len(),
        }
    }

    /// In-degree of `node` restricted to `label`, or over all labels if
    /// `label` is `None`.
    pub fn in_degree(&self, node: NodeId, label: Option<LabelId>) -> usize {
        match label {
            Some(l) => self.neighbors(node, l, Direction::Incoming).len(),
            None => self.neighbors_any(node, Direction::Incoming).len(),
        }
    }

    /// Total degree (in + out) of `node` over all labels.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node, None) + self.in_degree(node, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        g.add_triple("b", "knows", "c");
        g.add_triple("a", "likes", "c");
        g.add_triple("a", "type", "Person");
        g.add_triple("b", "type", "Person");
        g
    }

    /// Runs `check` against both the builder and the frozen representation.
    fn both_states(mut g: GraphStore, check: impl Fn(&GraphStore)) {
        assert!(!g.is_frozen());
        check(&g);
        g.freeze();
        assert!(g.is_frozen());
        check(&g);
    }

    #[test]
    fn nodes_are_unique_by_label() {
        let mut g = GraphStore::new();
        let a1 = g.add_node("a");
        let a2 = g.add_node("a");
        assert_eq!(a1, a2);
        assert_eq!(g.node_count(), 1);
        assert!(g.try_add_node("a").is_err());
        assert!(g.try_add_node("b").is_ok());
    }

    #[test]
    fn type_label_is_preinterned() {
        let g = GraphStore::new();
        assert_eq!(g.label_id("type"), Some(g.type_label()));
        assert_eq!(g.label_name(g.type_label()), "type");
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut g = GraphStore::new();
        assert!(g.add_triple("a", "knows", "b"));
        assert!(!g.add_triple("a", "knows", "b"));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_by_direction() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let b = g.node_by_label("b").unwrap();
            let c = g.node_by_label("c").unwrap();
            let knows = g.label_id("knows").unwrap();
            assert_eq!(g.neighbors(a, knows, Direction::Outgoing), &[b]);
            assert_eq!(g.neighbors(b, knows, Direction::Incoming), &[a]);
            assert_eq!(g.neighbors(c, knows, Direction::Incoming), &[b]);
            assert!(g.neighbors(c, knows, Direction::Outgoing).is_empty());
        });
    }

    #[test]
    fn neighbors_any_covers_all_labels_and_type() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let out = g.neighbors_any(a, Direction::Outgoing);
            assert_eq!(out.len(), 3); // knows->b, likes->c, type->Person
            let person = g.node_by_label("Person").unwrap();
            let incoming = g.neighbors_any(person, Direction::Incoming);
            assert_eq!(incoming.len(), 2);
        });
    }

    #[test]
    fn heads_tails_and_union() {
        both_states(sample(), |g| {
            let knows = g.label_id("knows").unwrap();
            let heads = g.heads(knows);
            let tails = g.tails(knows);
            assert_eq!(heads.len(), 2); // b, c
            assert_eq!(tails.len(), 2); // a, b
            assert_eq!(g.tails_and_heads(knows).len(), 3); // a, b, c
        });
    }

    #[test]
    fn degrees() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let knows = g.label_id("knows").unwrap();
            assert_eq!(g.out_degree(a, None), 3);
            assert_eq!(g.out_degree(a, Some(knows)), 1);
            assert_eq!(g.in_degree(a, None), 0);
            assert_eq!(g.degree(a), 3);
        });
    }

    #[test]
    fn edge_iteration_and_counts() {
        both_states(sample(), |g| {
            assert_eq!(g.edges().count(), g.edge_count());
            let type_l = g.type_label();
            assert_eq!(g.edge_count_for_label(type_l), 2);
            assert!(g.has_edge(
                g.node_by_label("a").unwrap(),
                g.label_id("likes").unwrap(),
                g.node_by_label("c").unwrap()
            ));
        });
    }

    #[test]
    fn nodes_with_any_edge_excludes_isolated() {
        let mut g = sample();
        g.add_node("isolated");
        both_states(g, |g| {
            let incident = g.nodes_with_any_edge();
            assert!(!incident.contains(g.node_by_label("isolated").unwrap()));
            assert_eq!(incident.len(), g.node_count() - 1);
        });
    }

    #[test]
    fn freeze_is_idempotent_and_preserves_order() {
        let mut g = sample();
        let a = g.node_by_label("a").unwrap();
        let knows = g.label_id("knows").unwrap();
        let before = g.neighbors(a, knows, Direction::Outgoing).to_vec();
        g.freeze();
        g.freeze();
        assert_eq!(g.neighbors(a, knows, Direction::Outgoing), &before[..]);
    }

    #[test]
    fn mutation_after_freeze_drops_and_rebuilds_the_index() {
        let mut g = sample();
        g.freeze();
        assert!(g.is_frozen());
        g.add_triple("c", "knows", "d");
        assert!(
            !g.is_frozen(),
            "adding an edge must invalidate the CSR index"
        );
        let c = g.node_by_label("c").unwrap();
        let d = g.node_by_label("d").unwrap();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.neighbors(c, knows, Direction::Outgoing), &[d]);
        g.freeze();
        assert_eq!(g.neighbors(c, knows, Direction::Outgoing), &[d]);
    }

    #[test]
    fn nodes_and_labels_added_after_freeze_read_as_empty() {
        let mut g = sample();
        g.freeze();
        let lonely = g.add_node("lonely");
        let fresh = g.intern_label("fresh");
        assert!(g.is_frozen(), "adding a node or label does not invalidate");
        assert!(g.neighbors(lonely, fresh, Direction::Outgoing).is_empty());
        assert!(g.neighbors_any(lonely, Direction::Outgoing).is_empty());
        let a = g.node_by_label("a").unwrap();
        assert!(g.neighbors(a, fresh, Direction::Outgoing).is_empty());
    }
}
