//! The graph store itself.

use std::sync::OnceLock;

use crate::bitmap::NodeBitmap;
use crate::csr::{CsrIndex, CsrLayer};
use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::ids::{Direction, LabelId, NodeId};
use crate::interner::LabelInterner;
use crate::snapshot::map::MappedSlice;
use crate::stats::LabelStats;

/// The distinguished edge label connecting an entity instance to its class.
pub const TYPE_LABEL: &str = "type";

/// A borrowed view of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Source node.
    pub source: NodeId,
    /// Edge label.
    pub label: LabelId,
    /// Target node.
    pub target: NodeId,
}

/// The node string dictionary: owned strings, or zero-copy views into a
/// memory-mapped snapshot.
///
/// The mapped form keeps the `u64` offsets array and the concatenated UTF-8
/// bytes borrowed from the snapshot mapping; the loader validated UTF-8 and
/// offset boundaries once, so lookups slice without copying or re-checking.
/// The first mutation of a loaded store materialises the owned form.
#[derive(Debug, Clone)]
pub(crate) enum NodeLabels {
    /// Heap strings built through [`GraphStore::add_node`].
    Owned(Vec<String>),
    /// Offsets + bytes borrowed from a snapshot mapping.
    Mapped {
        /// `u64[len + 1]` byte offsets, validated monotone and on UTF-8
        /// character boundaries.
        offsets: MappedSlice,
        /// Concatenated label strings, validated as UTF-8.
        bytes: MappedSlice,
        /// Number of labels.
        len: usize,
    },
}

impl NodeLabels {
    pub(crate) fn len(&self) -> usize {
        match self {
            NodeLabels::Owned(v) => v.len(),
            NodeLabels::Mapped { len, .. } => *len,
        }
    }

    /// The label of node `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range (same contract as `Vec` indexing).
    pub(crate) fn get(&self, i: usize) -> &str {
        match self {
            NodeLabels::Owned(v) => &v[i],
            NodeLabels::Mapped {
                offsets,
                bytes,
                len,
            } => {
                assert!(i < *len, "node index {i} out of range for {len} nodes");
                // The loader rejects images whose offset section is not a
                // whole number of u64s, so this cannot fail after open; the
                // expect documents that invariant.
                #[allow(clippy::expect_used)]
                let offsets = offsets.as_u64s().expect("validated at load");
                let slice = &bytes.bytes()[offsets[i] as usize..offsets[i + 1] as usize];
                // Safety: the loader validated the whole byte section as
                // UTF-8 and every offset as a character boundary.
                unsafe { std::str::from_utf8_unchecked(slice) }
            }
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The owned vector, materialising from the mapping if needed (the
    /// mutation path).
    fn make_owned(&mut self) -> &mut Vec<String> {
        if let NodeLabels::Mapped { .. } = self {
            *self = NodeLabels::Owned(self.iter().map(str::to_owned).collect());
        }
        match self {
            NodeLabels::Owned(v) => v,
            NodeLabels::Mapped { .. } => unreachable!("just materialised"),
        }
    }
}

/// Builds the label → id hash index over a node dictionary.
///
/// Node labels are unique by construction for every store this crate
/// writes; if a foreign snapshot nevertheless carries duplicates (its
/// checksums intact but its writer buggy), the *lowest* node id wins, so
/// lookups stay deterministic rather than depending on iteration order.
fn build_node_index(labels: &NodeLabels) -> FxHashMap<String, NodeId> {
    let mut index = FxHashMap::default();
    index.reserve(labels.len());
    for (i, label) in labels.iter().enumerate() {
        index.entry(label.to_owned()).or_insert(NodeId(i as u32));
    }
    index
}

/// Per-label adjacency index (both directions), mirroring Sparksee's
/// neighbour indexing for an edge type. This is the *builder* side: hash
/// maps support cheap insertion and deduplication while the graph is loaded;
/// [`GraphStore::freeze`] compiles them into CSR arrays for querying.
#[derive(Debug, Default, Clone)]
pub(crate) struct Adjacency {
    pub(crate) out: FxHashMap<NodeId, Vec<NodeId>>,
    pub(crate) inc: FxHashMap<NodeId, Vec<NodeId>>,
    pub(crate) edge_count: usize,
}

/// An in-memory labelled directed multigraph with per-(label, direction)
/// adjacency indexes and a unique string label per node.
///
/// The store has two representations of its adjacency:
///
/// * a mutable, hash-map-backed **builder** that [`GraphStore::add_edge`] and
///   friends write into, and
/// * an optional **frozen CSR index** ([`GraphStore::freeze`]) serving
///   [`GraphStore::neighbors`] / [`GraphStore::neighbors_any`] as borrowed
///   slices out of packed arrays — the layout the evaluator's hot path wants.
///
/// Every read works in both states; freezing only changes the data layout.
/// Adding an edge to a frozen store transparently drops the index (the next
/// [`GraphStore::freeze`] rebuilds it).
///
/// A third way to obtain a store is [`crate::snapshot`]: a frozen graph can
/// be serialised to a single image file and re-opened with its CSR arrays
/// memory-mapped in place. Such a store starts with *empty* builder maps —
/// every read is served by the CSR — and transparently rehydrates the
/// builder from the CSR on the first mutation, so the whole mutable API
/// keeps working (at the cost of materialising the adjacency in RAM again).
///
/// This is the substrate the Omega evaluator traverses; see the crate-level
/// documentation for the correspondence with Sparksee.
#[derive(Debug, Clone)]
pub struct GraphStore {
    pub(crate) node_labels: NodeLabels,
    pub(crate) node_index: FxHashMap<String, NodeId>,
    /// Lazily built label → id index for snapshot-loaded stores (the eager
    /// `node_index` is empty and `node_index_deferred` is set): paying the
    /// hash-and-copy cost of a large dictionary only if a constant lookup
    /// ever happens keeps `open_snapshot` O(sections) instead of O(nodes).
    pub(crate) lazy_node_index: OnceLock<FxHashMap<String, NodeId>>,
    /// Whether `node_by_label` consults `lazy_node_index`.
    pub(crate) node_index_deferred: bool,
    pub(crate) labels: LabelInterner,
    pub(crate) type_label: LabelId,
    pub(crate) adjacency: Vec<Adjacency>,
    pub(crate) out_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    pub(crate) in_all: FxHashMap<NodeId, Vec<(LabelId, NodeId)>>,
    pub(crate) edge_count: usize,
    pub(crate) csr: Option<CsrIndex>,
    /// Whether the builder-side maps mirror the graph. `false` only for
    /// snapshot-loaded stores, whose edges live solely in the CSR until a
    /// mutation forces [`GraphStore::hydrate_builder`].
    pub(crate) hydrated: bool,
    /// Cached per-label cardinalities, built on first use (or pre-populated
    /// from a snapshot's stats section) and invalidated by edge mutations.
    pub(crate) label_stats: OnceLock<LabelStats>,
}

impl Default for GraphStore {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphStore {
    /// Creates an empty graph. The `type` label is pre-interned.
    pub fn new() -> Self {
        let mut labels = LabelInterner::new();
        let type_label = labels.intern(TYPE_LABEL);
        GraphStore {
            node_labels: NodeLabels::Owned(Vec::new()),
            node_index: FxHashMap::default(),
            lazy_node_index: OnceLock::new(),
            node_index_deferred: false,
            labels,
            type_label,
            adjacency: vec![Adjacency::default()],
            out_all: FxHashMap::default(),
            in_all: FxHashMap::default(),
            edge_count: 0,
            csr: None,
            hydrated: true,
            label_stats: OnceLock::new(),
        }
    }

    // ------------------------------------------------------------------
    // Freezing
    // ------------------------------------------------------------------

    /// Compiles the builder-side adjacency into the frozen CSR index.
    ///
    /// Idempotent; call it once loading is complete. All neighbourhood reads
    /// afterwards are served from packed offset/neighbour arrays.
    pub fn freeze(&mut self) {
        if self.csr.is_some() {
            return;
        }
        let per_label: Vec<_> = self
            .adjacency
            .iter()
            .map(|adj| (&adj.out, &adj.inc))
            .collect();
        self.csr = Some(CsrIndex::build(
            self.node_labels.len(),
            &per_label,
            &self.out_all,
            &self.in_all,
        ));
    }

    /// Whether the frozen CSR index is present and current.
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    /// Rebuilds the builder-side hash maps from the frozen CSR index.
    ///
    /// Snapshot-loaded stores keep their adjacency only in (possibly
    /// memory-mapped) CSR arrays; the first mutation calls this so the
    /// mutable API sees the full graph. No-op for ordinary stores.
    pub(crate) fn hydrate_builder(&mut self) {
        if self.hydrated {
            return;
        }
        // An unhydrated store always carries a CSR index; a store without
        // one simply has nothing to hydrate from.
        let Some(csr) = self.csr.as_ref() else {
            self.hydrated = true;
            return;
        };
        while self.adjacency.len() < csr.out.len() {
            self.adjacency.push(Adjacency::default());
        }
        for (label, (out_layer, in_layer)) in csr.out.iter().zip(&csr.inc).enumerate() {
            let adj = &mut self.adjacency[label];
            for node in out_layer.occupied_nodes() {
                adj.out.insert(node, out_layer.neighbours(node).to_vec());
            }
            for node in in_layer.occupied_nodes() {
                adj.inc.insert(node, in_layer.neighbours(node).to_vec());
            }
            adj.edge_count = out_layer.len();
        }
        for node in csr.out_all.occupied_nodes() {
            self.out_all
                .insert(node, csr.out_all.entries(node).to_vec());
        }
        for node in csr.in_all.occupied_nodes() {
            self.in_all.insert(node, csr.in_all.entries(node).to_vec());
        }
        self.hydrated = true;
    }

    // ------------------------------------------------------------------
    // Labels
    // ------------------------------------------------------------------

    /// The id of the distinguished `type` label.
    pub fn type_label(&self) -> LabelId {
        self.type_label
    }

    /// Interns an edge label, creating its adjacency index if new.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        let id = self.labels.intern(name);
        while self.adjacency.len() <= id.index() {
            self.adjacency.push(Adjacency::default());
        }
        id
    }

    /// Looks up an existing edge label by name.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name)
    }

    /// The string name of an edge label.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id)
    }

    /// Number of distinct edge labels (including `type`).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over all edge labels in id order.
    pub fn labels(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.labels.iter()
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Materialises the eager node index (and owned label storage) before a
    /// node mutation; no-op except on snapshot-loaded stores.
    fn ensure_node_index(&mut self) {
        if !self.node_index_deferred {
            return;
        }
        // Reuse the lazily built index if a lookup already created it.
        let index = match self.lazy_node_index.take() {
            Some(index) => index,
            None => build_node_index(&self.node_labels),
        };
        self.node_index = index;
        self.node_index_deferred = false;
    }

    /// Adds a node with the given (unique) string label, or returns the
    /// existing node if one with this label is already present.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        self.ensure_node_index();
        if let Some(&id) = self.node_index.get(label) {
            return id;
        }
        let id = NodeId(self.node_labels.len() as u32);
        self.node_labels.make_owned().push(label.to_owned());
        self.node_index.insert(label.to_owned(), id);
        id
    }

    /// Adds a node, failing if a node with the same label already exists.
    pub fn try_add_node(&mut self, label: &str) -> Result<NodeId, GraphError> {
        self.ensure_node_index();
        if self.node_index.contains_key(label) {
            return Err(GraphError::DuplicateNodeLabel(label.to_owned()));
        }
        Ok(self.add_node(label))
    }

    /// Looks up a node by its string label (the paper's indexed node
    /// attribute).
    ///
    /// On a snapshot-loaded store the hash index is built on the first call
    /// (thread-safe; later calls share it) — opening an image never pays for
    /// an index the workload might not use.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        if self.node_index_deferred {
            return self
                .lazy_node_index
                .get_or_init(|| build_node_index(&self.node_labels))
                .get(label)
                .copied();
        }
        self.node_index.get(label).copied()
    }

    /// The string label of `node`.
    ///
    /// # Panics
    /// Panics if `node` does not belong to this graph.
    pub fn node_label(&self, node: NodeId) -> &str {
        self.node_labels.get(node.index())
    }

    /// Whether `node` belongs to this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_labels.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Iterates over all node ids in increasing order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_labels.len() as u32).map(NodeId)
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    /// Adds a directed edge `source --label--> target`. Parallel edges with
    /// the same label are deduplicated (the data model is a set of triples).
    ///
    /// Drops the frozen CSR index, if any; returns `true` if the edge was
    /// new.
    pub fn add_edge(&mut self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        debug_assert!(self.contains_node(source) && self.contains_node(target));
        // A snapshot-loaded store materialises its builder maps before the
        // first write, so dropping the CSR below cannot lose edges.
        self.hydrate_builder();
        debug_assert!(label.index() < self.adjacency.len());
        let adj = &mut self.adjacency[label.index()];
        let out = adj.out.entry(source).or_default();
        if out.contains(&target) {
            return false;
        }
        self.csr = None;
        self.label_stats = OnceLock::new();
        out.push(target);
        adj.inc.entry(target).or_default().push(source);
        adj.edge_count += 1;
        self.out_all
            .entry(source)
            .or_default()
            .push((label, target));
        self.in_all.entry(target).or_default().push((label, source));
        self.edge_count += 1;
        true
    }

    /// Convenience: adds an edge between nodes given by string labels,
    /// creating nodes and the edge label as needed.
    pub fn add_triple(&mut self, source: &str, label: &str, target: &str) -> bool {
        let s = self.add_node(source);
        let l = self.intern_label(label);
        let t = self.add_node(target);
        self.add_edge(s, l, t)
    }

    /// Whether the edge `source --label--> target` exists.
    pub fn has_edge(&self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        self.neighbors(source, label, Direction::Outgoing)
            .contains(&target)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of edges with a given label.
    pub fn edge_count_for_label(&self, label: LabelId) -> usize {
        if let Some(csr) = &self.csr {
            // Every labelled edge appears exactly once in its outgoing layer;
            // this also serves snapshot-loaded stores with empty builders.
            return csr.layer(label, true).map_or(0, CsrLayer::len);
        }
        self.adjacency
            .get(label.index())
            .map_or(0, |adj| adj.edge_count)
    }

    /// Iterates over every edge in the graph.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        // A frozen store iterates its CSR (the only complete source on a
        // snapshot-loaded store); otherwise the builder maps serve.
        let csr_edges = self.csr.as_ref().into_iter().flat_map(|csr| {
            csr.out_all.occupied_nodes().flat_map(move |source| {
                csr.out_all
                    .entries(source)
                    .iter()
                    .map(move |&(label, target)| EdgeRef {
                        source,
                        label,
                        target,
                    })
            })
        });
        // `take(0)` never polls the map iterator, so a frozen store does not
        // walk its (possibly fully populated) builder map just to reject it.
        let builder_cap = if self.csr.is_some() { 0 } else { usize::MAX };
        let builder_edges = self
            .out_all
            .iter()
            .take(builder_cap)
            .flat_map(|(&source, targets)| {
                targets.iter().map(move |&(label, target)| EdgeRef {
                    source,
                    label,
                    target,
                })
            });
        csr_edges.chain(builder_edges)
    }

    // ------------------------------------------------------------------
    // Neighbourhood access (the Sparksee surface)
    // ------------------------------------------------------------------

    /// Nodes connected to `node` by an edge labelled `label`, following the
    /// given direction — the paper's `Neighbors(n, t, dir)`.
    ///
    /// On a frozen store this is two array reads into the CSR index; on an
    /// unfrozen store it falls back to the builder's hash maps. Either way
    /// the result is a borrowed slice — never a copy.
    #[inline]
    pub fn neighbors(&self, node: NodeId, label: LabelId, dir: Direction) -> &[NodeId] {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, dir == Direction::Outgoing)
                .map_or(&[][..], |layer| layer.neighbours(node));
        }
        self.adjacency
            .get(label.index())
            .and_then(|adj| match dir {
                Direction::Outgoing => adj.out.get(&node),
                Direction::Incoming => adj.inc.get(&node),
            })
            .map_or(&[][..], Vec::as_slice)
    }

    /// Neighbours of `node` over *any* label (including `type`), in the given
    /// direction, with the connecting label — used by wildcard transitions.
    ///
    /// Returns a borrowed slice in both the frozen and builder states.
    #[inline]
    pub fn neighbors_any(&self, node: NodeId, dir: Direction) -> &[(LabelId, NodeId)] {
        if let Some(csr) = &self.csr {
            return match dir {
                Direction::Outgoing => csr.out_all.entries(node),
                Direction::Incoming => csr.in_all.entries(node),
            };
        }
        let map = match dir {
            Direction::Outgoing => &self.out_all,
            Direction::Incoming => &self.in_all,
        };
        map.get(&node).map_or(&[][..], Vec::as_slice)
    }

    /// All nodes that are the *target* of an edge labelled `label`
    /// (the paper's `Heads`).
    pub fn heads(&self, label: LabelId) -> NodeBitmap {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, false)
                .map(|layer| layer.occupied_nodes().collect())
                .unwrap_or_default();
        }
        self.adjacency
            .get(label.index())
            .map(|adj| adj.inc.keys().copied().collect())
            .unwrap_or_default()
    }

    /// All nodes that are the *source* of an edge labelled `label`
    /// (the paper's `Tails`).
    pub fn tails(&self, label: LabelId) -> NodeBitmap {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, true)
                .map(|layer| layer.occupied_nodes().collect())
                .unwrap_or_default();
        }
        self.adjacency
            .get(label.index())
            .map(|adj| adj.out.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Union of [`GraphStore::heads`] and [`GraphStore::tails`]
    /// (the paper's `TailsAndHeads`).
    pub fn tails_and_heads(&self, label: LabelId) -> NodeBitmap {
        let mut t = self.tails(label);
        t.union_with(&self.heads(label));
        t
    }

    /// All nodes incident to at least one edge, in either direction.
    pub fn nodes_with_any_edge(&self) -> NodeBitmap {
        if let Some(csr) = &self.csr {
            let mut set: NodeBitmap = csr.out_all.occupied_nodes().collect();
            set.extend(csr.in_all.occupied_nodes());
            return set;
        }
        let mut set: NodeBitmap = self.out_all.keys().copied().collect();
        set.extend(self.in_all.keys().copied());
        set
    }

    /// Out-degree of `node` restricted to `label`, or over all labels if
    /// `label` is `None`.
    pub fn out_degree(&self, node: NodeId, label: Option<LabelId>) -> usize {
        match label {
            Some(l) => self.neighbors(node, l, Direction::Outgoing).len(),
            None => self.neighbors_any(node, Direction::Outgoing).len(),
        }
    }

    /// In-degree of `node` restricted to `label`, or over all labels if
    /// `label` is `None`.
    pub fn in_degree(&self, node: NodeId, label: Option<LabelId>) -> usize {
        match label {
            Some(l) => self.neighbors(node, l, Direction::Incoming).len(),
            None => self.neighbors_any(node, Direction::Incoming).len(),
        }
    }

    /// Total degree (in + out) of `node` over all labels.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node, None) + self.in_degree(node, None)
    }

    // ------------------------------------------------------------------
    // Cardinality statistics
    // ------------------------------------------------------------------

    /// Per-label edge and distinct-endpoint counts, computed on first use
    /// and cached (edge mutations invalidate the cache). Snapshot-loaded
    /// stores whose image carried a stats section start pre-populated;
    /// pre-stats images recompute here lazily.
    pub fn label_stats(&self) -> &LabelStats {
        self.label_stats.get_or_init(|| LabelStats::compute(self))
    }

    /// Number of distinct source nodes of edges labelled `label`.
    pub(crate) fn distinct_tails(&self, label: LabelId) -> usize {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, true)
                .map_or(0, |layer| layer.occupied_nodes().count());
        }
        self.adjacency
            .get(label.index())
            .map_or(0, |adj| adj.out.len())
    }

    /// Number of distinct target nodes of edges labelled `label`.
    pub(crate) fn distinct_heads(&self, label: LabelId) -> usize {
        if let Some(csr) = &self.csr {
            return csr
                .layer(label, false)
                .map_or(0, |layer| layer.occupied_nodes().count());
        }
        self.adjacency
            .get(label.index())
            .map_or(0, |adj| adj.inc.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        g.add_triple("b", "knows", "c");
        g.add_triple("a", "likes", "c");
        g.add_triple("a", "type", "Person");
        g.add_triple("b", "type", "Person");
        g
    }

    /// Runs `check` against both the builder and the frozen representation.
    fn both_states(mut g: GraphStore, check: impl Fn(&GraphStore)) {
        assert!(!g.is_frozen());
        check(&g);
        g.freeze();
        assert!(g.is_frozen());
        check(&g);
    }

    #[test]
    fn nodes_are_unique_by_label() {
        let mut g = GraphStore::new();
        let a1 = g.add_node("a");
        let a2 = g.add_node("a");
        assert_eq!(a1, a2);
        assert_eq!(g.node_count(), 1);
        assert!(g.try_add_node("a").is_err());
        assert!(g.try_add_node("b").is_ok());
    }

    #[test]
    fn type_label_is_preinterned() {
        let g = GraphStore::new();
        assert_eq!(g.label_id("type"), Some(g.type_label()));
        assert_eq!(g.label_name(g.type_label()), "type");
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut g = GraphStore::new();
        assert!(g.add_triple("a", "knows", "b"));
        assert!(!g.add_triple("a", "knows", "b"));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_by_direction() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let b = g.node_by_label("b").unwrap();
            let c = g.node_by_label("c").unwrap();
            let knows = g.label_id("knows").unwrap();
            assert_eq!(g.neighbors(a, knows, Direction::Outgoing), &[b]);
            assert_eq!(g.neighbors(b, knows, Direction::Incoming), &[a]);
            assert_eq!(g.neighbors(c, knows, Direction::Incoming), &[b]);
            assert!(g.neighbors(c, knows, Direction::Outgoing).is_empty());
        });
    }

    #[test]
    fn neighbors_any_covers_all_labels_and_type() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let out = g.neighbors_any(a, Direction::Outgoing);
            assert_eq!(out.len(), 3); // knows->b, likes->c, type->Person
            let person = g.node_by_label("Person").unwrap();
            let incoming = g.neighbors_any(person, Direction::Incoming);
            assert_eq!(incoming.len(), 2);
        });
    }

    #[test]
    fn heads_tails_and_union() {
        both_states(sample(), |g| {
            let knows = g.label_id("knows").unwrap();
            let heads = g.heads(knows);
            let tails = g.tails(knows);
            assert_eq!(heads.len(), 2); // b, c
            assert_eq!(tails.len(), 2); // a, b
            assert_eq!(g.tails_and_heads(knows).len(), 3); // a, b, c
        });
    }

    #[test]
    fn degrees() {
        both_states(sample(), |g| {
            let a = g.node_by_label("a").unwrap();
            let knows = g.label_id("knows").unwrap();
            assert_eq!(g.out_degree(a, None), 3);
            assert_eq!(g.out_degree(a, Some(knows)), 1);
            assert_eq!(g.in_degree(a, None), 0);
            assert_eq!(g.degree(a), 3);
        });
    }

    #[test]
    fn edge_iteration_and_counts() {
        both_states(sample(), |g| {
            assert_eq!(g.edges().count(), g.edge_count());
            let type_l = g.type_label();
            assert_eq!(g.edge_count_for_label(type_l), 2);
            assert!(g.has_edge(
                g.node_by_label("a").unwrap(),
                g.label_id("likes").unwrap(),
                g.node_by_label("c").unwrap()
            ));
        });
    }

    #[test]
    fn nodes_with_any_edge_excludes_isolated() {
        let mut g = sample();
        g.add_node("isolated");
        both_states(g, |g| {
            let incident = g.nodes_with_any_edge();
            assert!(!incident.contains(g.node_by_label("isolated").unwrap()));
            assert_eq!(incident.len(), g.node_count() - 1);
        });
    }

    #[test]
    fn freeze_is_idempotent_and_preserves_order() {
        let mut g = sample();
        let a = g.node_by_label("a").unwrap();
        let knows = g.label_id("knows").unwrap();
        let before = g.neighbors(a, knows, Direction::Outgoing).to_vec();
        g.freeze();
        g.freeze();
        assert_eq!(g.neighbors(a, knows, Direction::Outgoing), &before[..]);
    }

    #[test]
    fn mutation_after_freeze_drops_and_rebuilds_the_index() {
        let mut g = sample();
        g.freeze();
        assert!(g.is_frozen());
        g.add_triple("c", "knows", "d");
        assert!(
            !g.is_frozen(),
            "adding an edge must invalidate the CSR index"
        );
        let c = g.node_by_label("c").unwrap();
        let d = g.node_by_label("d").unwrap();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.neighbors(c, knows, Direction::Outgoing), &[d]);
        g.freeze();
        assert_eq!(g.neighbors(c, knows, Direction::Outgoing), &[d]);
    }

    #[test]
    fn nodes_and_labels_added_after_freeze_read_as_empty() {
        let mut g = sample();
        g.freeze();
        let lonely = g.add_node("lonely");
        let fresh = g.intern_label("fresh");
        assert!(g.is_frozen(), "adding a node or label does not invalidate");
        assert!(g.neighbors(lonely, fresh, Direction::Outgoing).is_empty());
        assert!(g.neighbors_any(lonely, Direction::Outgoing).is_empty());
        let a = g.node_by_label("a").unwrap();
        assert!(g.neighbors(a, fresh, Direction::Outgoing).is_empty());
    }
}
