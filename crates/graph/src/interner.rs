//! String interner for edge labels.

use std::collections::HashMap;

use crate::ids::LabelId;

/// Bidirectional mapping between edge-label strings and dense [`LabelId`]s.
///
/// The evaluator works exclusively with `LabelId`s; strings only appear at
/// the query-parsing and result-presentation boundaries.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    by_name: HashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("knows");
        let b = i.intern("knows");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn intern_assigns_dense_ids() {
        let mut i = LabelInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!((a, b, c), (LabelId(0), LabelId(1), LabelId(2)));
        assert_eq!(i.name(b), "b");
        assert_eq!(i.get("c"), Some(c));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = LabelInterner::new();
        i.intern("x");
        i.intern("y");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(collected, vec!["x", "y"]);
    }

    #[test]
    fn empty_interner() {
        let i = LabelInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
