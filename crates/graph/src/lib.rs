//! # omega-graph
//!
//! An in-memory, labelled, directed multigraph store. It plays the role that
//! Sparksee plays in the Omega system of the paper *Implementing Flexible
//! Operators for Regular Path Queries* (EDBT 2015): the physical storage and
//! index layer that the query evaluator talks to.
//!
//! The store exposes the same access surface the paper relies on:
//!
//! * every node has a unique string label, indexed (`GraphStore::node_by_label`),
//! * edges are typed by an interned label (`LabelId`) and indexed per
//!   `(label, direction)` so that [`GraphStore::neighbors`] is an indexed
//!   lookup (the paper's `Neighbors`),
//! * [`GraphStore::heads`] / [`GraphStore::tails`] /
//!   [`GraphStore::tails_and_heads`] return bitmap node sets, mirroring
//!   Sparksee's bitmap-vector indexes and supporting cheap set operations,
//! * a generic "any label" adjacency supports the wildcard `*` transitions of
//!   APPROX automata (the paper's synthetic `edge` type).
//!
//! The distinguished edge label `type` (class membership) is always present
//! and can be obtained through [`GraphStore::type_label`].
//!
//! ## Two representations: builder and frozen CSR
//!
//! The store is built through a mutable, hash-map-backed API
//! ([`GraphStore::add_node`] / [`GraphStore::add_edge`] /
//! [`GraphStore::add_triple`]) and then — once loading is complete —
//! compiled by [`GraphStore::freeze`] into compressed-sparse-row (CSR)
//! indexes: per `(label, direction)` offset/neighbour arrays, plus CSR
//! layouts of the mixed-label `out_all` / `in_all` views that serve the
//! wildcard `*` transitions. A frozen [`GraphStore::neighbors`] lookup is
//! two array reads returning a borrowed `&[NodeId]` slice: no hashing, no
//! allocation, and neighbour lists packed contiguously for cache locality.
//! All reads also work on an unfrozen store (served from the builder maps),
//! and adding an edge to a frozen store transparently drops the index.
//! The [`crate::csr`] module documents the layout.
//!
//! A frozen store can additionally be persisted as a single binary image and
//! re-opened with its CSR arrays memory-mapped in place — see
//! [`crate::snapshot`]. Loaded stores serve every read from the mapping and
//! transparently rehydrate their builder maps on the first mutation.
//!
//! ```
//! use omega_graph::{GraphStore, Direction};
//!
//! let mut g = GraphStore::new();
//! let alice = g.add_node("Alice");
//! let bob = g.add_node("Bob");
//! let knows = g.intern_label("knows");
//! g.add_edge(alice, knows, bob);
//!
//! assert_eq!(g.neighbors(alice, knows, Direction::Outgoing), &[bob]);
//! assert_eq!(g.node_label(bob), "Bob");
//! ```

pub mod bitmap;
pub mod csr;
pub mod error;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod interner;
pub mod io;
pub mod overlay;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use bitmap::NodeBitmap;
pub use error::GraphError;
pub use graph::{EdgeRef, GraphStore};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{Direction, LabelId, NodeId};
pub use interner::LabelInterner;
pub use overlay::{DeltaReport, GraphDelta};
pub use snapshot::SnapshotError;
pub use stats::{GraphStats, LabelEntry, LabelStats};
pub use wal::{
    FsyncPolicy, Wal, WalAppend, WalConfig, WalError, WalFailure, WalRecord, WalRecovery,
};
