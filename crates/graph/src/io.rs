//! Plain-text triple serialisation for graphs.
//!
//! The format is one edge per line, tab-separated:
//!
//! ```text
//! <source label> \t <edge label> \t <target label>
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Node labels may
//! contain spaces but not tabs. This mirrors the flat fact files the paper's
//! YAGO import consumed, and is the exchange format used by the data
//! generators and the experiment harness.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::graph::GraphStore;

/// Writes `graph` to `writer` in the triple text format.
pub fn write_triples<W: Write>(graph: &GraphStore, writer: &mut W) -> Result<(), GraphError> {
    for edge in graph.edges() {
        writeln!(
            writer,
            "{}\t{}\t{}",
            graph.node_label(edge.source),
            graph.label_name(edge.label),
            graph.node_label(edge.target)
        )?;
    }
    Ok(())
}

/// Reads a graph from `reader` in the triple text format.
pub fn read_triples<R: Read>(reader: R) -> Result<GraphStore, GraphError> {
    let mut graph = GraphStore::new();
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (s, p, o) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(p), Some(o)) if parts.next().is_none() => (s, p, o),
            _ => {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: format!("expected 3 tab-separated fields, got {trimmed:?}"),
                })
            }
        };
        graph.add_triple(s.trim(), p.trim(), o.trim());
    }
    Ok(graph)
}

/// Writes `graph` to the file at `path`.
pub fn save_to_file<P: AsRef<Path>>(graph: &GraphStore, path: P) -> Result<(), GraphError> {
    let mut file = std::fs::File::create(path)?;
    write_triples(graph, &mut file)
}

/// Reads a graph from the file at `path`.
pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<GraphStore, GraphError> {
    let file = std::fs::File::open(path)?;
    read_triples(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut g = GraphStore::new();
        g.add_triple("Alice Smith", "knows", "Bob");
        g.add_triple("Bob", "type", "Person");
        let mut buf = Vec::new();
        write_triples(&g, &mut buf).unwrap();
        let g2 = read_triples(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let alice = g2.node_by_label("Alice Smith").unwrap();
        let knows = g2.label_id("knows").unwrap();
        let bob = g2.node_by_label("Bob").unwrap();
        assert!(g2.has_edge(alice, knows, bob));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\na\tp\tb\n";
        let g = read_triples(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "a\tp\tb\nbroken line\n";
        let err = read_triples(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn too_many_fields_is_an_error() {
        let text = "a\tp\tb\tc\n";
        assert!(read_triples(text.as_bytes()).is_err());
    }
}
