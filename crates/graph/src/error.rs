//! Error type for the graph store.

use std::fmt;

/// Errors produced by [`crate::GraphStore`] operations and graph IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node with the given label already exists.
    DuplicateNodeLabel(String),
    /// No node with the given label exists.
    UnknownNodeLabel(String),
    /// A node id is out of range for this store.
    UnknownNode(u32),
    /// A label id is out of range for this store.
    UnknownLabel(u32),
    /// The operation requires a frozen (CSR-indexed) store.
    NotFrozen,
    /// A serialised graph could not be parsed.
    Parse { line: usize, message: String },
    /// An IO error occurred while reading or writing a graph file.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNodeLabel(l) => write!(f, "duplicate node label: {l:?}"),
            GraphError::UnknownNodeLabel(l) => write!(f, "unknown node label: {l:?}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node id: {id}"),
            GraphError::UnknownLabel(id) => write!(f, "unknown label id: {id}"),
            GraphError::NotFrozen => {
                write!(f, "operation requires a frozen store (call freeze first)")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}
