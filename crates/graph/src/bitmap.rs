//! Dense bitmap node sets.
//!
//! Sparksee stores its indexes as "maps plus associated bitmap vectors"
//! ([Martínez-Bazán et al., IDEAS 2012]); the Omega implementation relies on
//! "Sparksee set operations ... to maintain a distinct set of nodes" when
//! seeding evaluation (Section 3.3 of the paper). [`NodeBitmap`] is the
//! equivalent structure here: a dense bitset over node ids with the usual set
//! algebra.

use crate::ids::NodeId;

const WORD_BITS: usize = 64;

/// A set of [`NodeId`]s backed by a dense bitmap.
#[derive(Clone, Default)]
pub struct NodeBitmap {
    words: Vec<u64>,
    len: usize,
}

impl PartialEq for NodeBitmap {
    fn eq(&self, other: &Self) -> bool {
        // Capacities may differ (trailing zero words are not significant).
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for NodeBitmap {}

impl NodeBitmap {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with capacity for nodes `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeBitmap {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            len: 0,
        }
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `node`, returning `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `node`, returning `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &NodeBitmap) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        self.recount();
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &NodeBitmap) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
        self.recount();
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeBitmap) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
        self.recount();
    }

    /// Returns the union of `self` and `other`.
    pub fn union(&self, other: &NodeBitmap) -> NodeBitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the intersection of `self` and `other`.
    pub fn intersection(&self, other: &NodeBitmap) -> NodeBitmap {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &NodeBitmap) -> NodeBitmap {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(NodeId((wi * WORD_BITS + bit) as u32))
                }
            })
        })
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl std::fmt::Debug for NodeBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeBitmap {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut set = NodeBitmap::new();
        for n in iter {
            set.insert(n);
        }
        set
    }
}

impl Extend<NodeId> for NodeBitmap {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeBitmap {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeBitmap::new();
        assert!(s.insert(NodeId(5)));
        assert!(!s.insert(NodeId(5)));
        assert!(s.contains(NodeId(5)));
        assert!(!s.contains(NodeId(6)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId(5)));
        assert!(!s.remove(NodeId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = set(&[100, 3, 64, 65, 0]);
        let got: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 100]);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 2, 3, 70]);
        let b = set(&[2, 3, 4, 200]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 70, 200]));
        assert_eq!(a.intersection(&b), set(&[2, 3]));
        assert_eq!(a.difference(&b), set(&[1, 70]));
        assert_eq!(b.difference(&a), set(&[4, 200]));
    }

    #[test]
    fn set_operations_handle_different_capacities() {
        let small = set(&[1]);
        let large = set(&[1, 1000]);
        assert_eq!(small.union(&large).len(), 2);
        assert_eq!(large.intersection(&small), set(&[1]));
        assert_eq!(small.difference(&large), NodeBitmap::new());
    }

    #[test]
    fn clear_resets() {
        let mut s = set(&[1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let s = NodeBitmap::with_capacity(1000);
        assert!(s.is_empty());
        assert!(!s.contains(NodeId(999)));
    }
}
