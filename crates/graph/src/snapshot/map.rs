//! Zero-copy views over the memory-mapped snapshot.
//!
//! A [`MappedSlice`] is a byte range of the map that keeps the mapping alive
//! through a shared `Arc`; the typed accessors reinterpret those bytes as
//! little-endian integer arrays in place. Section payloads start at 8-byte
//! aligned file offsets and the map base is page-aligned (the memmap2 shim's
//! fallback buffer is also 8-byte aligned), so the casts are alignment-sound
//! by construction — the accessors still re-check at runtime and report a
//! typed error instead of invoking undefined behaviour on a malformed file.

use std::sync::Arc;

use crate::ids::{LabelId, NodeId};
use crate::snapshot::error::SnapshotError;

/// A byte range of a snapshot map, holding the map alive.
#[derive(Clone)]
pub struct MappedSlice {
    map: Arc<memmap2::Mmap>,
    offset: usize,
    len: usize,
}

impl MappedSlice {
    /// A view of `map[offset .. offset + len]`. Bounds were checked by the
    /// section-table parser.
    pub(crate) fn new(map: Arc<memmap2::Mmap>, offset: usize, len: usize) -> MappedSlice {
        debug_assert!(offset + len <= map.len());
        MappedSlice { map, offset, len }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.map[self.offset..self.offset + self.len]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a `u32` array (zero-copy).
    pub fn as_u32s(&self) -> Result<&[u32], SnapshotError> {
        cast_words(self.bytes(), "u32")
    }

    /// The bytes as a `u64` array (zero-copy).
    pub fn as_u64s(&self) -> Result<&[u64], SnapshotError> {
        cast_words(self.bytes(), "u64")
    }

    /// The bytes as a [`NodeId`] array (zero-copy; `NodeId` is
    /// `repr(transparent)` over `u32`).
    pub fn as_node_ids(&self) -> Result<&[NodeId], SnapshotError> {
        let words = self.as_u32s()?;
        // Safety: NodeId is repr(transparent) over u32.
        Ok(unsafe { std::slice::from_raw_parts(words.as_ptr() as *const NodeId, words.len()) })
    }
}

impl std::fmt::Debug for MappedSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSlice")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// Generic aligned word cast with typed failure.
fn cast_words<'a, T>(bytes: &'a [u8], what: &str) -> Result<&'a [T], SnapshotError> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(SnapshotError::malformed(format!(
            "section of {} bytes is not a whole number of {what} words",
            bytes.len()
        )));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(SnapshotError::malformed(format!(
            "section is not aligned for {what} access"
        )));
    }
    // Safety: alignment and length verified; u32/u64 accept all bit patterns.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) })
}

/// Whether `(LabelId, NodeId)` tuples can alias interleaved `[label, node]`
/// `u32` pairs in memory.
///
/// Tuples are `repr(Rust)`, whose field order is formally unspecified, so
/// the loader probes the actual layout of this build once instead of
/// assuming it: both fields are `u32` (size 8, no padding), and the probe
/// checks that the label is stored first. When the probe fails the loader
/// falls back to an owned copy of the mixed adjacency — correct either way,
/// zero-copy when possible (every current rustc lays this tuple label-first).
pub(crate) fn pair_layout_is_label_first() -> bool {
    if std::mem::size_of::<(LabelId, NodeId)>() != 8
        || std::mem::align_of::<(LabelId, NodeId)>() != 4
    {
        return false;
    }
    let probe: [(LabelId, NodeId); 2] = [
        (LabelId(0x0102_0304), NodeId(0x0506_0708)),
        (LabelId(0x090A_0B0C), NodeId(0x0D0E_0F10)),
    ];
    let bytes = unsafe { std::slice::from_raw_parts(probe.as_ptr() as *const u8, 16) };
    let mut expected = Vec::with_capacity(16);
    for word in [0x0102_0304u32, 0x0506_0708, 0x090A_0B0C, 0x0D0E_0F10] {
        expected.extend_from_slice(&word.to_ne_bytes());
    }
    bytes == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_layout_probe_passes_on_this_build() {
        // If this ever fails the loader silently degrades to owned copies of
        // the mixed adjacency; the assertion documents which world we're in.
        assert!(pair_layout_is_label_first());
    }

    #[test]
    fn cast_words_rejects_ragged_lengths() {
        let bytes = [0u8; 10];
        assert!(cast_words::<u32>(&bytes[..8], "u32").is_ok());
        assert!(cast_words::<u32>(&bytes, "u32").is_err());
    }
}
