//! Snapshot persistence: a frozen graph serialised to one versioned binary
//! image, re-opened by memory-mapping with zero-copy CSR views.
//!
//! The engine's frozen state — per-`(label, direction)` CSR offset and
//! neighbour arrays, the node/label string dictionaries, and (one layer up)
//! the ontology hierarchies with their interned closures — is written once
//! with [`SnapshotWriter`] and opened in milliseconds with
//! [`SnapshotReader`]: the big integer arrays are *not* parsed or copied,
//! they are the file, mapped into memory and wrapped in borrowed storage
//! enums inside [`crate::csr`]. This is the build-once / map-many design of
//! mmap-backed stores: startup cost becomes page-cache warm-up, and the
//! resident set is bounded by the pages a workload actually touches rather
//! than the whole graph.
//!
//! * [`mod@format`] — the container: magic, version, section table,
//!   checksums.
//! * [`map`] — zero-copy typed views over the mapping.
//! * [`image`] — graph encode/decode ([`write_graph_sections`] /
//!   [`read_graph`]).
//! * [`error`] — the typed [`SnapshotError`] (bad magic, version mismatch,
//!   endianness, truncation, checksum failure, malformed structure).
//!
//! The ontology image lives in `omega_ontology::snapshot` (it shares this
//! container via [`SectionKind::Ontology`]), and `omega_core::Database`
//! exposes the user-facing `save_snapshot` / `open_snapshot` pair.

pub mod error;
pub mod format;
pub mod image;
pub mod map;

pub use error::SnapshotError;
pub use format::{
    checksum, dir_syncs, push_u32, push_u64, u32_payload, u64_payload, SectionEntry, SectionId,
    SectionKind, SnapshotReader, SnapshotWriter, FORMAT_VERSION, MAGIC,
};
pub use image::{read_graph, write_graph_sections, write_graph_sections_without_stats};
pub use map::MappedSlice;
