//! Typed errors for the snapshot subsystem.

use std::fmt;

use crate::snapshot::format::SectionId;

/// Errors raised while writing, opening or decoding a snapshot image.
///
/// Every way a snapshot file can be unusable maps to a distinct variant, so
/// callers (and tests) can tell a truncated download from a bit flip from a
/// file written by a newer engine — none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An IO error occurred while reading or writing the image.
    Io(String),
    /// The file does not start with the snapshot magic — it is not a
    /// snapshot at all (or the first bytes were destroyed).
    BadMagic {
        /// The bytes actually found where the magic should be.
        found: [u8; 8],
    },
    /// The file is a snapshot but its format version is not supported by
    /// this build.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file stores multi-byte integers in a byte order this host cannot
    /// map zero-copy (snapshots are little-endian).
    ForeignEndianness,
    /// The file is shorter than its own header or section table claims.
    Truncated {
        /// Bytes the header/section table requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// The corrupted section.
        section: SectionId,
    },
    /// A required section is missing from the image.
    MissingSection {
        /// The absent section.
        section: SectionId,
    },
    /// The section table or a section payload is structurally invalid
    /// (impossible counts, misaligned offsets, inconsistent lengths).
    Malformed {
        /// Human-readable description.
        message: String,
    },
}

impl SnapshotError {
    /// Convenience constructor for [`SnapshotError::Malformed`].
    pub fn malformed(message: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            message: message.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic bytes {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            SnapshotError::ForeignEndianness => {
                write!(f, "snapshot byte order does not match this host")
            }
            SnapshotError::Truncated { expected, actual } => write!(
                f,
                "snapshot is truncated: needs {expected} bytes, file has {actual}"
            ),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            SnapshotError::Malformed { message } => write!(f, "malformed snapshot: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err.to_string())
    }
}
