//! The on-disk snapshot container: magic, version, section table, checksums.
//!
//! A snapshot is a single file holding every array the frozen engine needs,
//! laid out so the loader can hand out zero-copy views over a memory map:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "OMEGSNAP"
//! 8       4     format version (u32, little-endian)
//! 12      4     endianness marker 0x0A0B0C0D (u32, little-endian)
//! 16      8     section count (u64, little-endian)
//! 24      32*k  section table: kind u32, param u32, offset u64,
//!               length u64, checksum u64  (one row per section)
//! …             section payloads, each starting at an 8-byte-aligned
//!               offset, zero-padded in between
//! ```
//!
//! All integers are little-endian. Integer-array sections are sequences of
//! little-endian `u32`/`u64` words starting at an 8-byte-aligned file
//! offset, which (with the map base being page-aligned) makes
//! reinterpreting the mapped bytes as `&[u32]`/`&[u64]` sound on
//! little-endian hosts. Each section carries an FNV-1a 64-bit checksum of
//! its payload bytes, verified on open; the header and section table are
//! validated structurally (magic, version, endianness marker, kind tags,
//! alignment and bounds of every row).

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::snapshot::error::SnapshotError;
use crate::snapshot::map::MappedSlice;

/// Count of parent-directory fsyncs performed after snapshot renames. A
/// test probe: regression coverage for the crash window where a rename is
/// visible but not yet durable.
static DIR_SYNCS: AtomicU64 = AtomicU64::new(0);

/// Number of parent-directory fsyncs performed by [`SnapshotWriter::write_to`]
/// since process start.
#[doc(hidden)]
pub fn dir_syncs() -> u64 {
    DIR_SYNCS.load(Ordering::Relaxed)
}

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"OMEGSNAP";
/// Format version written and understood by this build.
pub const FORMAT_VERSION: u32 = 1;
/// Marker word proving the file (and, for zero-copy loads, the host) is
/// little-endian.
pub const ENDIAN_MARKER: u32 = 0x0A0B_0C0D;
/// Size of one section-table row in bytes.
const TABLE_ROW: usize = 32;
/// Fixed header size preceding the section table.
const HEADER: usize = 24;

/// What a section holds. The `param` of a [`SectionId`] qualifies the kind
/// (e.g. which label and direction a CSR array belongs to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SectionKind {
    /// Graph-wide counts: node count, label count, edge count, `type` label.
    Meta,
    /// `u64[node_count + 1]` byte offsets into [`SectionKind::NodeLabelBytes`].
    NodeLabelOffsets,
    /// Concatenated UTF-8 node label strings.
    NodeLabelBytes,
    /// `u64[label_count + 1]` byte offsets into [`SectionKind::EdgeLabelBytes`].
    EdgeLabelOffsets,
    /// Concatenated UTF-8 edge label strings.
    EdgeLabelBytes,
    /// One `(label, direction)` CSR offset array, `u32[node_count + 1]`;
    /// `param = label * 2 + direction` (0 = outgoing, 1 = incoming).
    CsrOffsets,
    /// The matching CSR neighbour array, `u32[]`.
    CsrTargets,
    /// Mixed-label CSR offset array, `u32[node_count + 1]`; `param` is the
    /// direction.
    MixedOffsets,
    /// Mixed-label CSR entries, interleaved `(label, node)` `u32` pairs.
    MixedEntries,
    /// The ontology image: hierarchies, domain/range, interned closures.
    Ontology,
    /// Per-label cardinalities (`u64` words: label count, then
    /// `(edges, distinct_tails, distinct_heads)` per label). Optional —
    /// images written before this section existed open fine and recompute
    /// the statistics lazily.
    LabelStats,
}

impl SectionKind {
    /// The wire tag of this kind.
    pub fn tag(self) -> u32 {
        match self {
            SectionKind::Meta => 0,
            SectionKind::NodeLabelOffsets => 1,
            SectionKind::NodeLabelBytes => 2,
            SectionKind::EdgeLabelOffsets => 3,
            SectionKind::EdgeLabelBytes => 4,
            SectionKind::CsrOffsets => 5,
            SectionKind::CsrTargets => 6,
            SectionKind::MixedOffsets => 7,
            SectionKind::MixedEntries => 8,
            SectionKind::Ontology => 9,
            SectionKind::LabelStats => 10,
        }
    }

    /// The kind for a wire tag.
    pub fn from_tag(tag: u32) -> Option<SectionKind> {
        Some(match tag {
            0 => SectionKind::Meta,
            1 => SectionKind::NodeLabelOffsets,
            2 => SectionKind::NodeLabelBytes,
            3 => SectionKind::EdgeLabelOffsets,
            4 => SectionKind::EdgeLabelBytes,
            5 => SectionKind::CsrOffsets,
            6 => SectionKind::CsrTargets,
            7 => SectionKind::MixedOffsets,
            8 => SectionKind::MixedEntries,
            9 => SectionKind::Ontology,
            10 => SectionKind::LabelStats,
            _ => return None,
        })
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SectionKind::Meta => "meta",
            SectionKind::NodeLabelOffsets => "node-label-offsets",
            SectionKind::NodeLabelBytes => "node-label-bytes",
            SectionKind::EdgeLabelOffsets => "edge-label-offsets",
            SectionKind::EdgeLabelBytes => "edge-label-bytes",
            SectionKind::CsrOffsets => "csr-offsets",
            SectionKind::CsrTargets => "csr-targets",
            SectionKind::MixedOffsets => "mixed-offsets",
            SectionKind::MixedEntries => "mixed-entries",
            SectionKind::Ontology => "ontology",
            SectionKind::LabelStats => "label-stats",
        };
        f.write_str(name)
    }
}

/// A section's identity: its kind plus the kind-specific parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SectionId {
    /// What the section holds.
    pub kind: SectionKind,
    /// Kind-specific qualifier (label/direction encoding, or 0).
    pub param: u32,
}

impl SectionId {
    /// A section id with parameter 0.
    pub fn plain(kind: SectionKind) -> SectionId {
        SectionId { kind, param: 0 }
    }

    /// The id of a per-(label, direction) CSR array section.
    pub fn csr(kind: SectionKind, label: u32, incoming: bool) -> SectionId {
        SectionId {
            kind,
            param: label * 2 + incoming as u32,
        }
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.param == 0 {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "{}#{}", self.kind, self.param)
        }
    }
}

/// FNV-1a 64-bit checksum over 8-byte little-endian words (the tail is
/// zero-padded): one multiply per word instead of per byte, so verifying a
/// large image at open time runs near memory speed while staying tiny,
/// dependency-free and deterministic across platforms.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Appends `value` little-endian to a payload buffer.
pub fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends `value` little-endian to a payload buffer.
pub fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Serialises a `u32` slice as a little-endian payload.
pub fn u32_payload(values: impl IntoIterator<Item = u32>) -> Vec<u8> {
    let iter = values.into_iter();
    let mut out = Vec::with_capacity(iter.size_hint().0 * 4);
    for v in iter {
        push_u32(&mut out, v);
    }
    out
}

/// Serialises a `u64` slice as a little-endian payload.
pub fn u64_payload(values: impl IntoIterator<Item = u64>) -> Vec<u8> {
    let iter = values.into_iter();
    let mut out = Vec::with_capacity(iter.size_hint().0 * 8);
    for v in iter {
        push_u64(&mut out, v);
    }
    out
}

/// Accumulates sections and writes the container file.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(SectionId, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Adds a section. Sections are written in insertion order.
    pub fn add(&mut self, id: SectionId, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// Writes the container to `path` atomically: the bytes go to a
    /// uniquely named sibling temp file (so concurrent writers — even to
    /// different targets sharing a stem — never interleave), are fsynced,
    /// and only then renamed into place, so a crash never leaves a
    /// half-written snapshot at the target path. The parent directory is
    /// fsynced after the rename: the rename itself is a directory mutation,
    /// and without flushing it a crash can roll the directory back to an
    /// entry-less state even though the file's blocks are durable.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let file_name = path
            .file_name()
            .ok_or_else(|| SnapshotError::malformed("snapshot path has no file name"))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(format!(
            ".tmp-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(tmp_name);
        let result = self
            .write_file(&tmp)
            .and_then(|()| std::fs::rename(&tmp, path).map_err(SnapshotError::from))
            .and_then(|()| {
                let parent = match path.parent() {
                    Some(dir) if !dir.as_os_str().is_empty() => dir,
                    _ => Path::new("."),
                };
                crate::wal::sync_dir(parent).map_err(SnapshotError::from)?;
                DIR_SYNCS.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    fn write_file(&self, path: &Path) -> Result<(), SnapshotError> {
        let table_end = HEADER + self.sections.len() * TABLE_ROW;
        // Lay the payloads out, 8-byte aligned.
        let mut rows: Vec<(SectionId, u64, u64, u64)> = Vec::with_capacity(self.sections.len());
        let mut cursor = next_aligned(table_end as u64);
        for (id, payload) in &self.sections {
            rows.push((*id, cursor, payload.len() as u64, checksum(payload)));
            cursor = next_aligned(cursor + payload.len() as u64);
        }

        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        file.write_all(&MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        file.write_all(&ENDIAN_MARKER.to_le_bytes())?;
        file.write_all(&(self.sections.len() as u64).to_le_bytes())?;
        for (id, offset, len, sum) in &rows {
            file.write_all(&id.kind.tag().to_le_bytes())?;
            file.write_all(&id.param.to_le_bytes())?;
            file.write_all(&offset.to_le_bytes())?;
            file.write_all(&len.to_le_bytes())?;
            file.write_all(&sum.to_le_bytes())?;
        }
        let mut written = table_end as u64;
        for ((_, payload), (_, offset, _, _)) in self.sections.iter().zip(&rows) {
            while written < *offset {
                file.write_all(&[0])?;
                written += 1;
            }
            file.write_all(payload)?;
            written += payload.len() as u64;
        }
        file.flush()?;
        // Durability before the rename: without this, a power loss can make
        // the rename durable while the data blocks are not.
        file.into_inner()
            .map_err(|e| SnapshotError::Io(e.to_string()))?
            .sync_all()?;
        Ok(())
    }
}

/// The next 8-byte-aligned offset at or after `offset`.
fn next_aligned(offset: u64) -> u64 {
    (offset + 7) & !7
}

/// One parsed row of the section table.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// The section's identity.
    pub id: SectionId,
    /// Payload offset in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Stored FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// An open snapshot: the memory-mapped file plus its parsed, verified
/// section table. Sections are handed out as [`MappedSlice`]s sharing the
/// map through an `Arc`, so views stay valid for as long as any consumer
/// (e.g. a loaded graph) holds them.
#[derive(Debug)]
pub struct SnapshotReader {
    map: Arc<memmap2::Mmap>,
    table: Vec<SectionEntry>,
}

impl SnapshotReader {
    /// Opens and verifies `path`: magic, version, endianness, section table
    /// bounds and every section checksum. Corruption surfaces as a typed
    /// [`SnapshotError`], never a panic.
    pub fn open(path: &Path) -> Result<SnapshotReader, SnapshotError> {
        if cfg!(target_endian = "big") {
            // Zero-copy views reinterpret raw little-endian words.
            return Err(SnapshotError::ForeignEndianness);
        }
        let file = std::fs::File::open(path)?;
        // Safety: snapshots are written once and then treated as immutable;
        // concurrent truncation is outside the supported contract (same as
        // the real memmap2 crate).
        let map = Arc::new(unsafe { memmap2::MmapOptions::new().map(&file)? });
        let bytes: &[u8] = &map;

        let need = |expected: usize| -> Result<(), SnapshotError> {
            if bytes.len() < expected {
                Err(SnapshotError::Truncated {
                    expected: expected as u64,
                    actual: bytes.len() as u64,
                })
            } else {
                Ok(())
            }
        };
        need(HEADER)?;
        if bytes[..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[..8]);
            return Err(SnapshotError::BadMagic { found });
        }
        let version = read_u32(bytes, 8);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if read_u32(bytes, 12) != ENDIAN_MARKER {
            return Err(SnapshotError::ForeignEndianness);
        }
        let count = read_u64(bytes, 16);
        let table_end = (count as usize)
            .checked_mul(TABLE_ROW)
            .and_then(|t| t.checked_add(HEADER))
            .ok_or_else(|| SnapshotError::malformed("section count overflows"))?;
        need(table_end)?;

        let mut table = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let row = HEADER + i * TABLE_ROW;
            let kind_tag = read_u32(bytes, row);
            let kind = SectionKind::from_tag(kind_tag).ok_or_else(|| {
                SnapshotError::malformed(format!("unknown section kind tag {kind_tag}"))
            })?;
            let entry = SectionEntry {
                id: SectionId {
                    kind,
                    param: read_u32(bytes, row + 4),
                },
                offset: read_u64(bytes, row + 8),
                len: read_u64(bytes, row + 16),
                checksum: read_u64(bytes, row + 24),
            };
            let end = entry.offset.checked_add(entry.len).ok_or_else(|| {
                SnapshotError::malformed(format!("section {} length overflows", entry.id))
            })?;
            if !entry.offset.is_multiple_of(8) {
                return Err(SnapshotError::malformed(format!(
                    "section {} starts at unaligned offset {}",
                    entry.id, entry.offset
                )));
            }
            if end > bytes.len() as u64 {
                return Err(SnapshotError::Truncated {
                    expected: end,
                    actual: bytes.len() as u64,
                });
            }
            table.push(entry);
        }
        // Verify every payload checksum up front: corruption is reported at
        // open time, not as a wrong answer (or panic) mid-query.
        for entry in &table {
            let payload = &bytes[entry.offset as usize..(entry.offset + entry.len) as usize];
            if checksum(payload) != entry.checksum {
                return Err(SnapshotError::ChecksumMismatch { section: entry.id });
            }
        }
        Ok(SnapshotReader { map, table })
    }

    /// The parsed section table, in file order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.table
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.map.len()
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: SectionId) -> Option<MappedSlice> {
        let entry = self.table.iter().find(|e| e.id == id)?;
        Some(MappedSlice::new(
            Arc::clone(&self.map),
            entry.offset as usize,
            entry.len as usize,
        ))
    }

    /// The payload of section `id`, or a [`SnapshotError::MissingSection`].
    pub fn require(&self, id: SectionId) -> Result<MappedSlice, SnapshotError> {
        self.section(id)
            .ok_or(SnapshotError::MissingSection { section: id })
    }
}

fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(buf)
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_le_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "omega-snapshot-format-{}-{tag}",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_sections() {
        let path = temp_path("roundtrip");
        let mut w = SnapshotWriter::new();
        w.add(SectionId::plain(SectionKind::Meta), u64_payload([4, 2]));
        w.add(
            SectionId::csr(SectionKind::CsrOffsets, 3, true),
            u32_payload([0, 1, 1, 5]),
        );
        w.write_to(&path).unwrap();

        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.sections().len(), 2);
        let meta = r.require(SectionId::plain(SectionKind::Meta)).unwrap();
        assert_eq!(meta.as_u64s().unwrap(), &[4, 2]);
        let offs = r
            .require(SectionId::csr(SectionKind::CsrOffsets, 3, true))
            .unwrap();
        assert_eq!(offs.as_u32s().unwrap(), &[0, 1, 1, 5]);
        assert!(r.section(SectionId::plain(SectionKind::Ontology)).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_typed() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(SnapshotError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_typed() {
        let path = temp_path("version");
        let mut w = SnapshotWriter::new();
        w.add(SectionId::plain(SectionKind::Meta), u64_payload([1]));
        w.write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xFF; // clobber the version field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(SnapshotError::UnsupportedVersion { supported: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_typed() {
        let path = temp_path("truncate");
        let mut w = SnapshotWriter::new();
        w.add(SectionId::plain(SectionKind::Meta), u64_payload([1, 2, 3]));
        w.write_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        // Cutting into the header is also a typed truncation.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let path = temp_path("checksum");
        let mut w = SnapshotWriter::new();
        w.add(SectionId::plain(SectionKind::Meta), u64_payload([7, 8, 9]));
        w.write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_is_stable_and_tail_sensitive() {
        // Word-wise FNV-1a: empty input is the offset basis, and every byte
        // (including tail bytes) influences the result.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_ne!(checksum(b"12345678"), checksum(b"12345679"));
        assert_ne!(checksum(b"123456781"), checksum(b"12345678"));
        // A zero tail byte still extends the hashed length... the padded
        // word is identical, so guard lengths via the section table instead.
        assert_eq!(checksum(b"1234"), checksum(b"1234\0"));
    }
}
