//! Serialising a frozen [`GraphStore`] into snapshot sections and
//! reassembling one — with memory-mapped CSR arrays — from an open reader.
//!
//! The writer emits, per graph:
//!
//! * a `meta` section (node / label / edge counts, the `type` label id),
//! * the node and edge-label string tables (offsets + concatenated bytes),
//! * one `(offsets, targets)` section pair per `(label, direction)` CSR
//!   layer, and one `(offsets, entries)` pair per mixed-label direction.
//!
//! The loader rebuilds the string dictionaries (owned: the store's API
//! hands out `&str`), reconstructs the hash index over node labels, and
//! wraps every CSR array in a borrowed storage enum over the mapping — the
//! bulk of the image is never copied. Offsets are validated (monotone,
//! bounded) before any slice can be built over them, so a malformed file
//! fails with a typed error instead of a panic at query time.

use crate::csr::{CsrIndex, CsrLayer, CsrMixed, NodeStore, PairStore, U32Store};
use crate::graph::{Adjacency, GraphStore, NodeLabels, TYPE_LABEL};
use crate::hash::FxHashMap;
use crate::ids::LabelId;
use crate::interner::LabelInterner;
use crate::snapshot::error::SnapshotError;
use crate::snapshot::format::{
    push_u32, u32_payload, u64_payload, SectionId, SectionKind, SnapshotReader, SnapshotWriter,
};
use crate::snapshot::map::MappedSlice;

/// Number of `u64` words in the meta section.
const META_WORDS: usize = 4;

/// Adds every graph section of `store` to `writer`.
///
/// The store must be frozen: the CSR arrays *are* the image.
pub fn write_graph_sections(
    store: &GraphStore,
    writer: &mut SnapshotWriter,
) -> Result<(), SnapshotError> {
    write_graph_sections_with(store, writer, true)
}

/// [`write_graph_sections`] without the (optional) label-stats section —
/// the exact section set images carried before the statistics existed.
/// Exposed so compatibility tests can produce pre-stats fixtures.
pub fn write_graph_sections_without_stats(
    store: &GraphStore,
    writer: &mut SnapshotWriter,
) -> Result<(), SnapshotError> {
    write_graph_sections_with(store, writer, false)
}

fn write_graph_sections_with(
    store: &GraphStore,
    writer: &mut SnapshotWriter,
    include_label_stats: bool,
) -> Result<(), SnapshotError> {
    let csr = store.csr.as_ref().ok_or_else(|| {
        SnapshotError::malformed("graph must be frozen before it can be snapshotted")
    })?;
    if store.has_overlay() {
        return Err(SnapshotError::malformed(
            "graph carries an uncompacted delta overlay; compact before snapshotting",
        ));
    }

    writer.add(
        SectionId::plain(SectionKind::Meta),
        u64_payload([
            store.node_labels.len() as u64,
            store.labels.len() as u64,
            store.edge_count as u64,
            store.type_label.0 as u64,
        ]),
    );

    let (node_offsets, node_bytes) = string_table(store.node_labels.iter());
    writer.add(
        SectionId::plain(SectionKind::NodeLabelOffsets),
        u64_payload(node_offsets),
    );
    writer.add(SectionId::plain(SectionKind::NodeLabelBytes), node_bytes);

    let (label_offsets, label_bytes) = string_table(store.labels.iter().map(|(_, name)| name));
    writer.add(
        SectionId::plain(SectionKind::EdgeLabelOffsets),
        u64_payload(label_offsets),
    );
    writer.add(SectionId::plain(SectionKind::EdgeLabelBytes), label_bytes);

    for (label, (out_layer, in_layer)) in csr.out.iter().zip(&csr.inc).enumerate() {
        for (layer, incoming) in [(out_layer, false), (in_layer, true)] {
            writer.add(
                SectionId::csr(SectionKind::CsrOffsets, label as u32, incoming),
                u32_payload(layer.offset_words().iter().copied()),
            );
            writer.add(
                SectionId::csr(SectionKind::CsrTargets, label as u32, incoming),
                u32_payload(layer.target_nodes().iter().map(|n| n.0)),
            );
        }
    }
    for (mixed, incoming) in [(&csr.out_all, false), (&csr.in_all, true)] {
        writer.add(
            SectionId {
                kind: SectionKind::MixedOffsets,
                param: incoming as u32,
            },
            u32_payload(mixed.offset_words().iter().copied()),
        );
        let mut entries = Vec::with_capacity(mixed.len() * 8);
        for &(label, node) in mixed.entry_pairs() {
            push_u32(&mut entries, label.0);
            push_u32(&mut entries, node.0);
        }
        writer.add(
            SectionId {
                kind: SectionKind::MixedEntries,
                param: incoming as u32,
            },
            entries,
        );
    }
    if include_label_stats {
        let stats = store.label_stats();
        let mut words: Vec<u64> = Vec::with_capacity(1 + stats.label_count() * 3);
        words.push(stats.label_count() as u64);
        for entry in stats.entries() {
            words.push(entry.edges);
            words.push(entry.distinct_tails);
            words.push(entry.distinct_heads);
        }
        writer.add(
            SectionId::plain(SectionKind::LabelStats),
            u64_payload(words),
        );
    }
    Ok(())
}

/// Reassembles a frozen [`GraphStore`] over the open snapshot `reader`.
///
/// CSR offset/target/entry arrays stay borrowed from the mapping (the
/// reader's `Arc` keeps it alive); string tables and the node hash index
/// are rebuilt in owned memory.
pub fn read_graph(reader: &SnapshotReader) -> Result<GraphStore, SnapshotError> {
    let meta = reader.require(SectionId::plain(SectionKind::Meta))?;
    let meta = meta.as_u64s()?;
    if meta.len() != META_WORDS {
        return Err(SnapshotError::malformed(format!(
            "meta section has {} words, expected {META_WORDS}",
            meta.len()
        )));
    }
    let node_count = usize_word(meta[0], "node count")?;
    let label_count = usize_word(meta[1], "label count")?;
    let edge_count = usize_word(meta[2], "edge count")?;
    let type_label = LabelId(u32::try_from(meta[3]).map_err(|_| {
        SnapshotError::malformed(format!("type label id {} out of range", meta[3]))
    })?);

    // The node dictionary stays mapped: offsets and bytes are validated
    // once here (monotone, character-boundary offsets, UTF-8) and then
    // served zero-copy. The hash index over it is built lazily on the first
    // `node_by_label` call, not at open time.
    let node_labels = mapped_string_table(
        reader,
        SectionKind::NodeLabelOffsets,
        SectionKind::NodeLabelBytes,
        node_count,
    )?;
    let label_names = read_string_table(
        reader,
        SectionKind::EdgeLabelOffsets,
        SectionKind::EdgeLabelBytes,
        label_count,
    )?;

    let mut labels = LabelInterner::new();
    for name in &label_names {
        labels.intern(name);
    }
    if labels.len() != label_count {
        return Err(SnapshotError::malformed(
            "edge label table contains duplicate names",
        ));
    }
    if labels.get(TYPE_LABEL) != Some(type_label) {
        return Err(SnapshotError::malformed(
            "meta type-label id disagrees with the label table",
        ));
    }

    let mut out = Vec::with_capacity(label_count);
    let mut inc = Vec::with_capacity(label_count);
    for label in 0..label_count as u32 {
        for incoming in [false, true] {
            let offsets =
                reader.require(SectionId::csr(SectionKind::CsrOffsets, label, incoming))?;
            let offsets = U32Store::mapped(offsets)?;
            let targets =
                reader.require(SectionId::csr(SectionKind::CsrTargets, label, incoming))?;
            let targets = NodeStore::mapped(targets)?;
            validate_offsets(
                offsets.as_slice(),
                node_count,
                targets.as_slice().len(),
                "CSR layer",
            )?;
            for &t in targets.as_slice() {
                if t.index() >= node_count {
                    return Err(SnapshotError::malformed(format!(
                        "CSR target {t} out of range for {node_count} nodes"
                    )));
                }
            }
            let layer = CsrLayer::from_parts(offsets, targets);
            if incoming {
                inc.push(layer);
            } else {
                out.push(layer);
            }
        }
    }

    let mut mixed = Vec::with_capacity(2);
    for incoming in [false, true] {
        let id = |kind| SectionId {
            kind,
            param: incoming as u32,
        };
        let offsets = U32Store::mapped(reader.require(id(SectionKind::MixedOffsets))?)?;
        let entries = PairStore::mapped(reader.require(id(SectionKind::MixedEntries))?)?;
        validate_offsets(
            offsets.as_slice(),
            node_count,
            entries.as_slice().len(),
            "mixed view",
        )?;
        for &(label, node) in entries.as_slice() {
            if label.index() >= label_count || node.index() >= node_count {
                return Err(SnapshotError::malformed(format!(
                    "mixed entry ({label:?}, {node}) out of range"
                )));
            }
        }
        mixed.push(CsrMixed::from_parts(offsets, entries));
    }
    let (Some(in_all), Some(out_all)) = (mixed.pop(), mixed.pop()) else {
        return Err(SnapshotError::malformed("missing mixed CSR views"));
    };

    let total: usize = out.iter().map(CsrLayer::len).sum();
    if total != edge_count {
        return Err(SnapshotError::malformed(format!(
            "meta edge count {edge_count} disagrees with CSR total {total}"
        )));
    }

    // The label-stats section is optional: pre-stats images simply leave
    // the cache empty and the statistics are recomputed lazily on first use.
    let label_stats = std::sync::OnceLock::new();
    if let Some(section) = reader.section(SectionId::plain(SectionKind::LabelStats)) {
        let _ = label_stats.set(read_label_stats(&section, label_count)?);
    }

    Ok(GraphStore {
        node_labels,
        node_index: FxHashMap::default(),
        lazy_node_index: std::sync::OnceLock::new(),
        node_index_deferred: true,
        labels,
        type_label,
        // Builder maps stay empty until the first mutation hydrates them
        // from the CSR; every read is CSR-served meanwhile.
        adjacency: vec![Adjacency::default(); label_count],
        out_all: FxHashMap::default(),
        in_all: FxHashMap::default(),
        edge_count,
        csr: Some(std::sync::Arc::new(CsrIndex {
            out,
            inc,
            out_all,
            in_all,
        })),
        hydrated: false,
        overlay: None,
        label_stats,
    })
}

/// Decodes a label-stats section: a label count followed by
/// `(edges, distinct_tails, distinct_heads)` word triples.
fn read_label_stats(
    section: &MappedSlice,
    label_count: usize,
) -> Result<crate::stats::LabelStats, SnapshotError> {
    let words = section.as_u64s()?;
    if words.len() != 1 + label_count * 3 || words[0] != label_count as u64 {
        return Err(SnapshotError::malformed(format!(
            "label-stats section has {} words for {} labels",
            words.len(),
            label_count
        )));
    }
    let entries = words[1..]
        .chunks_exact(3)
        .map(|w| crate::stats::LabelEntry {
            edges: w[0],
            distinct_tails: w[1],
            distinct_heads: w[2],
        })
        .collect();
    Ok(crate::stats::LabelStats::from_entries(entries))
}

fn usize_word(value: u64, what: &str) -> Result<usize, SnapshotError> {
    usize::try_from(value)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)
        .ok_or_else(|| SnapshotError::malformed(format!("{what} {value} out of range")))
}

/// Builds `(offsets, bytes)` for a string table: `offsets[i] .. offsets[i+1]`
/// bounds string `i` in the concatenated UTF-8 bytes.
fn string_table<'a>(strings: impl Iterator<Item = &'a str>) -> (Vec<u64>, Vec<u8>) {
    let mut offsets = vec![0u64];
    let mut bytes = Vec::new();
    for s in strings {
        bytes.extend_from_slice(s.as_bytes());
        offsets.push(bytes.len() as u64);
    }
    (offsets, bytes)
}

/// Validates a string table's sections and wraps them as a zero-copy
/// [`NodeLabels::Mapped`] dictionary: offsets must be monotone, span the
/// byte section and land on UTF-8 character boundaries of valid UTF-8.
fn mapped_string_table(
    reader: &SnapshotReader,
    offsets_kind: SectionKind,
    bytes_kind: SectionKind,
    count: usize,
) -> Result<NodeLabels, SnapshotError> {
    let offsets_slice = reader.require(SectionId::plain(offsets_kind))?;
    let bytes_slice = reader.require(SectionId::plain(bytes_kind))?;
    let (offsets, bytes) = validate_string_table(
        &offsets_slice,
        &bytes_slice,
        offsets_kind,
        bytes_kind,
        count,
    )?;
    let text = std::str::from_utf8(bytes)
        .map_err(|_| SnapshotError::malformed(format!("{bytes_kind} holds invalid UTF-8")))?;
    if offsets
        .iter()
        .any(|&off| !text.is_char_boundary(off as usize))
    {
        return Err(SnapshotError::malformed(format!(
            "{offsets_kind} splits a UTF-8 character"
        )));
    }
    Ok(NodeLabels::Mapped {
        offsets: offsets_slice,
        bytes: bytes_slice,
        len: count,
    })
}

/// Shared structural checks for a string table's offsets/bytes pair.
fn validate_string_table<'a>(
    offsets_slice: &'a MappedSlice,
    bytes_slice: &'a MappedSlice,
    offsets_kind: SectionKind,
    bytes_kind: SectionKind,
    count: usize,
) -> Result<(&'a [u64], &'a [u8]), SnapshotError> {
    let offsets = offsets_slice.as_u64s()?;
    let bytes = bytes_slice.bytes();
    if offsets.len() != count + 1 {
        return Err(SnapshotError::malformed(format!(
            "{offsets_kind} has {} entries, expected {}",
            offsets.len(),
            count + 1
        )));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(bytes.len() as u64)) {
        return Err(SnapshotError::malformed(format!(
            "{offsets_kind} does not span its byte section"
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::malformed(format!(
            "{offsets_kind} is not monotone"
        )));
    }
    let _ = bytes_kind;
    Ok((offsets, bytes))
}

/// Reads a string table into owned strings (used for the small edge-label
/// dictionary, which the interner re-hashes anyway).
fn read_string_table(
    reader: &SnapshotReader,
    offsets_kind: SectionKind,
    bytes_kind: SectionKind,
    count: usize,
) -> Result<Vec<String>, SnapshotError> {
    let offsets_slice = reader.require(SectionId::plain(offsets_kind))?;
    let bytes_slice = reader.require(SectionId::plain(bytes_kind))?;
    let (offsets, bytes) = validate_string_table(
        &offsets_slice,
        &bytes_slice,
        offsets_kind,
        bytes_kind,
        count,
    )?;
    let mut out = Vec::with_capacity(count);
    for window in offsets.windows(2) {
        let slice = &bytes[window[0] as usize..window[1] as usize];
        let s = std::str::from_utf8(slice)
            .map_err(|_| SnapshotError::malformed(format!("{bytes_kind} holds invalid UTF-8")))?;
        out.push(s.to_owned());
    }
    Ok(out)
}

/// Checks a CSR offsets array: `node_count + 1` monotone entries spanning
/// exactly `data_len` items, so slicing with any adjacent pair is in-bounds.
fn validate_offsets(
    offsets: &[u32],
    node_count: usize,
    data_len: usize,
    what: &str,
) -> Result<(), SnapshotError> {
    if offsets.len() != node_count + 1 {
        return Err(SnapshotError::malformed(format!(
            "{what} offsets have {} entries, expected {}",
            offsets.len(),
            node_count + 1
        )));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(data_len as u32)) {
        return Err(SnapshotError::malformed(format!(
            "{what} offsets do not span their data section"
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::malformed(format!(
            "{what} offsets are not monotone"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("alice", "likes", "carol");
        g.add_triple("alice", "type", "Person");
        g.freeze();
        g
    }

    fn roundtrip(g: &GraphStore, tag: &str) -> GraphStore {
        let path = std::env::temp_dir().join(format!(
            "omega-graph-image-{}-{tag}.snapshot",
            std::process::id()
        ));
        let mut w = SnapshotWriter::new();
        write_graph_sections(g, &mut w).unwrap();
        w.write_to(&path).unwrap();
        let r = SnapshotReader::open(&path).unwrap();
        let loaded = read_graph(&r).unwrap();
        std::fs::remove_file(&path).ok();
        loaded
    }

    #[test]
    fn graph_roundtrips_through_an_image() {
        let g = sample();
        let loaded = roundtrip(&g, "basic");
        assert!(loaded.is_frozen());
        assert_eq!(loaded.node_count(), g.node_count());
        assert_eq!(loaded.edge_count(), g.edge_count());
        assert_eq!(loaded.label_count(), g.label_count());
        assert_eq!(loaded.type_label(), g.type_label());
        for node in g.node_ids() {
            assert_eq!(loaded.node_label(node), g.node_label(node));
            for (label, _) in g.labels() {
                for dir in [Direction::Outgoing, Direction::Incoming] {
                    assert_eq!(
                        loaded.neighbors(node, label, dir),
                        g.neighbors(node, label, dir)
                    );
                }
            }
            for dir in [Direction::Outgoing, Direction::Incoming] {
                assert_eq!(loaded.neighbors_any(node, dir), g.neighbors_any(node, dir));
            }
        }
        assert_eq!(
            loaded.node_by_label("alice"),
            g.node_by_label("alice"),
            "hash index must be rebuilt"
        );
        // Derived reads served from the CSR with empty builder maps.
        assert_eq!(loaded.edges().count(), g.edge_count());
        assert_eq!(
            loaded.nodes_with_any_edge().len(),
            g.nodes_with_any_edge().len()
        );
        let knows = g.label_id("knows").unwrap();
        assert_eq!(
            loaded.edge_count_for_label(knows),
            g.edge_count_for_label(knows)
        );
    }

    #[test]
    fn loaded_store_hydrates_on_mutation() {
        let g = sample();
        let mut loaded = roundtrip(&g, "hydrate");
        // Adding an edge must keep all the old edges (hydration) and behave
        // exactly like a never-snapshotted store.
        assert!(loaded.add_triple("carol", "knows", "dave"));
        assert!(!loaded.is_frozen());
        assert_eq!(loaded.edge_count(), g.edge_count() + 1);
        let knows = loaded.label_id("knows").unwrap();
        let alice = loaded.node_by_label("alice").unwrap();
        let bob = loaded.node_by_label("bob").unwrap();
        assert_eq!(loaded.neighbors(alice, knows, Direction::Outgoing), &[bob]);
        loaded.freeze();
        assert_eq!(loaded.neighbors(alice, knows, Direction::Outgoing), &[bob]);
        // Deduplication still works against hydrated edges.
        assert!(!loaded.add_triple("alice", "knows", "bob"));
    }

    #[test]
    fn unfrozen_store_cannot_be_written() {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        let mut w = SnapshotWriter::new();
        assert!(matches!(
            write_graph_sections(&g, &mut w),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let mut g = GraphStore::new();
        g.freeze();
        let loaded = roundtrip(&g, "empty");
        assert_eq!(loaded.node_count(), 0);
        assert_eq!(loaded.edge_count(), 0);
        assert_eq!(
            loaded.label_count(),
            1,
            "the `type` label is always interned"
        );
    }
}
