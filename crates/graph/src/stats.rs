//! Graph statistics, used for the Figure 3 reproduction and by the
//! experiment harness to sanity-check generated data.

use std::collections::BTreeMap;

use crate::graph::GraphStore;

/// Summary statistics of a [`GraphStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// Total edge count.
    pub edges: usize,
    /// Number of distinct edge labels.
    pub labels: usize,
    /// Edge count per label name.
    pub edges_per_label: BTreeMap<String, usize>,
    /// Average total degree over all nodes.
    pub avg_degree: f64,
    /// Maximum total degree over all nodes.
    pub max_degree: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &GraphStore) -> GraphStats {
        let mut edges_per_label = BTreeMap::new();
        for (id, name) in graph.labels() {
            let count = graph.edge_count_for_label(id);
            if count > 0 {
                edges_per_label.insert(name.to_owned(), count);
            }
        }
        let mut max_degree = 0;
        let mut total_degree = 0usize;
        for node in graph.node_ids() {
            let d = graph.degree(node);
            max_degree = max_degree.max(d);
            total_degree += d;
        }
        let nodes = graph.node_count();
        GraphStats {
            nodes,
            edges: graph.edge_count(),
            labels: graph.label_count(),
            edges_per_label,
            avg_degree: if nodes == 0 {
                0.0
            } else {
                total_degree as f64 / nodes as f64
            },
            max_degree,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "nodes={} edges={} labels={} avg_degree={:.2} max_degree={}",
            self.nodes, self.edges, self.labels, self.avg_degree, self.max_degree
        )?;
        for (label, count) in &self.edges_per_label {
            writeln!(f, "  {label}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        let mut g = GraphStore::new();
        g.add_triple("a", "p", "b");
        g.add_triple("a", "p", "c");
        g.add_triple("b", "q", "c");
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.edges_per_label["p"], 2);
        assert_eq!(stats.edges_per_label["q"], 1);
        assert!(!stats.edges_per_label.contains_key("type"));
        // total degree = 2 * edges
        assert!((stats.avg_degree - 2.0).abs() < 1e-9);
        assert_eq!(stats.max_degree, 2);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphStore::new();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.avg_degree, 0.0);
    }
}
