//! Graph statistics: the frozen per-label cardinalities the planner reads
//! ([`LabelStats`]) and the human-facing summary used for the Figure 3
//! reproduction ([`GraphStats`]).

use std::collections::BTreeMap;

use crate::graph::GraphStore;
use crate::ids::LabelId;

/// Cardinalities of one `(label)` slice of the graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelEntry {
    /// Number of edges carrying the label.
    pub edges: u64,
    /// Number of distinct source nodes (nodes with at least one outgoing
    /// edge of this label) — the cardinality of the paper's `Tails`.
    pub distinct_tails: u64,
    /// Number of distinct target nodes — the cardinality of `Heads`.
    pub distinct_heads: u64,
}

/// Per-label edge and distinct-endpoint counts, read straight off the
/// frozen CSR offset arrays in `O(labels · nodes)` array scans — no hashing,
/// no adjacency materialisation.
///
/// The planner uses these to decide which end of a doubly-constant conjunct
/// to evaluate from and how to order conjunct streams for the rank join;
/// they are also serialised into snapshot images (an optional section, so
/// pre-stats images still open and recompute lazily).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelStats {
    entries: Vec<LabelEntry>,
    total_edges: u64,
}

impl LabelStats {
    /// Computes the statistics for `graph`.
    ///
    /// On a frozen store each label costs one pass over its two offset
    /// arrays; on an unfrozen store the builder hash maps provide the same
    /// counts directly.
    pub fn compute(graph: &GraphStore) -> LabelStats {
        let mut entries = Vec::with_capacity(graph.label_count());
        for (label, _) in graph.labels() {
            entries.push(LabelEntry {
                edges: graph.edge_count_for_label(label) as u64,
                distinct_tails: graph.distinct_tails(label) as u64,
                distinct_heads: graph.distinct_heads(label) as u64,
            });
        }
        let total_edges = entries.iter().map(|e| e.edges).sum();
        LabelStats {
            entries,
            total_edges,
        }
    }

    /// Reassembles the statistics from raw entries (the snapshot loader).
    pub(crate) fn from_entries(entries: Vec<LabelEntry>) -> LabelStats {
        let total_edges = entries.iter().map(|e| e.edges).sum();
        LabelStats {
            entries,
            total_edges,
        }
    }

    /// The entry for `label` (all-zero for labels unknown at compute time).
    #[inline]
    pub fn entry(&self, label: LabelId) -> LabelEntry {
        self.entries.get(label.index()).copied().unwrap_or_default()
    }

    /// Whether at least one edge carries `label`.
    #[inline]
    pub fn has_edges(&self, label: LabelId) -> bool {
        self.entry(label).edges > 0
    }

    /// Number of labels covered.
    pub fn label_count(&self) -> usize {
        self.entries.len()
    }

    /// Total edge count across all labels.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// The raw per-label entries, in label-id order (serialisation).
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }
}

/// Summary statistics of a [`GraphStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// Total edge count.
    pub edges: usize,
    /// Number of distinct edge labels.
    pub labels: usize,
    /// Edge count per label name.
    pub edges_per_label: BTreeMap<String, usize>,
    /// Average total degree over all nodes.
    pub avg_degree: f64,
    /// Maximum total degree over all nodes.
    pub max_degree: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    ///
    /// Per-label counts come from the shared [`LabelStats`] (frozen CSR
    /// offsets when available) and the average degree is `2·edges / nodes`
    /// exactly (every edge contributes one outgoing and one incoming
    /// endpoint) — no per-node loop for either. Only the maximum degree
    /// still visits each node, reading the two mixed-view offset deltas
    /// on a frozen store.
    pub fn compute(graph: &GraphStore) -> GraphStats {
        let label_stats = graph.label_stats();
        let mut edges_per_label = BTreeMap::new();
        for (id, name) in graph.labels() {
            let count = label_stats.entry(id).edges as usize;
            if count > 0 {
                edges_per_label.insert(name.to_owned(), count);
            }
        }
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let max_degree = graph.node_ids().map(|n| graph.degree(n)).max().unwrap_or(0);
        GraphStats {
            nodes,
            edges,
            labels: graph.label_count(),
            edges_per_label,
            avg_degree: if nodes == 0 {
                0.0
            } else {
                2.0 * edges as f64 / nodes as f64
            },
            max_degree,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "nodes={} edges={} labels={} avg_degree={:.2} max_degree={}",
            self.nodes, self.edges, self.labels, self.avg_degree, self.max_degree
        )?;
        for (label, count) in &self.edges_per_label {
            writeln!(f, "  {label}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        g.add_triple("a", "p", "b");
        g.add_triple("a", "p", "c");
        g.add_triple("b", "q", "c");
        g
    }

    #[test]
    fn stats_on_small_graph() {
        let g = sample();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.edges_per_label["p"], 2);
        assert_eq!(stats.edges_per_label["q"], 1);
        assert!(!stats.edges_per_label.contains_key("type"));
        // total degree = 2 * edges
        assert!((stats.avg_degree - 2.0).abs() < 1e-9);
        assert_eq!(stats.max_degree, 2);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphStore::new();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.avg_degree, 0.0);
    }

    #[test]
    fn label_stats_count_edges_and_endpoints() {
        let g = sample();
        let stats = LabelStats::compute(&g);
        let p = g.label_id("p").unwrap();
        let q = g.label_id("q").unwrap();
        assert_eq!(stats.entry(p).edges, 2);
        assert_eq!(stats.entry(p).distinct_tails, 1); // only `a`
        assert_eq!(stats.entry(p).distinct_heads, 2); // b and c
        assert_eq!(stats.entry(q).edges, 1);
        assert!(stats.has_edges(p));
        assert!(!stats.has_edges(g.type_label()));
        assert_eq!(stats.total_edges(), 3);
        assert_eq!(stats.label_count(), g.label_count());
        // Out-of-range labels report zeroes, not a panic.
        assert_eq!(stats.entry(LabelId(99)).edges, 0);
    }

    #[test]
    fn frozen_and_builder_label_stats_agree() {
        let g = sample();
        let mut frozen = g.clone();
        frozen.freeze();
        assert_eq!(LabelStats::compute(&g), LabelStats::compute(&frozen));
    }

    #[test]
    fn cached_label_stats_invalidate_on_mutation() {
        let mut g = sample();
        g.freeze();
        let p = g.label_id("p").unwrap();
        assert_eq!(g.label_stats().entry(p).edges, 2);
        g.add_triple("c", "p", "a");
        assert_eq!(g.label_stats().entry(p).edges, 3);
    }
}
