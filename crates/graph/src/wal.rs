//! Write-ahead delta log for the live graph.
//!
//! Every applied mutation batch is appended here as a length-prefixed,
//! FNV-checksummed, sequence-numbered record *before* the epoch pointer swap
//! publishes it to readers. On restart, [`Wal::open`] replays the log and
//! hands back the acknowledged-mutation prefix; a torn or corrupt tail (the
//! typical artefact of a crash mid-append) is truncated to the last valid
//! prefix rather than reported as a fatal error. Together with the snapshot
//! written by log rotation this gives incremental-snapshot durability: the
//! on-disk state is always `checkpoint + log`, both individually atomic.
//!
//! ## On-disk layout
//!
//! ```text
//! file   := header record*
//! header := magic("OMEGAWAL") version:u32
//! record := body_len:u32 body checksum(body):u64
//! body   := seq:u64 epoch:u64 n_adds:u32 n_removes:u32 triple{n_adds+n_removes}
//! triple := str str str                (tail, label, head)
//! str    := len:u32 bytes{len}
//! ```
//!
//! All integers are little-endian. The checksum is the same word-wise
//! FNV-1a-64 used by the snapshot container ([`crate::snapshot::checksum`]).
//! Sequence numbers are contiguous within one log and survive rotation, so a
//! replayer can detect a spliced or reordered log.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::snapshot::checksum;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"OMEGAWAL";
/// Current format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the file header (magic + version).
pub const WAL_HEADER_LEN: u64 = 12;
/// Name of the log file inside the WAL directory.
pub const WAL_FILE: &str = "wal.log";
/// Name of the rotation checkpoint snapshot inside the WAL directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.omega";

/// Smallest possible record body: seq + epoch + two counts.
const MIN_BODY_LEN: usize = 8 + 8 + 4 + 4;

/// Typed WAL failure. Recovery never panics on corrupt input; anything the
/// replayer cannot prove valid is truncated, and anything the appender cannot
/// persist surfaces here so the caller can degrade instead of lying about
/// durability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying I/O failure (message carries the OS error).
    Io(String),
    /// The file exists but does not start with `OMEGAWAL`.
    BadMagic,
    /// The file uses a format version this build does not understand.
    UnsupportedVersion(u32),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(message) => write!(f, "wal i/o error: {message}"),
            WalError::BadMagic => write!(f, "wal file does not start with OMEGAWAL"),
            WalError::UnsupportedVersion(v) => write!(f, "unsupported wal version {v}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(err: std::io::Error) -> Self {
        WalError::Io(err.to_string())
    }
}

/// When appended records are pushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record; a `MutateOk` implies the record is durable.
    Always,
    /// `fsync` at most once per the given interval; bounded-loss group commit.
    EveryMs(u64),
    /// Never `fsync` explicitly; durability rides on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// Parse the `--fsync` flag syntax: `always`, `never`, or `every:<ms>`.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(FsyncPolicy::EveryMs)
                    .map_err(|_| format!("bad fsync interval: {ms}")),
                None => Err(format!(
                    "bad fsync policy {other:?}: expected always, never, or every:<ms>"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryMs(ms) => write!(f, "every:{ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Where the log lives and how eagerly it is synced.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `wal.log` and the rotation checkpoint.
    pub dir: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// Config with the given directory and the safe default (`always`).
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
        }
    }

    /// Replace the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> WalConfig {
        self.fsync = fsync;
        self
    }
}

/// One replayed mutation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (contiguous within a log).
    pub seq: u64,
    /// Epoch the batch produced when it was first applied.
    pub epoch: u64,
    /// Added `(tail, label, head)` triples.
    pub adds: Vec<(String, String, String)>,
    /// Removed `(tail, label, head)` triples.
    pub removes: Vec<(String, String, String)>,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail discarded by truncation.
    pub truncated_bytes: u64,
    /// Size of the log after truncation (header included).
    pub log_bytes: u64,
    /// True when the WAL directory holds a rotation checkpoint snapshot.
    pub has_checkpoint: bool,
}

/// Outcome of one append.
#[derive(Debug, Clone, Copy)]
pub struct WalAppend {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Bytes appended (length prefix + body + checksum).
    pub bytes: u64,
    /// Whether this append was pushed to stable storage before returning.
    pub synced: bool,
    /// Nanoseconds spent in `fsync` (0 when not synced).
    pub sync_ns: u64,
}

/// Deterministic injected I/O failures, mirroring the crash shapes the
/// recovery path must survive. Consumed by the next [`Wal::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFailure {
    /// Persist only a prefix of the record, then fail (crash mid-write).
    ShortWrite,
    /// Persist the whole record with a corrupted checksum, then fail.
    TornRecord,
    /// Persist the record but fail the fsync (power loss before flush).
    SyncFailure,
    /// Fail before writing anything (ENOSPC).
    DiskFull,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    dir: PathBuf,
    fsync: FsyncPolicy,
    next_seq: u64,
    len: u64,
    last_sync: Instant,
    injected: Option<WalFailure>,
}

impl Wal {
    /// Open (creating if absent) the log under `config.dir`, replay whatever
    /// is on disk, truncate any torn tail, and return the log positioned for
    /// appending along with the recovered records.
    pub fn open(config: &WalConfig) -> Result<(Wal, WalRecovery), WalError> {
        std::fs::create_dir_all(&config.dir)?;
        let path = config.dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.sync_all()?;
            sync_dir(&config.dir)?;
            bytes.extend_from_slice(WAL_MAGIC);
            bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        }
        if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != WAL_VERSION {
            return Err(WalError::UnsupportedVersion(version));
        }

        let (records, valid_len) = replay(&bytes);
        let truncated = bytes.len() as u64 - valid_len;
        if truncated > 0 {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;

        let next_seq = records.last().map_or(1, |r| r.seq + 1);
        let recovery = WalRecovery {
            records,
            truncated_bytes: truncated,
            log_bytes: valid_len,
            has_checkpoint: config.dir.join(CHECKPOINT_FILE).exists(),
        };
        let wal = Wal {
            file,
            dir: config.dir.clone(),
            fsync: config.fsync,
            next_seq,
            len: valid_len,
            last_sync: Instant::now(),
            injected: None,
        };
        Ok((wal, recovery))
    }

    /// Directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path where log rotation persists its checkpoint snapshot.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current log size in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// Arm a one-shot injected failure consumed by the next [`Wal::append`].
    #[doc(hidden)]
    pub fn inject_failure(&mut self, failure: Option<WalFailure>) {
        self.injected = failure;
    }

    /// Append one mutation batch. The record is on its way to disk (and, per
    /// the fsync policy, durable) before this returns `Ok`; on `Err` the
    /// caller must treat the log as unreliable and stop acknowledging writes.
    pub fn append(
        &mut self,
        epoch: u64,
        adds: &[(String, String, String)],
        removes: &[(String, String, String)],
    ) -> Result<WalAppend, WalError> {
        let seq = self.next_seq;
        let record = encode_record(seq, epoch, adds, removes);

        match self.injected.take() {
            Some(WalFailure::DiskFull) => {
                return Err(WalError::Io("injected disk-full fault".into()));
            }
            Some(WalFailure::ShortWrite) => {
                let half = &record[..record.len() / 2];
                self.file.write_all(half)?;
                let _ = self.file.sync_all();
                return Err(WalError::Io("injected short-write fault".into()));
            }
            Some(WalFailure::TornRecord) => {
                let mut torn = record.clone();
                let last = torn.len() - 1;
                torn[last] ^= 0xff;
                self.file.write_all(&torn)?;
                let _ = self.file.sync_all();
                return Err(WalError::Io("injected torn-record fault".into()));
            }
            Some(WalFailure::SyncFailure) => {
                self.file.write_all(&record)?;
                return Err(WalError::Io("injected fsync fault".into()));
            }
            None => {}
        }

        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        self.next_seq += 1;

        let mut synced = false;
        let mut sync_ns = 0u64;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryMs(ms) => self.last_sync.elapsed().as_millis() >= u128::from(ms),
            FsyncPolicy::Never => false,
        };
        if due {
            let started = Instant::now();
            self.file.sync_all()?;
            sync_ns = started.elapsed().as_nanos() as u64;
            self.last_sync = started;
            synced = true;
        }
        Ok(WalAppend {
            seq,
            bytes: record.len() as u64,
            synced,
            sync_ns,
        })
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Drop every record, keeping the header and the sequence counter. Called
    /// after the current graph state has been checkpointed, so the on-disk
    /// pair `checkpoint + log` stays complete at every instant.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_all()?;
        sync_dir(&self.dir)?;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }
}

/// Fsync a directory so a just-renamed or just-truncated entry survives a
/// crash of the directory itself.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

fn push_str(buf: &mut Vec<u8>, text: &str) {
    buf.extend_from_slice(&(text.len() as u32).to_le_bytes());
    buf.extend_from_slice(text.as_bytes());
}

fn encode_record(
    seq: u64,
    epoch: u64,
    adds: &[(String, String, String)],
    removes: &[(String, String, String)],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(MIN_BODY_LEN + 24 * (adds.len() + removes.len()));
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(&(adds.len() as u32).to_le_bytes());
    body.extend_from_slice(&(removes.len() as u32).to_le_bytes());
    for (tail, label, head) in adds.iter().chain(removes.iter()) {
        push_str(&mut body, tail);
        push_str(&mut body, label);
        push_str(&mut body, head);
    }
    let mut record = Vec::with_capacity(4 + body.len() + 8);
    record.extend_from_slice(&(body.len() as u32).to_le_bytes());
    record.extend_from_slice(&body);
    record.extend_from_slice(&checksum(&body).to_le_bytes());
    record
}

/// Walk the byte image of a log and return every record in the longest valid
/// prefix plus that prefix's length. Never panics: any bounds violation,
/// checksum mismatch, sequence gap, or malformed body ends the prefix there.
fn replay(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN as usize;
    let mut expect_seq: Option<u64> = None;
    while at < bytes.len() {
        let Some(len_bytes) = bytes.get(at..at + 4) else {
            break;
        };
        let body_len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if body_len < MIN_BODY_LEN {
            break;
        }
        let body_at = at + 4;
        let sum_at = body_at + body_len;
        let Some(body) = bytes.get(body_at..sum_at) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(sum_at..sum_at + 8) else {
            break;
        };
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        if checksum(body) != u64::from_le_bytes(sum) {
            break;
        }
        let Some(record) = decode_body(body) else {
            break;
        };
        if let Some(expected) = expect_seq {
            if record.seq != expected {
                break;
            }
        }
        expect_seq = Some(record.seq + 1);
        records.push(record);
        at = sum_at + 8;
    }
    (records, at as u64)
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let slice = bytes.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]))
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let slice = bytes.get(*at..*at + 8)?;
    *at += 8;
    let mut word = [0u8; 8];
    word.copy_from_slice(slice);
    Some(u64::from_le_bytes(word))
}

fn take_str(bytes: &[u8], at: &mut usize) -> Option<String> {
    let len = take_u32(bytes, at)? as usize;
    let slice = bytes.get(*at..*at + len)?;
    *at += len;
    String::from_utf8(slice.to_vec()).ok()
}

fn decode_body(body: &[u8]) -> Option<WalRecord> {
    let mut at = 0usize;
    let seq = take_u64(body, &mut at)?;
    let epoch = take_u64(body, &mut at)?;
    let n_adds = take_u32(body, &mut at)? as usize;
    let n_removes = take_u32(body, &mut at)? as usize;
    let mut take_triples = |n: usize| -> Option<Vec<(String, String, String)>> {
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let tail = take_str(body, &mut at)?;
            let label = take_str(body, &mut at)?;
            let head = take_str(body, &mut at)?;
            out.push((tail, label, head));
        }
        Some(out)
    };
    let adds = take_triples(n_adds)?;
    let removes = take_triples(n_removes)?;
    if at != body.len() {
        return None;
    }
    Some(WalRecord {
        seq,
        epoch,
        adds,
        removes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "omega-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn triple(t: &str, l: &str, h: &str) -> (String, String, String) {
        (t.into(), l.into(), h.into())
    }

    #[test]
    fn append_then_reopen_replays_every_record() {
        let dir = temp_dir("replay");
        let config = WalConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        {
            let (mut wal, recovery) = Wal::open(&config).unwrap();
            assert!(recovery.records.is_empty());
            let out = wal.append(1, &[triple("a", "knows", "b")], &[]).unwrap();
            assert_eq!(out.seq, 1);
            assert!(out.synced, "fsync=always must sync every append");
            wal.append(
                2,
                &[triple("b", "knows", "c")],
                &[triple("a", "knows", "b")],
            )
            .unwrap();
        }
        let (wal, recovery) = Wal::open(&config).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.records.len(), 2);
        assert_eq!(recovery.records[0].adds, vec![triple("a", "knows", "b")]);
        assert_eq!(recovery.records[1].removes, vec![triple("a", "knows", "b")]);
        assert_eq!(recovery.records[1].seq, 2);
        assert_eq!(wal.next_seq(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_valid_prefix() {
        let dir = temp_dir("torn");
        let config = WalConfig::new(&dir);
        let valid_len;
        {
            let (mut wal, _) = Wal::open(&config).unwrap();
            wal.append(1, &[triple("a", "knows", "b")], &[]).unwrap();
            valid_len = wal.len();
            wal.append(2, &[triple("b", "knows", "c")], &[]).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the second record: a crash mid-append.
        std::fs::write(&path, &bytes[..valid_len as usize + 7]).unwrap();
        let (mut wal, recovery) = Wal::open(&config).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert_eq!(recovery.truncated_bytes, 7);
        assert_eq!(wal.len(), valid_len);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            valid_len,
            "the torn bytes must be gone from disk"
        );
        // The log stays appendable after truncation.
        wal.append(2, &[triple("b", "knows", "c")], &[]).unwrap();
        let (_, recovery) = Wal::open(&config).unwrap();
        assert_eq!(recovery.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_ends_the_valid_prefix() {
        let dir = temp_dir("corrupt");
        let config = WalConfig::new(&dir);
        {
            let (mut wal, _) = Wal::open(&config).unwrap();
            wal.append(1, &[triple("a", "knows", "b")], &[]).unwrap();
            wal.append(2, &[triple("b", "knows", "c")], &[]).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one checksum bit of the final record
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovery) = Wal::open(&config).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_empties_the_log_but_keeps_sequencing() {
        let dir = temp_dir("rotate");
        let config = WalConfig::new(&dir);
        let (mut wal, _) = Wal::open(&config).unwrap();
        wal.append(1, &[triple("a", "knows", "b")], &[]).unwrap();
        wal.rotate().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.next_seq(), 2, "seq survives rotation");
        wal.append(2, &[triple("b", "knows", "c")], &[]).unwrap();
        let (_, recovery) = Wal::open(&config).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert_eq!(recovery.records[0].seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_failures_leave_a_recoverable_log() {
        for failure in [
            WalFailure::ShortWrite,
            WalFailure::TornRecord,
            WalFailure::SyncFailure,
            WalFailure::DiskFull,
        ] {
            let dir = temp_dir(&format!("fault-{failure:?}"));
            let config = WalConfig::new(&dir);
            {
                let (mut wal, _) = Wal::open(&config).unwrap();
                wal.append(1, &[triple("a", "knows", "b")], &[]).unwrap();
                wal.inject_failure(Some(failure));
                let err = wal.append(2, &[triple("b", "knows", "c")], &[]);
                assert!(err.is_err(), "{failure:?} must surface as an error");
            }
            let (_, recovery) = Wal::open(&config).unwrap();
            // SyncFailure leaves a fully valid record on disk (only the
            // durability promise was broken); every other fault's damage
            // must be truncated away.
            let expect = if failure == WalFailure::SyncFailure {
                2
            } else {
                1
            };
            assert_eq!(
                recovery.records.len(),
                expect,
                "{failure:?} recovery must keep the acknowledged prefix"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn fsync_policy_parses_the_flag_syntax() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every:25"), Ok(FsyncPolicy::EveryMs(25)));
        assert!(FsyncPolicy::parse("every:soon").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryMs(25).to_string(), "every:25");
    }

    #[test]
    fn foreign_file_is_rejected_with_typed_errors() {
        let dir = temp_dir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"NOTAWAL\x00garbage").unwrap();
        assert!(matches!(
            Wal::open(&WalConfig::new(&dir)),
            Err(WalError::BadMagic)
        ));
        let mut versioned = WAL_MAGIC.to_vec();
        versioned.extend_from_slice(&9u32.to_le_bytes());
        std::fs::write(dir.join(WAL_FILE), &versioned).unwrap();
        assert!(matches!(
            Wal::open(&WalConfig::new(&dir)),
            Err(WalError::UnsupportedVersion(9))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
