//! Property-based tests for the graph store and its bitmap node sets.

use std::collections::{BTreeSet, HashSet};

use omega_graph::{Direction, GraphStore, NodeBitmap, NodeId};
use proptest::prelude::*;

fn triple_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    // Small id space so that collisions (parallel edges, dedup) are exercised.
    prop::collection::vec((0u8..20, 0u8..5, 0u8..20), 0..200)
}

proptest! {
    /// The store deduplicates triples: its edge count equals the number of
    /// distinct triples inserted.
    #[test]
    fn edge_count_matches_distinct_triples(triples in triple_strategy()) {
        let mut g = GraphStore::new();
        let mut distinct = BTreeSet::new();
        for (s, p, o) in &triples {
            g.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
            distinct.insert((*s, *p, *o));
        }
        prop_assert_eq!(g.edge_count(), distinct.len());
        prop_assert_eq!(g.edges().count(), distinct.len());
    }

    /// Outgoing and incoming adjacency are mirror images of each other.
    #[test]
    fn adjacency_is_symmetric(triples in triple_strategy()) {
        let mut g = GraphStore::new();
        for (s, p, o) in &triples {
            g.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
        }
        for edge in g.edges() {
            prop_assert!(g
                .neighbors(edge.source, edge.label, Direction::Outgoing)
                .contains(&edge.target));
            prop_assert!(g
                .neighbors(edge.target, edge.label, Direction::Incoming)
                .contains(&edge.source));
        }
    }

    /// `heads`/`tails` agree with a naive scan over all edges.
    #[test]
    fn heads_and_tails_agree_with_scan(triples in triple_strategy()) {
        let mut g = GraphStore::new();
        for (s, p, o) in &triples {
            g.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
        }
        for (label, _) in g.labels() {
            let expected_heads: HashSet<_> = g
                .edges()
                .filter(|e| e.label == label)
                .map(|e| e.target)
                .collect();
            let expected_tails: HashSet<_> = g
                .edges()
                .filter(|e| e.label == label)
                .map(|e| e.source)
                .collect();
            let heads: HashSet<_> = g.heads(label).iter().collect();
            let tails: HashSet<_> = g.tails(label).iter().collect();
            prop_assert_eq!(heads, expected_heads);
            prop_assert_eq!(tails, expected_tails);
        }
    }

    /// Triple-text round trip preserves the edge set.
    #[test]
    fn io_round_trip(triples in triple_strategy()) {
        let mut g = GraphStore::new();
        for (s, p, o) in &triples {
            g.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
        }
        let mut buf = Vec::new();
        omega_graph::io::write_triples(&g, &mut buf).unwrap();
        let g2 = omega_graph::io::read_triples(&buf[..]).unwrap();
        let as_strings = |g: &GraphStore| -> BTreeSet<(String, String, String)> {
            g.edges()
                .map(|e| {
                    (
                        g.node_label(e.source).to_owned(),
                        g.label_name(e.label).to_owned(),
                        g.node_label(e.target).to_owned(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(as_strings(&g), as_strings(&g2));
    }

    /// Bitmap set algebra agrees with `HashSet` semantics.
    #[test]
    fn bitmap_matches_hashset(
        a in prop::collection::hash_set(0u32..500, 0..100),
        b in prop::collection::hash_set(0u32..500, 0..100),
    ) {
        let bm_a: NodeBitmap = a.iter().map(|&i| NodeId(i)).collect();
        let bm_b: NodeBitmap = b.iter().map(|&i| NodeId(i)).collect();
        let to_set = |bm: &NodeBitmap| bm.iter().map(|n| n.0).collect::<HashSet<_>>();
        prop_assert_eq!(to_set(&bm_a.union(&bm_b)), a.union(&b).copied().collect::<HashSet<_>>());
        prop_assert_eq!(
            to_set(&bm_a.intersection(&bm_b)),
            a.intersection(&b).copied().collect::<HashSet<_>>()
        );
        prop_assert_eq!(
            to_set(&bm_a.difference(&bm_b)),
            a.difference(&b).copied().collect::<HashSet<_>>()
        );
        prop_assert_eq!(bm_a.len(), a.len());
    }
}
