//! Fixed-bucket log-linear latency histograms.
//!
//! The bucketing scheme is the HDR-histogram one: values below 16 get one
//! bucket each; above that, every power-of-two octave is split into
//! `2^SUB_BITS = 8` equal sub-buckets. A bucket's width is therefore at
//! most 1/8 of its lower bound, which bounds the relative error of any
//! quantile extracted from bucket boundaries at **12.5%** — while the whole
//! `u64` range fits in [`BUCKET_COUNT`] = 496 slots (~4 KiB of atomics).
//!
//! Recording is wait-free (one relaxed `fetch_add` on the bucket, one on
//! the count/sum, one `fetch_max` for the maximum); per-thread shards merge
//! by bucket-wise addition ([`Histogram::merge_from`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;

/// Values below this threshold get an exact bucket each.
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);

/// Total number of buckets needed to cover the full `u64` range.
pub const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + (1 << SUB_BITS);

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) & ((1 << SUB_BITS) - 1);
    (((shift + 1) << SUB_BITS) + sub as u32) as usize
}

/// The largest value contained in bucket `i` (the quantile representative:
/// using the inclusive upper bound keeps extracted quantiles ≥ the exact
/// ones, and within the 12.5% bucket width above them).
fn bucket_bound(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let shift = (i as u32 >> SUB_BITS) - 1;
    let sub = (i as u64) & ((1 << SUB_BITS) - 1);
    // The very top bucket's upper bound is u64::MAX: the shift wraps the
    // value to zero and the wrapping decrement recovers the saturated bound.
    (((1 << SUB_BITS) + sub + 1) << shift).wrapping_sub(1)
}

/// A lock-free fixed-bucket latency histogram.
///
/// Values are plain `u64`s — by convention nanoseconds when recorded via
/// [`Histogram::observe`]. Use [`Histogram::snapshot`] for a consistent-ish
/// point-in-time view with quantile extraction.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        let buckets = match buckets.into_boxed_slice().try_into() {
            Ok(array) => array,
            // `buckets` has exactly BUCKET_COUNT elements by construction.
            Err(_) => unreachable!("bucket vector length is BUCKET_COUNT"),
        };
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// A histogram pre-populated from a value sample (the bench harness's
    /// entry point: collected latencies in, shared percentile math out).
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Histogram {
        let h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn observe(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every observation of `other` into `self` (shard merging).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile extraction. Concurrent recording
    /// may skew individual buckets by in-flight observations; totals are
    /// re-derived from the copied buckets so quantile ranks stay
    /// internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

/// A frozen view of a [`Histogram`], with nearest-rank quantiles.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The nearest-rank `q`-quantile (`0.0 < q <= 1.0`), as the inclusive
    /// upper bound of the bucket holding that rank — at most 12.5% above
    /// the exact order statistic, never below it. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_continuous_and_monotone() {
        // Every value maps into a bucket whose bound is >= the value, and
        // bucket indices never decrease as values grow.
        let mut last = 0usize;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= last || v < 4096, "indices monotone");
            assert!(i < BUCKET_COUNT, "index {i} in range for {v}");
            assert!(bucket_bound(i) >= v, "bound covers value {v}");
            // Relative bucket error is bounded by 12.5%.
            assert!(
                bucket_bound(i) <= v.saturating_add(v / 8).saturating_add(1),
                "bound {} within 12.5% of {v}",
                bucket_bound(i)
            );
            if v >= 4096 {
                continue;
            }
            last = i;
        }
        // The small range is exact.
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_match_sorted_sample_within_bucket_error() {
        // Deterministic pseudo-random sample (LCG), compared against the
        // exact sort-based nearest-rank percentiles.
        let mut x = 0x2545f491_4f6cdd1du64;
        let mut values = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            values.push(x >> 40); // ~[0, 16M)
        }
        let h = Histogram::from_values(values.iter().copied());
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.90, 0.99, 0.999] {
            let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = snap.quantile(q);
            assert!(approx >= exact, "q{q}: {approx} >= exact {exact}");
            assert!(
                approx <= exact + exact / 8 + 1,
                "q{q}: {approx} within 12.5% of exact {exact}"
            );
        }
        assert_eq!(snap.count(), 10_000);
        assert_eq!(snap.max(), *sorted.last().unwrap());
        assert_eq!(snap.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn multithreaded_hammer_keeps_totals_exact() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let c = Arc::new(crate::Counter::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                        c.inc();
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(c.get(), THREADS * PER_THREAD);
        assert_eq!(snap.count(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum(), n * (n - 1) / 2);
        assert_eq!(snap.max(), n - 1);
        // The sample is 0..80000 uniformly; p50 must sit within bucket
        // error of 40000.
        let p50 = snap.p50();
        assert!((40_000..=45_001).contains(&p50), "p50 {p50} near 40000");
    }

    #[test]
    fn shards_merge_additively() {
        let a = Histogram::from_values([1, 2, 3]);
        let b = Histogram::from_values([100, 200]);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum(), 306);
        assert_eq!(snap.max(), 200);
        assert_eq!(snap.p50(), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max(), 0);
    }

    #[test]
    fn observe_records_nanoseconds() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(5));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 5_000);
    }
}
