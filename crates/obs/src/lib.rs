//! # omega-obs
//!
//! The unified observability substrate of Omega-RS: a lock-free metrics
//! [`Registry`] handing out atomic [`Counter`]s, [`Gauge`]s and log-scale
//! latency [`Histogram`]s, plus the span-style [`QueryProfile`] recording
//! per-phase timings of one query execution.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost is one atomic op.** Handles are `Arc`s resolved once
//!    at registration; recording is a single `fetch_add` (plus a
//!    `fetch_max` for histogram maxima). The registry's lock is touched
//!    only at registration and at exposition time.
//! 2. **Histograms are fixed-size and mergeable.** Log-linear bucketing
//!    (eight sub-buckets per power of two) bounds the relative quantile
//!    error at 12.5% with a 496-slot array — shards recorded on different
//!    threads merge by bucket-wise addition, and p50/p99/p999 extraction
//!    never allocates proportionally to the sample.
//! 3. **One exposition format.** [`Registry::expose`] renders every metric
//!    as versioned Prometheus-style `name{label="v"} value` lines, the
//!    same text the `omega-server` daemon returns for a wire `Metrics`
//!    frame and the REPL's `metrics` verb prints.
//!
//! ```
//! use omega_obs::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total", &[("kind", "exec")]);
//! let latency = registry.histogram("request_ns", &[]);
//! requests.inc();
//! latency.observe(Duration::from_micros(250));
//! let text = registry.expose();
//! assert!(text.starts_with("# omega-obs exposition v1\n"));
//! assert!(text.contains("requests_total{kind=\"exec\"} 1"));
//! ```

mod histogram;
mod metric;
mod profile;
mod registry;

pub use histogram::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use metric::{Counter, Gauge};
pub use profile::{ProfilePhase, QueryProfile};
pub use registry::{find_value, Registry, EXPOSITION_HEADER};
