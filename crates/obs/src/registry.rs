//! The metrics registry and its text exposition.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::{Counter, Gauge, Histogram};

/// First line of every exposition, carrying the format version.
pub const EXPOSITION_HEADER: &str = "# omega-obs exposition v1";

type Labels = Vec<(String, String)>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A process-wide registry of named metrics.
///
/// Registration returns an `Arc` handle; recording through the handle never
/// touches the registry lock, which is taken only when registering and when
/// rendering the exposition. Registering the same `(name, labels)` pair
/// twice returns the same underlying metric, so independent subsystems can
/// share a series without coordination.
pub struct Registry {
    metrics: Mutex<BTreeMap<(String, Labels), Metric>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(String, Labels), Metric>> {
        // A poisoned registry lock only means another thread panicked while
        // registering; the map itself is still structurally sound.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = key_of(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            // Same series name registered as a different kind: keep the
            // caller working, but on a detached metric that won't clash in
            // the exposition.
            _ => Arc::new(Counter::new()),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = key_of(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = key_of(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Renders every metric as Prometheus-style text: one
    /// `name{label="value"} value` line per series, sorted by series key,
    /// preceded by [`EXPOSITION_HEADER`]. Histograms expand to `_count`,
    /// `_sum` and three `quantile` series (p50/p99/p999, in nanoseconds).
    pub fn expose(&self) -> String {
        let map = self.lock();
        let mut out = String::with_capacity(64 + map.len() * 48);
        out.push_str(EXPOSITION_HEADER);
        out.push('\n');
        for ((name, labels), metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    line(&mut out, name, labels, &[], &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    line(&mut out, name, labels, &[], &g.get().to_string());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let count_name = format!("{name}_count");
                    line(
                        &mut out,
                        &count_name,
                        labels,
                        &[],
                        &snap.count().to_string(),
                    );
                    let sum_name = format!("{name}_sum");
                    line(&mut out, &sum_name, labels, &[], &snap.sum().to_string());
                    for (q, v) in [
                        ("0.5", snap.p50()),
                        ("0.99", snap.p99()),
                        ("0.999", snap.p999()),
                    ] {
                        line(&mut out, name, labels, &[("quantile", q)], &v.to_string());
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("series", &self.lock().len())
            .finish()
    }
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> (String, Labels) {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

fn line(out: &mut String, name: &str, labels: &Labels, extra: &[(&str, &str)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Finds the value of the series whose rendered form starts with `series`
/// (e.g. `requests_total{kind="exec"}` or a bare `connections_open`) in an
/// exposition produced by [`Registry::expose`]. Used by clients to
/// cross-check server-side metrics without a structured parser.
pub fn find_value(exposition: &str, series: &str) -> Option<f64> {
    for l in exposition.lines() {
        if l.starts_with('#') {
            continue;
        }
        let Some((key, value)) = l.rsplit_once(' ') else {
            continue;
        };
        if key == series {
            return value.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn exposition_golden() {
        let r = Registry::new();
        r.counter("requests_total", &[("kind", "exec")]).add(3);
        r.counter("requests_total", &[("kind", "prepare")]).inc();
        r.gauge("connections_open", &[]).set(2);
        let h = r.histogram("request_ns", &[]);
        for us in [100u64, 200, 300] {
            h.observe(Duration::from_micros(us));
        }
        let text = r.expose();
        let expected = "\
# omega-obs exposition v1
connections_open 2
request_ns_count 3
request_ns_sum 600000
request_ns{quantile=\"0.5\"} 212991
request_ns{quantile=\"0.99\"} 300000
request_ns{quantile=\"0.999\"} 300000
requests_total{kind=\"exec\"} 3
requests_total{kind=\"prepare\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn reregistration_shares_the_series() {
        let r = Registry::new();
        let a = r.counter("hits", &[("a", "1"), ("b", "2")]);
        // Label order must not matter.
        let b = r.counter("hits", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let text = r.expose();
        assert_eq!(text.matches("hits{").count(), 1);
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_metric() {
        let r = Registry::new();
        r.counter("x", &[]).inc();
        let g = r.gauge("x", &[]);
        g.set(7);
        // The counter keeps the series; the gauge is detached but usable.
        assert!(r.expose().contains("x 1"));
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("weird", &[("q", "a\"b\\c\nd")]).inc();
        let text = r.expose();
        assert!(text.contains("weird{q=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn find_value_parses_rendered_lines() {
        let r = Registry::new();
        r.counter("requests_total", &[("kind", "exec")]).add(5);
        r.gauge("connections_open", &[]).set(3);
        let text = r.expose();
        assert_eq!(
            find_value(&text, "requests_total{kind=\"exec\"}"),
            Some(5.0)
        );
        assert_eq!(find_value(&text, "connections_open"), Some(3.0));
        assert_eq!(find_value(&text, "missing"), None);
    }

    #[test]
    fn concurrent_registration_converges() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.counter("spins", &[]).inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("spins", &[]).get(), 4000);
    }
}
