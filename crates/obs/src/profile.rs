//! Span-style per-query profiling.
//!
//! A [`QueryProfile`] is an ordered list of `(phase, nanoseconds)` pairs
//! recording where one query execution spent its time: parsing, planning,
//! each conjunct's evaluation, the rank-join loop, and answer streaming.
//! It is built by the engine only when [`ExecOptions::with_profile`] was
//! requested (the disabled path is a single branch), travels over the wire
//! inside the `Finished` frame's extension block, and prints through the
//! REPL's `profile` verb.
//!
//! [`ExecOptions::with_profile`]: https://docs.rs/omega-core

/// One timed phase of a query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePhase {
    /// Phase name: `parse`, `compile`, `conjunct_<i>`, `rank_join`,
    /// `streaming`, or `total`.
    pub name: String,
    /// Wall-clock time attributed to the phase, in nanoseconds.
    pub nanos: u64,
}

/// Per-phase wall-clock breakdown of one query execution.
///
/// Phases appear in execution order; `total` (when present) is the
/// end-to-end wall time and is *not* the sum of the other phases — phases
/// like per-conjunct evaluation overlap the rank-join loop that drives
/// them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    phases: Vec<ProfilePhase>,
}

impl QueryProfile {
    /// An empty profile.
    pub fn new() -> QueryProfile {
        QueryProfile::default()
    }

    /// Appends a phase measurement.
    pub fn push(&mut self, name: impl Into<String>, nanos: u64) {
        self.phases.push(ProfilePhase {
            name: name.into(),
            nanos,
        });
    }

    /// The recorded phases, in insertion order.
    pub fn phases(&self) -> &[ProfilePhase] {
        &self.phases
    }

    /// The first phase with the given name, if recorded.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.nanos)
    }

    /// The `total` phase if recorded, else the sum of all phases.
    pub fn total_nanos(&self) -> u64 {
        self.get("total")
            .unwrap_or_else(|| self.phases.iter().map(|p| p.nanos).sum())
    }

    /// True when no phases were recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

impl std::fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total_nanos().max(1);
        for p in &self.phases {
            let ms = p.nanos as f64 / 1e6;
            let pct = p.nanos as f64 * 100.0 / total as f64;
            writeln!(f, "{:<14} {:>12.3} ms {:>6.1}%", p.name, ms, pct)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_keep_order_and_lookup_works() {
        let mut p = QueryProfile::new();
        p.push("parse", 10);
        p.push("compile", 20);
        p.push("conjunct_0", 70);
        assert_eq!(p.phases().len(), 3);
        assert_eq!(p.get("compile"), Some(20));
        assert_eq!(p.get("missing"), None);
        assert_eq!(p.total_nanos(), 100);
    }

    #[test]
    fn explicit_total_wins_over_sum() {
        let mut p = QueryProfile::new();
        p.push("parse", 10);
        p.push("total", 1000);
        assert_eq!(p.total_nanos(), 1000);
    }

    #[test]
    fn display_emits_one_line_per_phase() {
        let mut p = QueryProfile::new();
        p.push("parse", 1_000_000);
        p.push("total", 4_000_000);
        let text = p.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("parse"));
        assert!(text.contains("25.0%"));
    }
}
