//! The two scalar metric kinds: monotone counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Recording is one relaxed `fetch_add`; reads are relaxed loads. Counters
/// never decrease — for values that go up *and* down, use a [`Gauge`].
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (live connections, pool occupancy, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
    }
}
