//! Section 4.3: the two query-execution optimisations as ablations —
//! distance-aware retrieval (L4All Q3/Q9, YAGO Q2/Q3) and replacing
//! alternation by disjunction (YAGO Q9) — plus the final-tuple
//! prioritisation and initial-node batching refinements of Section 3.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_bench::{engine_for, l4all_dataset, run_query, yago_dataset};
use omega_core::EvalOptions;
use omega_datagen::{l4all_queries, yago_queries, L4AllScale};

fn bench_distance_aware(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_distance_aware");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let l4all = l4all_dataset(L4AllScale::L1);
    let yago = yago_dataset(0.25);
    let cases = vec![
        ("l4all_q3", engine_for(&l4all, EvalOptions::default()), engine_for(&l4all, EvalOptions::default().with_distance_aware(true)), l4all_queries()[2].clone()),
        ("l4all_q9", engine_for(&l4all, EvalOptions::default()), engine_for(&l4all, EvalOptions::default().with_distance_aware(true)), l4all_queries()[8].clone()),
        ("yago_q2", engine_for(&yago, EvalOptions::default()), engine_for(&yago, EvalOptions::default().with_distance_aware(true)), yago_queries()[1].clone()),
        ("yago_q3", engine_for(&yago, EvalOptions::default()), engine_for(&yago, EvalOptions::default().with_distance_aware(true)), yago_queries()[2].clone()),
    ];
    for (name, baseline, optimised, spec) in &cases {
        let text = spec.with_operator("APPROX");
        group.bench_with_input(BenchmarkId::new("off", name), &text, |b, text| {
            b.iter(|| run_query(baseline, spec.id, "APPROX", text))
        });
        group.bench_with_input(BenchmarkId::new("on", name), &text, |b, text| {
            b.iter(|| run_query(optimised, spec.id, "APPROX", text))
        });
    }
    group.finish();
}

fn bench_disjunction(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_disjunction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let yago = yago_dataset(0.25);
    let spec = yago_queries()[8].clone();
    let text = spec.with_operator("APPROX");
    let baseline = engine_for(&yago, EvalOptions::default());
    let optimised = engine_for(
        &yago,
        EvalOptions::default().with_disjunction_decomposition(true),
    );
    group.bench_function("yago_q9_off", |b| {
        b.iter(|| run_query(&baseline, spec.id, "APPROX", &text))
    });
    group.bench_function("yago_q9_on", |b| {
        b.iter(|| run_query(&optimised, spec.id, "APPROX", &text))
    });
    group.finish();
}

fn bench_final_prioritisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_final_prioritisation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let l4all = l4all_dataset(L4AllScale::L1);
    let with = engine_for(&l4all, EvalOptions::default());
    let without = engine_for(&l4all, EvalOptions::default().without_final_prioritization());
    let spec = l4all_queries()[8].clone(); // Q9
    let text = spec.with_operator("APPROX");
    group.bench_function("on", |b| b.iter(|| run_query(&with, spec.id, "APPROX", &text)));
    group.bench_function("off", |b| {
        b.iter(|| run_query(&without, spec.id, "APPROX", &text))
    });
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_initial_node_batching");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let l4all = l4all_dataset(L4AllScale::L1);
    let spec = l4all_queries()[4].clone(); // Q5: (?X, next+, ?Y)
    for batch in [1usize, 100, 100_000] {
        let engine = engine_for(&l4all, EvalOptions::default().with_batch_size(batch));
        group.bench_with_input(BenchmarkId::new("batch", batch), &spec, |b, spec| {
            b.iter(|| {
                engine
                    .execute(spec.text, Some(100))
                    .expect("query succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_aware,
    bench_disjunction,
    bench_final_prioritisation,
    bench_batch_size
);
criterion_main!(benches);
