//! Section 4.3: the two query-execution optimisations as ablations —
//! distance-aware retrieval (L4All Q3/Q9, YAGO Q2/Q3) and replacing
//! alternation by disjunction (YAGO Q9) — plus the final-tuple
//! prioritisation and initial-node batching refinements of Section 3.3,
//! and the storage/queue comparisons backing this repo's own optimisation
//! work: frozen CSR adjacency vs the hash-map builder, and the indexed
//! bucket queue vs a `BTreeMap` reference implementation of `D_R`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_bench::{engine_for, l4all_dataset, run_query, yago_dataset};
use omega_core::eval::dr::DrQueue;
use omega_core::eval::tuple::Tuple;
use omega_core::{EvalOptions, ExecOptions};
use omega_datagen::{l4all_queries, yago_queries, L4AllScale};
use omega_graph::{Direction, GraphStore};

fn bench_distance_aware(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_distance_aware");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let l4all = l4all_dataset(L4AllScale::L1);
    let yago = yago_dataset(0.25);
    let cases = vec![
        (
            "l4all_q3",
            engine_for(&l4all, EvalOptions::default()),
            engine_for(&l4all, EvalOptions::default().with_distance_aware(true)),
            l4all_queries()[2].clone(),
        ),
        (
            "l4all_q9",
            engine_for(&l4all, EvalOptions::default()),
            engine_for(&l4all, EvalOptions::default().with_distance_aware(true)),
            l4all_queries()[8].clone(),
        ),
        (
            "yago_q2",
            engine_for(&yago, EvalOptions::default()),
            engine_for(&yago, EvalOptions::default().with_distance_aware(true)),
            yago_queries()[1].clone(),
        ),
        (
            "yago_q3",
            engine_for(&yago, EvalOptions::default()),
            engine_for(&yago, EvalOptions::default().with_distance_aware(true)),
            yago_queries()[2].clone(),
        ),
    ];
    for (name, baseline, optimised, spec) in &cases {
        let text = spec.with_operator("APPROX");
        group.bench_with_input(BenchmarkId::new("off", name), &text, |b, text| {
            b.iter(|| run_query(baseline, spec.id, "APPROX", text))
        });
        group.bench_with_input(BenchmarkId::new("on", name), &text, |b, text| {
            b.iter(|| run_query(optimised, spec.id, "APPROX", text))
        });
    }
    group.finish();
}

fn bench_disjunction(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_disjunction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let yago = yago_dataset(0.25);
    let spec = yago_queries()[8].clone();
    let text = spec.with_operator("APPROX");
    let baseline = engine_for(&yago, EvalOptions::default());
    let optimised = engine_for(
        &yago,
        EvalOptions::default().with_disjunction_decomposition(true),
    );
    group.bench_function("yago_q9_off", |b| {
        b.iter(|| run_query(&baseline, spec.id, "APPROX", &text))
    });
    group.bench_function("yago_q9_on", |b| {
        b.iter(|| run_query(&optimised, spec.id, "APPROX", &text))
    });
    group.finish();
}

fn bench_final_prioritisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_final_prioritisation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let l4all = l4all_dataset(L4AllScale::L1);
    let with = engine_for(&l4all, EvalOptions::default());
    let without = engine_for(
        &l4all,
        EvalOptions::default().without_final_prioritization(),
    );
    let spec = l4all_queries()[8].clone(); // Q9
    let text = spec.with_operator("APPROX");
    group.bench_function("on", |b| {
        b.iter(|| run_query(&with, spec.id, "APPROX", &text))
    });
    group.bench_function("off", |b| {
        b.iter(|| run_query(&without, spec.id, "APPROX", &text))
    });
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_initial_node_batching");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let l4all = l4all_dataset(L4AllScale::L1);
    let spec = l4all_queries()[4].clone(); // Q5: (?X, next+, ?Y)
    for batch in [1usize, 100, 100_000] {
        let engine = engine_for(&l4all, EvalOptions::default().with_batch_size(batch));
        let request = ExecOptions::new().with_limit(100);
        group.bench_with_input(BenchmarkId::new("batch", batch), &spec, |b, spec| {
            b.iter(|| engine.execute(spec.text, &request).expect("query succeeds"))
        });
    }
    group.finish();
}

/// A `BTreeMap`-bucketed reference implementation of `D_R` — the structure
/// the engine used before the indexed bucket queue — kept here so the two
/// can be compared head-to-head on identical workloads.
#[derive(Default)]
struct BTreeDrQueue {
    buckets: std::collections::BTreeMap<(u32, u8), Vec<Tuple>>,
}

impl BTreeDrQueue {
    fn push(&mut self, tuple: Tuple) {
        let key = (tuple.distance, if tuple.is_final { 0 } else { 1 });
        self.buckets.entry(key).or_default().push(tuple);
    }

    fn pop(&mut self) -> Option<Tuple> {
        let (&key, bucket) = self.buckets.iter_mut().next()?;
        let tuple = bucket.pop();
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        tuple
    }
}

/// A mixed push/pop workload shaped like ranked evaluation: bursts of
/// same-distance pushes (neighbour expansion), interleaved pops, distances
/// drifting upward with occasional distance-0 refills.
fn dr_workload() -> Vec<(bool, Tuple)> {
    use omega_automata::StateId;
    use omega_graph::NodeId;
    let mut ops = Vec::with_capacity(60_000);
    let mut seed = 0x5eedu64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as u32
    };
    for i in 0..20_000u32 {
        let base = i / 2_000; // distances drift upward in phases
        let tuple = Tuple {
            start: NodeId(next() % 1_000),
            node: NodeId(next() % 1_000),
            state: StateId(next() % 16),
            distance: if next() % 50 == 0 {
                0
            } else {
                base + next() % 3
            },
            is_final: next() % 10 == 0,
            deferred: false,
        };
        ops.push((true, tuple));
        if i % 3 == 2 {
            ops.push((false, tuple)); // a pop (tuple payload unused)
        }
    }
    ops
}

fn bench_dr_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("dr_queue");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    let ops = dr_workload();
    group.bench_function("bucket", |b| {
        b.iter(|| {
            let mut q = DrQueue::new(true);
            for (push, tuple) in &ops {
                if *push {
                    q.push(*tuple, tuple.distance);
                } else {
                    black_box(q.pop());
                }
            }
            while let Some(t) = q.pop() {
                black_box(t);
            }
        })
    });
    group.bench_function("btreemap", |b| {
        b.iter(|| {
            let mut q = BTreeDrQueue::default();
            for (push, tuple) in &ops {
                if *push {
                    q.push(*tuple);
                } else {
                    black_box(q.pop());
                }
            }
            while let Some(t) = q.pop() {
                black_box(t);
            }
        })
    });
    group.finish();
}

fn bench_csr_adjacency(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_adjacency");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    let dataset = yago_dataset(0.25);
    let frozen = dataset.graph.clone(); // datagen freezes its output
    assert!(frozen.is_frozen());
    // Rebuild the same graph in builder (hash-map) state for comparison.
    let mut builder = GraphStore::new();
    for edge in frozen.edges() {
        builder.add_triple(
            frozen.node_label(edge.source),
            frozen.label_name(edge.label),
            frozen.node_label(edge.target),
        );
    }
    assert!(!builder.is_frozen());
    let labels: Vec<_> = frozen.labels().map(|(id, _)| id).collect();
    let scan = |g: &GraphStore| {
        let mut total = 0usize;
        for node in g.node_ids() {
            for &label in &labels {
                total += g.neighbors(node, label, Direction::Outgoing).len();
                total += g.neighbors(node, label, Direction::Incoming).len();
            }
            total += g.neighbors_any(node, Direction::Outgoing).len();
        }
        total
    };
    assert_eq!(scan(&frozen), scan(&builder));
    group.bench_function("frozen_csr", |b| b.iter(|| black_box(scan(&frozen))));
    group.bench_function("hashmap_builder", |b| b.iter(|| black_box(scan(&builder))));
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_aware,
    bench_disjunction,
    bench_final_prioritisation,
    bench_batch_size,
    bench_dr_queue,
    bench_csr_adjacency
);
criterion_main!(benches);
