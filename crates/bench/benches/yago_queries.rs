//! Figures 10/11: the YAGO query set in exact, APPROX and RELAX modes
//! (top-100 answers for the flexible operators) on the YAGO-like graph.
//!
//! The Criterion bench uses a quarter-scale graph; the `experiments` binary
//! with `--full` uses the full-size synthetic graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_bench::{engine_for, figure10_query_ids, run_query, yago_dataset};
use omega_core::EvalOptions;
use omega_datagen::yago_queries;

fn bench_yago(c: &mut Criterion) {
    let dataset = yago_dataset(0.25);
    let omega = engine_for(&dataset, EvalOptions::default());
    let mut group = c.benchmark_group("fig11_yago");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for spec in yago_queries() {
        if !figure10_query_ids().contains(&spec.id) {
            continue;
        }
        for operator in ["", "APPROX", "RELAX"] {
            let text = spec.with_operator(operator);
            let label = if operator.is_empty() {
                "exact"
            } else {
                operator
            };
            group.bench_with_input(BenchmarkId::new(spec.id, label), &text, |b, text| {
                b.iter(|| run_query(&omega, spec.id, operator, text))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_yago);
criterion_main!(benches);
