//! Figure 6: execution time of the exact L4All queries (run to completion)
//! across the L4All data graphs.
//!
//! The full paper sweep covers L1–L4; the Criterion bench keeps to L1 and L2
//! so `cargo bench` finishes quickly — run the `experiments` binary with
//! `--full` for the complete sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_bench::{engine_for, figure5_query_ids, l4all_dataset, run_query};
use omega_core::EvalOptions;
use omega_datagen::{l4all_queries, L4AllScale};

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_l4all_exact");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for scale in [L4AllScale::L1, L4AllScale::L2] {
        let dataset = l4all_dataset(scale);
        let omega = engine_for(&dataset, EvalOptions::default());
        for spec in l4all_queries() {
            if !figure5_query_ids().contains(&spec.id) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(spec.id, scale.name()), &spec, |b, spec| {
                b.iter(|| run_query(&omega, spec.id, "", spec.text))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
