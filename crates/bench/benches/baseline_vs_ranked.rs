//! Section 4.1 claim: exact regular path query evaluation in Omega is
//! competitive with plain NFA-based (product-automaton BFS) evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_bench::{engine_for, figure5_query_ids, l4all_dataset, run_query};
use omega_core::{parse_query, BaselineEvaluator, EvalOptions};
use omega_datagen::{l4all_queries, L4AllScale};

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_ranked");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let dataset = l4all_dataset(L4AllScale::L1);
    let omega = engine_for(&dataset, EvalOptions::default());
    for spec in l4all_queries() {
        if !figure5_query_ids().contains(&spec.id) {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("ranked", spec.id), &spec, |b, spec| {
            b.iter(|| run_query(&omega, spec.id, "", spec.text))
        });
        let query = parse_query(spec.text).unwrap();
        group.bench_with_input(BenchmarkId::new("bfs", spec.id), &query, |b, query| {
            b.iter(|| {
                let mut bfs = BaselineEvaluator::new(
                    &query.conjuncts[0],
                    &dataset.graph,
                    &dataset.ontology,
                    &EvalOptions::default(),
                )
                .unwrap();
                bfs.run().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
