//! Figure 7: execution time of the APPROX L4All queries (top-100 answers)
//! across the L4All data graphs (L1/L2 in the Criterion bench; use the
//! `experiments` binary with `--full` for L3/L4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_bench::{engine_for, figure5_query_ids, l4all_dataset, run_query};
use omega_core::EvalOptions;
use omega_datagen::{l4all_queries, L4AllScale};

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_l4all_approx");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for scale in [L4AllScale::L1, L4AllScale::L2] {
        let dataset = l4all_dataset(scale);
        let omega = engine_for(&dataset, EvalOptions::default());
        for spec in l4all_queries() {
            if !figure5_query_ids().contains(&spec.id) {
                continue;
            }
            let text = spec.with_operator("APPROX");
            group.bench_with_input(BenchmarkId::new(spec.id, scale.name()), &text, |b, text| {
                b.iter(|| run_query(&omega, spec.id, "APPROX", text))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
