//! Micro-benchmarks of conjunct initialisation (Section 3.3): NFA
//! construction, APPROX/RELAX augmentation and weighted ε-removal for every
//! query expression in the two published query sets.

use criterion::{criterion_group, criterion_main, Criterion};
use omega_automata::{approximate, build_nfa, relax, remove_epsilons, ApproxConfig, RelaxConfig};
use omega_bench::yago_dataset;
use omega_datagen::{l4all_queries, yago_queries};
use omega_regex::parse;

fn regexes() -> Vec<String> {
    l4all_queries()
        .iter()
        .chain(yago_queries().iter())
        .map(|spec| {
            // extract the middle component of "(X, R, Y)"
            let inner = spec.text.split("<-").nth(1).unwrap();
            let inner = inner.trim().trim_start_matches('(').trim_end_matches(')');
            let parts: Vec<&str> = inner.split(',').collect();
            parts[1..parts.len() - 1].join(",").trim().to_owned()
        })
        .collect()
}

fn bench_construction(c: &mut Criterion) {
    let dataset = yago_dataset(0.05);
    let exprs = regexes();
    let mut group = c.benchmark_group("automata_construction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("thompson_and_epsilon_removal", |b| {
        b.iter(|| {
            for expr in &exprs {
                let regex = parse(expr).expect("query regex parses");
                let nfa = build_nfa(&regex, &dataset.graph);
                criterion::black_box(remove_epsilons(&nfa));
            }
        })
    });
    group.bench_function("approx_augmentation", |b| {
        b.iter(|| {
            for expr in &exprs {
                let regex = parse(expr).expect("query regex parses");
                let nfa = build_nfa(&regex, &dataset.graph);
                criterion::black_box(remove_epsilons(&approximate(
                    &nfa,
                    &ApproxConfig::default(),
                )));
            }
        })
    });
    group.bench_function("relax_augmentation", |b| {
        b.iter(|| {
            for expr in &exprs {
                let regex = parse(expr).expect("query regex parses");
                let nfa = build_nfa(&regex, &dataset.graph);
                criterion::black_box(remove_epsilons(&relax(
                    &nfa,
                    &dataset.ontology,
                    &RelaxConfig::default(),
                    &dataset.graph,
                )));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
