//! The experiment driver: regenerates every table and figure of the paper's
//! evaluation section as plain-text tables, and emits a machine-readable
//! `BENCH_N.json` latency/counter report for tracking the engine's
//! performance trajectory across PRs.
//!
//! ```text
//! experiments [FIGURE ...] [--quick | --full] [--yago-scale F]
//!             [--max-scale L1|L2|L3|L4] [--samples N] [--json PATH]
//! experiments snapshot build --out PATH [--dataset l4all|yago]
//!             [--max-scale ..] [--yago-scale F]
//! experiments snapshot inspect PATH
//!
//! FIGURE: fig2 fig3 fig5 fig6 fig7 fig8 fig10 fig11 opt-distance
//!         opt-disjunction prepared parallel baseline startup live overload
//!         serve profile durability bench all
//! ```
//!
//! `--quick` (the default) runs L4All scales L1–L2 and a quarter-scale YAGO
//! graph; `--full` runs all four L4All scales and the full-size synthetic
//! YAGO graph (several minutes). `bench` (included in `all`) writes the JSON
//! report — by default to the first `BENCH_N.json` that does not exist yet,
//! so committed baselines from earlier PRs are never overwritten; `--json`
//! overrides the path explicitly.
//!
//! The `snapshot` subcommand drives the persistence subsystem: `build`
//! generates a dataset, constructs the frozen `Database` and saves its
//! image; `inspect` prints the image's section table (after verifying every
//! checksum) and re-opens it as a `Database`.

use std::path::PathBuf;

/// The first `BENCH_N.json` not already present in the working directory.
fn next_bench_path() -> PathBuf {
    (1..)
        .map(|n| PathBuf::from(format!("BENCH_{n}.json")))
        .find(|p| !p.exists())
        .expect("some BENCH_N.json slot is free")
}

use omega_bench::*;
use omega_core::EvalOptions;
use omega_datagen::L4AllScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("snapshot") {
        snapshot_main(&args[1..]);
        return;
    }
    let mut figures: Vec<String> = Vec::new();
    let mut config = RunConfig::quick();
    let mut json_path = next_bench_path();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = RunConfig::quick(),
            "--full" => config = RunConfig::full(),
            "--yago-scale" => {
                let value = iter.next().expect("--yago-scale needs a value");
                config.yago_scale = value.parse().expect("--yago-scale needs a number");
            }
            "--max-scale" => {
                let value = iter.next().expect("--max-scale needs a value");
                config.max_scale = match value.as_str() {
                    "L1" => L4AllScale::L1,
                    "L2" => L4AllScale::L2,
                    "L3" => L4AllScale::L3,
                    "L4" => L4AllScale::L4,
                    other => panic!("unknown scale {other}"),
                };
            }
            "--samples" => {
                let value = iter.next().expect("--samples needs a count");
                config.samples = value
                    .parse::<usize>()
                    .expect("--samples needs a number")
                    .max(1);
            }
            "--json" => {
                let value = iter.next().expect("--json needs a path");
                json_path = PathBuf::from(value);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [fig2 fig3 fig5 fig6 fig7 fig8 fig10 fig11 \
                     opt-distance opt-disjunction prepared parallel baseline startup live overload serve profile durability bench all] \
                     [--quick|--full] [--yago-scale F] [--max-scale L1..L4] [--samples N] \
                     [--json PATH]\n\
                     \x20      experiments snapshot build --out PATH [--dataset l4all|yago] \
                     [--max-scale L1..L4] [--yago-scale F]\n\
                     \x20      experiments snapshot inspect PATH"
                );
                return;
            }
            other => figures.push(other.to_owned()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_owned());
    }
    let all = figures.iter().any(|f| f == "all");
    let wants = |name: &str| all || figures.iter().any(|f| f == name);
    let options = EvalOptions::default();

    println!(
        "# Omega-RS experiment run (max L4All scale {}, YAGO scale {:.2})\n",
        config.max_scale.name(),
        config.yago_scale
    );

    if wants("fig2") {
        println!("{}", figure2());
    }
    if wants("fig3") {
        println!("{}", figure3(&config));
    }
    // The L4All and YAGO studies feed both the figure tables and the JSON
    // report; run each at most once.
    let need_l4all =
        wants("fig5") || wants("fig6") || wants("fig7") || wants("fig8") || wants("bench");
    let need_yago = wants("fig10") || wants("fig11") || wants("bench");
    let need_multi = wants("parallel") || wants("bench");
    let need_startup = wants("startup") || wants("bench");
    let need_live = wants("live") || wants("bench");
    let need_overload = wants("overload") || wants("bench");
    let need_serve = wants("serve") || wants("bench");
    let need_profile = wants("profile") || wants("bench");
    let need_durability = wants("durability") || wants("bench");
    let l4all_rows = need_l4all.then(|| l4all_study(&config, &options));
    let yago_rows = need_yago.then(|| yago_study(&config, &options));
    let multi_rows = need_multi.then(|| parallel_study(&config, &options));
    let startup_rows = need_startup.then(|| startup_study(&config));
    let live_rows = need_live.then(|| live_study(&config));
    let overload_rows = need_overload.then(|| overload_study(&config));
    let serve_rows = need_serve.then(|| serve_study(&config));
    let profile_rows = need_profile.then(|| profile_study(&config));
    let durability_rows = need_durability.then(|| durability_study(&config));
    if let Some(rows) = &l4all_rows {
        if wants("fig5") {
            println!("{}", figure5(rows));
        }
        if wants("fig6") {
            println!("{}", figure_times(rows, "exact", "Figure 6"));
        }
        if wants("fig7") {
            println!("{}", figure_times(rows, "APPROX", "Figure 7"));
        }
        if wants("fig8") {
            println!("{}", figure_times(rows, "RELAX", "Figure 8"));
        }
    }
    if let Some(rows) = &yago_rows {
        if wants("fig10") {
            println!("{}", figure10(rows));
        }
        if wants("fig11") {
            println!("{}", figure11(rows));
        }
    }
    if let Some(rows) = &multi_rows {
        if wants("parallel") {
            println!("{}", parallel_comparison(rows));
        }
    }
    if let Some(rows) = &startup_rows {
        if wants("startup") {
            println!("{}", startup_comparison(rows));
        }
    }
    if let Some(rows) = &live_rows {
        if wants("live") {
            println!("{}", live_comparison(rows));
        }
    }
    if let Some(rows) = &overload_rows {
        if wants("overload") {
            println!("{}", overload_comparison(rows));
        }
    }
    if let Some(rows) = &serve_rows {
        if wants("serve") {
            println!("{}", serve_comparison(rows));
        }
    }
    if let Some(rows) = &profile_rows {
        if wants("profile") {
            println!("{}", profile_comparison(rows));
        }
    }
    if let Some(rows) = &durability_rows {
        if wants("durability") {
            println!("{}", durability_comparison(rows));
        }
    }
    if wants("bench") {
        let name = json_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("BENCH")
            .to_owned();
        report::write_bench_json(
            &json_path,
            &name,
            &config,
            l4all_rows.as_deref().unwrap_or(&[]),
            yago_rows.as_deref().unwrap_or(&[]),
            multi_rows.as_deref().unwrap_or(&[]),
            startup_rows.as_deref().unwrap_or(&[]),
            live_rows.as_deref().unwrap_or(&[]),
            profile_rows.as_deref().unwrap_or(&[]),
            durability_rows.as_deref().unwrap_or(&[]),
            overload_rows.as_deref().unwrap_or(&[]),
            serve_rows.as_deref().unwrap_or(&[]),
        )
        .unwrap_or_else(|e| panic!("failed to write {}: {e}", json_path.display()));
        println!("wrote {}\n", json_path.display());
    }
    if wants("opt-distance") {
        println!("{}", optimisation_distance_aware(&config));
    }
    if wants("opt-disjunction") {
        println!("{}", optimisation_disjunction(&config));
    }
    if wants("prepared") {
        println!("{}", prepared_amortization(&config));
    }
    if wants("baseline") {
        println!("{}", baseline_comparison(&config));
    }
}

/// The `experiments snapshot build|inspect` subcommand.
fn snapshot_main(args: &[String]) {
    let usage = "usage: experiments snapshot build --out PATH [--dataset l4all|yago] \
                 [--max-scale L1..L4] [--yago-scale F]\n\
                 \x20      experiments snapshot inspect PATH";
    let Some(verb) = args.first() else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    match verb.as_str() {
        "build" => {
            let mut out: Option<PathBuf> = None;
            let mut dataset = "yago".to_owned();
            let mut config = RunConfig::quick();
            let mut iter = args[1..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--out" => out = Some(PathBuf::from(iter.next().expect("--out needs a path"))),
                    "--dataset" => {
                        dataset = iter.next().expect("--dataset needs a value").clone();
                    }
                    "--yago-scale" => {
                        let value = iter.next().expect("--yago-scale needs a value");
                        config.yago_scale = value.parse().expect("--yago-scale needs a number");
                    }
                    "--max-scale" => {
                        let value = iter.next().expect("--max-scale needs a value");
                        config.max_scale = match value.as_str() {
                            "L1" => L4AllScale::L1,
                            "L2" => L4AllScale::L2,
                            "L3" => L4AllScale::L3,
                            "L4" => L4AllScale::L4,
                            other => panic!("unknown scale {other}"),
                        };
                    }
                    other => {
                        eprintln!("unknown argument {other}\n{usage}");
                        std::process::exit(2);
                    }
                }
            }
            let Some(out) = out else {
                eprintln!("snapshot build requires --out PATH\n{usage}");
                std::process::exit(2);
            };
            match snapshot_build(&dataset, &config, &out) {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    eprintln!("snapshot build failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "inspect" => {
            let Some(path) = args.get(1) else {
                eprintln!("snapshot inspect requires a path\n{usage}");
                std::process::exit(2);
            };
            match snapshot_inspect(std::path::Path::new(path)) {
                Ok(report) => println!("{report}"),
                Err(e) => {
                    eprintln!("snapshot inspect failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown snapshot subcommand {other}\n{usage}");
            std::process::exit(2);
        }
    }
}
