//! The experiment driver: regenerates every table and figure of the paper's
//! evaluation section as plain-text tables.
//!
//! ```text
//! experiments [FIGURE ...] [--quick | --full] [--yago-scale F] [--max-scale L1|L2|L3|L4]
//!
//! FIGURE: fig2 fig3 fig5 fig6 fig7 fig8 fig10 fig11 opt-distance opt-disjunction baseline all
//! ```
//!
//! `--quick` (the default) runs L4All scales L1–L2 and a quarter-scale YAGO
//! graph; `--full` runs all four L4All scales and the full-size synthetic
//! YAGO graph (several minutes).

use omega_bench::*;
use omega_core::EvalOptions;
use omega_datagen::L4AllScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<String> = Vec::new();
    let mut config = RunConfig::quick();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = RunConfig::quick(),
            "--full" => config = RunConfig::full(),
            "--yago-scale" => {
                let value = iter.next().expect("--yago-scale needs a value");
                config.yago_scale = value.parse().expect("--yago-scale needs a number");
            }
            "--max-scale" => {
                let value = iter.next().expect("--max-scale needs a value");
                config.max_scale = match value.as_str() {
                    "L1" => L4AllScale::L1,
                    "L2" => L4AllScale::L2,
                    "L3" => L4AllScale::L3,
                    "L4" => L4AllScale::L4,
                    other => panic!("unknown scale {other}"),
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [fig2 fig3 fig5 fig6 fig7 fig8 fig10 fig11 \
                     opt-distance opt-disjunction baseline all] [--quick|--full] \
                     [--yago-scale F] [--max-scale L1..L4]"
                );
                return;
            }
            other => figures.push(other.to_owned()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_owned());
    }
    let all = figures.iter().any(|f| f == "all");
    let wants = |name: &str| all || figures.iter().any(|f| f == name);
    let options = EvalOptions::default();

    println!(
        "# Omega-RS experiment run (max L4All scale {}, YAGO scale {:.2})\n",
        config.max_scale.name(),
        config.yago_scale
    );

    if wants("fig2") {
        println!("{}", figure2());
    }
    if wants("fig3") {
        println!("{}", figure3(&config));
    }
    if wants("fig5") || wants("fig6") || wants("fig7") || wants("fig8") {
        let rows = l4all_study(&config, &options);
        if wants("fig5") {
            println!("{}", figure5(&rows));
        }
        if wants("fig6") {
            println!("{}", figure_times(&rows, "exact", "Figure 6"));
        }
        if wants("fig7") {
            println!("{}", figure_times(&rows, "APPROX", "Figure 7"));
        }
        if wants("fig8") {
            println!("{}", figure_times(&rows, "RELAX", "Figure 8"));
        }
    }
    if wants("fig10") || wants("fig11") {
        let rows = yago_study(&config, &options);
        if wants("fig10") {
            println!("{}", figure10(&rows));
        }
        if wants("fig11") {
            println!("{}", figure11(&rows));
        }
    }
    if wants("opt-distance") {
        println!("{}", optimisation_distance_aware(&config));
    }
    if wants("opt-disjunction") {
        println!("{}", optimisation_disjunction(&config));
    }
    if wants("baseline") {
        println!("{}", baseline_comparison(&config));
    }
}
