//! Machine-readable benchmark reports (`BENCH_N.json`).
//!
//! Every experiment run can emit a JSON file recording per-query wall-clock
//! latency and the evaluator's [`omega_core::EvalStats`] counters, so the performance
//! trajectory of the engine is tracked from PR to PR: compare two
//! `BENCH_N.json` files to see exactly which queries got faster and whether
//! tuple/lookup counts moved with them.
//!
//! The writer is hand-rolled (the build environment has no serde); the
//! emitted structure is stable:
//!
//! ```json
//! {
//!   "bench": "BENCH_1",
//!   "config": { "max_scale": "L2", "yago_scale": 0.25, "samples": 5 },
//!   "queries": [
//!     { "suite": "l4all", "scale": "L1", "id": "Q3", "operator": "APPROX",
//!       "elapsed_ms": 1.234, "samples": 5, "answers": 100,
//!       "exhausted": false, "distances": { "0": 37, "1": 63 },
//!       "stats": { "tuples_added": 123, ... } }
//!   ]
//! }
//! ```
//!
//! `elapsed_ms` is the median over `samples` runs of the query (sub-ms rows
//! spike 2–30x under single-shot timing; the median absorbs that). Rows
//! whose phase is one-shot by construction (the `startup` suite: "open
//! cold" means *first* open) carry `samples: 1`.

use std::io::Write;
use std::path::Path;

use crate::{OverloadRun, QueryRun, RunConfig, ServeRun};

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn query_json(suite: &str, scale: &str, run: &QueryRun) -> String {
    let distances = run
        .distances
        .iter()
        .map(|(d, n)| format!("\"{d}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let stats = &run.stats;
    format!(
        concat!(
            "{{ \"suite\": \"{}\", \"scale\": \"{}\", \"id\": \"{}\", ",
            "\"operator\": \"{}\", \"elapsed_ms\": {:.4}, \"samples\": {}, ",
            "\"answers\": {}, ",
            "\"exhausted\": {}, \"distances\": {{ {} }}, ",
            "\"stats\": {{ \"tuples_added\": {}, \"tuples_processed\": {}, ",
            "\"succ_calls\": {}, \"neighbour_lookups\": {}, \"answers\": {}, ",
            "\"suppressed\": {}, \"restarts\": {}, \"pruned_dead\": {}, ",
            "\"pruned_bound\": {}, \"deferred_expansions\": {}, ",
            "\"worker_panics\": {}, \"sheds\": {}, \"degraded\": {}, ",
            "\"truncation\": {} }} }}"
        ),
        escape(suite),
        escape(scale),
        escape(&run.id),
        escape(&run.operator),
        run.elapsed.as_secs_f64() * 1e3,
        run.samples,
        run.answers,
        run.exhausted,
        distances,
        stats.tuples_added,
        stats.tuples_processed,
        stats.succ_calls,
        stats.neighbour_lookups,
        stats.answers,
        stats.suppressed,
        stats.restarts,
        stats.pruned_dead,
        stats.pruned_bound,
        stats.deferred_expansions,
        stats.worker_panics,
        stats.sheds,
        stats.degraded,
        stats
            .truncation
            .map_or("null".to_owned(), |r| format!("\"{}\"", r.name())),
    )
}

fn overload_json(run: &OverloadRun) -> String {
    format!(
        concat!(
            "{{ \"policy\": \"{}\", \"saturation\": \"{}\", \"clients\": {}, ",
            "\"completed\": {}, \"degraded\": {}, \"sheds\": {}, ",
            "\"rejected\": {}, \"exhausted\": {}, ",
            "\"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}"
        ),
        escape(&run.policy),
        escape(&run.saturation),
        run.clients,
        run.completed,
        run.degraded,
        run.sheds,
        run.rejected,
        run.exhausted,
        run.p50.as_secs_f64() * 1e3,
        run.p99.as_secs_f64() * 1e3,
    )
}

fn serve_json(run: &ServeRun) -> String {
    format!(
        concat!(
            "{{ \"scenario\": \"{}\", \"mode\": \"{}\", \"id\": \"{}\", ",
            "\"connections\": {}, \"issued\": {}, \"completed\": {}, ",
            "\"overloaded\": {}, \"failed\": {}, \"degraded\": {}, ",
            "\"drained\": {}, \"truncated\": {}, \"worker_panics\": {}, ",
            "\"sheds\": {}, \"rejected\": {}, \"answers\": {}, ",
            "\"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, ",
            "\"throughput_rps\": {:.2} }}"
        ),
        escape(&run.scenario),
        escape(&run.mode),
        escape(&run.id),
        run.connections,
        run.issued,
        run.completed,
        run.overloaded,
        run.failed,
        run.degraded,
        run.drained,
        run.truncated,
        run.worker_panics,
        run.sheds,
        run.rejected,
        run.answers,
        run.p50.as_secs_f64() * 1e3,
        run.p99.as_secs_f64() * 1e3,
        run.p999.as_secs_f64() * 1e3,
        run.throughput,
    )
}

/// Serialises an experiment run to the `BENCH_N.json` structure.
///
/// `multi_rows` holds the multi-conjunct parallel study: the `scale` slot of
/// those entries carries the evaluation mode (`"seq"` / `"par"`) instead of
/// a graph scale. `startup_rows` holds the snapshot startup study: there the
/// `scale` slot carries the phase (`rebuild` / `save` / `open_cold` /
/// `open_warm`), `id` the dataset, and `answers` the graph's node count.
/// `live_rows` holds the mutation study: the `scale` slot carries the
/// storage phase (`frozen` / `apply` / `overlay` / `compact` / `compacted`).
/// `profile_rows` holds the per-phase profiling study: the `scale` slot
/// carries the phase name (`parse` / `compile` / `conjunct_<i>` /
/// `rank_join` / `streaming` / `total`) and `elapsed_ms` that phase's
/// duration. `durability_rows` holds the WAL study: the `scale` slot
/// carries the phase (`read` / `apply` / `recovery`) and `answers` the
/// edges applied or records replayed. `overload_rows` is the closed-loop
/// governor study and has its own shape, so it lands in a separate
/// top-level `"overload"` array; `serve_rows` is the network-serving study
/// and lands in a top-level `"serve"` array.
#[allow(clippy::too_many_arguments)]
pub fn bench_json(
    name: &str,
    config: &RunConfig,
    l4all_rows: &[(String, QueryRun)],
    yago_rows: &[QueryRun],
    multi_rows: &[(String, QueryRun)],
    startup_rows: &[(String, QueryRun)],
    live_rows: &[(String, QueryRun)],
    profile_rows: &[(String, QueryRun)],
    durability_rows: &[(String, QueryRun)],
    overload_rows: &[OverloadRun],
    serve_rows: &[ServeRun],
) -> String {
    let mut queries: Vec<String> = Vec::new();
    for (scale, run) in l4all_rows {
        queries.push(query_json("l4all", scale, run));
    }
    for run in yago_rows {
        queries.push(query_json("yago", "-", run));
    }
    for (mode, run) in multi_rows {
        queries.push(query_json("multi", mode, run));
    }
    for (phase, run) in startup_rows {
        queries.push(query_json("startup", phase, run));
    }
    for (phase, run) in live_rows {
        queries.push(query_json("live", phase, run));
    }
    for (phase, run) in profile_rows {
        queries.push(query_json("profile", phase, run));
    }
    for (phase, run) in durability_rows {
        queries.push(query_json("durability", phase, run));
    }
    let overload: Vec<String> = overload_rows.iter().map(overload_json).collect();
    let serve: Vec<String> = serve_rows.iter().map(serve_json).collect();
    format!(
        "{{\n  \"bench\": \"{}\",\n  \"config\": {{ \"max_scale\": \"{}\", \"yago_scale\": {}, \"samples\": {} }},\n  \"queries\": [\n    {}\n  ],\n  \"overload\": [\n    {}\n  ],\n  \"serve\": [\n    {}\n  ]\n}}\n",
        escape(name),
        config.max_scale.name(),
        config.yago_scale,
        config.samples,
        queries.join(",\n    "),
        overload.join(",\n    "),
        serve.join(",\n    ")
    )
}

/// Writes the report to `path`.
#[allow(clippy::too_many_arguments)]
pub fn write_bench_json(
    path: &Path,
    name: &str,
    config: &RunConfig,
    l4all_rows: &[(String, QueryRun)],
    yago_rows: &[QueryRun],
    multi_rows: &[(String, QueryRun)],
    startup_rows: &[(String, QueryRun)],
    live_rows: &[(String, QueryRun)],
    profile_rows: &[(String, QueryRun)],
    durability_rows: &[(String, QueryRun)],
    overload_rows: &[OverloadRun],
    serve_rows: &[ServeRun],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(
        bench_json(
            name,
            config,
            l4all_rows,
            yago_rows,
            multi_rows,
            startup_rows,
            live_rows,
            profile_rows,
            durability_rows,
            overload_rows,
            serve_rows,
        )
        .as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::EvalStats;
    use std::time::Duration;

    fn run() -> QueryRun {
        QueryRun {
            id: "Q3".into(),
            operator: "APPROX".into(),
            elapsed: Duration::from_millis(5),
            samples: 5,
            answers: 2,
            distances: [(0u32, 1usize), (1, 1)].into_iter().collect(),
            exhausted: false,
            stats: EvalStats {
                tuples_added: 10,
                tuples_processed: 9,
                succ_calls: 4,
                neighbour_lookups: 7,
                answers: 2,
                suppressed: 0,
                restarts: 0,
                pruned_dead: 3,
                pruned_bound: 2,
                deferred_expansions: 1,
                worker_panics: 0,
                sheds: 1,
                degraded: true,
                truncation: Some(omega_core::TruncationReason::TupleBudget),
            },
        }
    }

    fn serve_run() -> ServeRun {
        ServeRun {
            mode: "closed".into(),
            scenario: "plain".into(),
            id: "Q9/APPROX".into(),
            connections: 8,
            issued: 64,
            completed: 60,
            overloaded: 3,
            failed: 1,
            degraded: 2,
            drained: 1,
            truncated: 2,
            worker_panics: 0,
            sheds: 5,
            rejected: 4,
            answers: 6000,
            p50: Duration::from_micros(1500),
            p99: Duration::from_micros(9000),
            p999: Duration::from_micros(12000),
            throughput: 123.456,
        }
    }

    fn overload_run() -> OverloadRun {
        OverloadRun {
            policy: "degrade".into(),
            saturation: "4x".into(),
            clients: 16,
            completed: 90,
            degraded: 12,
            sheds: 7,
            rejected: 3,
            exhausted: 1,
            p50: Duration::from_millis(4),
            p99: Duration::from_millis(21),
        }
    }

    #[test]
    fn report_shape_is_stable() {
        let config = RunConfig::quick();
        let json = bench_json(
            "BENCH_1",
            &config,
            &[("L1".into(), run())],
            &[run()],
            &[("seq".into(), run()), ("par".into(), run())],
            &[("rebuild".into(), run()), ("open_cold".into(), run())],
            &[("frozen".into(), run()), ("overlay".into(), run())],
            &[("parse".into(), run()), ("total".into(), run())],
            &[("read".into(), run()), ("recovery".into(), run())],
            &[overload_run()],
            &[serve_run()],
        );
        assert!(json.contains("\"bench\": \"BENCH_1\""));
        assert!(json.contains("\"suite\": \"l4all\""));
        assert!(json.contains("\"suite\": \"yago\""));
        assert!(json.contains("\"suite\": \"multi\""));
        assert!(json.contains("\"suite\": \"startup\""));
        assert!(json.contains("\"suite\": \"live\""));
        assert!(json.contains("\"scale\": \"seq\""));
        assert!(json.contains("\"scale\": \"par\""));
        assert!(json.contains("\"scale\": \"rebuild\""));
        assert!(json.contains("\"scale\": \"open_cold\""));
        assert!(json.contains("\"scale\": \"frozen\""));
        assert!(json.contains("\"scale\": \"overlay\""));
        assert!(json.contains("\"suite\": \"profile\""));
        assert!(json.contains("\"scale\": \"parse\""));
        assert!(json.contains("\"scale\": \"total\""));
        assert!(json.contains("\"suite\": \"durability\""));
        assert!(json.contains("\"scale\": \"read\""));
        assert!(json.contains("\"scale\": \"recovery\""));
        assert!(json.contains("\"elapsed_ms\": 5.0000"));
        assert!(json.contains("\"samples\": 5"));
        assert!(json.contains("\"neighbour_lookups\": 7"));
        assert!(json.contains("\"pruned_dead\": 3"));
        assert!(json.contains("\"pruned_bound\": 2"));
        assert!(json.contains("\"deferred_expansions\": 1"));
        assert!(json.contains("\"worker_panics\": 0"));
        assert!(json.contains("\"sheds\": 1"));
        assert!(json.contains("\"degraded\": true"));
        assert!(json.contains("\"truncation\": \"tuple_budget\""));
        assert!(json.contains("\"distances\": { \"0\": 1, \"1\": 1 }"));
        // Twelve query entries.
        assert_eq!(json.matches("\"id\": \"Q3\"").count(), 12);
        assert!(json.contains("\"overload\": ["));
        assert!(json.contains("\"policy\": \"degrade\""));
        assert!(json.contains("\"saturation\": \"4x\""));
        assert!(json.contains("\"p50_ms\": 4.0000"));
        assert!(json.contains("\"p99_ms\": 21.0000"));
        assert!(json.contains("\"rejected\": 3"));
        assert!(json.contains("\"serve\": ["));
        assert!(json.contains("\"scenario\": \"plain\""));
        assert!(json.contains("\"mode\": \"closed\""));
        assert!(json.contains("\"connections\": 8"));
        assert!(json.contains("\"drained\": 1"));
        assert!(json.contains("\"truncated\": 2"));
        assert!(json.contains("\"worker_panics\": 0, \"sheds\": 5"));
        assert!(json.contains("\"p999_ms\": 12.0000"));
        assert!(json.contains("\"throughput_rps\": 123.46"));
    }

    #[test]
    fn escaping_handles_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }
}
