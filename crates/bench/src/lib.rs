//! # omega-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 4), plus the Criterion micro/macro benchmarks.
//!
//! The `experiments` binary prints the figures as text tables:
//!
//! ```text
//! cargo run -p omega-bench --release --bin experiments -- all --quick
//! cargo run -p omega-bench --release --bin experiments -- fig5 --scales L1,L2
//! ```
//!
//! Each figure has a corresponding function here returning the formatted
//! table, so integration tests can assert on the *shape* of the results
//! (which queries return zero exact answers, which explode under APPROX,
//! which optimisations help) without going through the binary.

// Harness, not engine: specs are compiled into the binary, so a panic here
// is a broken experiment definition surfacing at the first run — the
// engine-side lints (unwrap/expect denied) do not apply.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod report;
pub mod serve;

pub use serve::{serve_comparison, serve_study, ServeRun};

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use omega_core::{
    Database, EvalOptions, EvalStats, ExecOptions, FsyncPolicy, GovernorConfig, OmegaError,
    PreparedQuery, WalConfig,
};
use omega_datagen::{
    generate_l4all, generate_yago, l4all_multi_conjunct_queries, l4all_queries,
    yago_multi_conjunct_queries, yago_queries, Dataset, L4AllConfig, L4AllScale, QuerySpec,
    YagoConfig,
};
use omega_graph::GraphStats;
use omega_obs::Histogram;
use omega_ontology::HierarchyStats;

/// Evaluation methodology constants from Section 4.1: flexible queries fetch
/// the top `TOP_K` answers in `BATCH` batches of ten.
pub const TOP_K: usize = 100;
/// Batch size used when fetching the top-K answers.
pub const BATCH: usize = 10;
/// Live-tuple budget used to reproduce the paper's out-of-memory failures
/// ("?" entries in Figure 10) deterministically.
pub const MEMORY_BUDGET: usize = 2_000_000;

/// Which L4All scales an experiment run covers, and how often each query is
/// sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Largest L4All scale to generate (inclusive).
    pub max_scale: L4AllScale,
    /// Scale factor of the YAGO-like graph.
    pub yago_scale: f64,
    /// Timed runs per query; the reported latency is the median (sub-ms
    /// rows spike 2–30x under single-shot timing). Counters and answers are
    /// deterministic across runs and come from the median run.
    pub samples: usize,
}

impl RunConfig {
    /// Quick configuration: L1–L2 and a small YAGO graph. Finishes in well
    /// under a minute on a laptop.
    pub fn quick() -> RunConfig {
        RunConfig {
            max_scale: L4AllScale::L2,
            yago_scale: 0.25,
            samples: 5,
        }
    }

    /// Full configuration: all four L4All scales and the default YAGO size.
    pub fn full() -> RunConfig {
        RunConfig {
            max_scale: L4AllScale::L4,
            yago_scale: 1.0,
            samples: 5,
        }
    }

    /// The L4All scales included in this configuration.
    pub fn scales(&self) -> Vec<L4AllScale> {
        L4AllScale::all()
            .into_iter()
            .take_while(|s| s.timelines() <= self.max_scale.timelines())
            .collect()
    }
}

/// The result of one timed query run.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Query identifier (paper numbering).
    pub id: String,
    /// Operator applied ("exact", "APPROX" or "RELAX").
    pub operator: String,
    /// Wall-clock time: the median over `samples` timed runs.
    pub elapsed: Duration,
    /// Number of timed runs the reported latency is the median of.
    pub samples: usize,
    /// Number of answers returned.
    pub answers: usize,
    /// Number of answers per non-zero distance.
    pub distances: BTreeMap<u32, usize>,
    /// Whether the run aborted on the memory budget (the paper's "?").
    pub exhausted: bool,
    /// Evaluator counters accumulated over the run.
    pub stats: EvalStats,
}

impl QueryRun {
    /// Formats the distance breakdown the way Figure 5 does:
    /// `1 (32) 2 (67)` means 32 answers at distance 1 and 67 at distance 2.
    pub fn distance_summary(&self) -> String {
        self.distances
            .iter()
            .filter(|(d, _)| **d > 0)
            .map(|(d, n)| format!("{d} ({n})"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Builds a shared database over a dataset with the evaluation options used
/// in the performance study (unit costs, batch size 100) plus a memory
/// budget. Queries run through the prepared-statement cache, so repeated
/// runs of the same text pay compilation once.
pub fn engine_for(dataset: &Dataset, options: EvalOptions) -> Database {
    Database::with_options(
        dataset.graph.clone(),
        dataset.ontology.clone(),
        options.with_max_tuples(Some(MEMORY_BUDGET)),
    )
}

/// Generates (and caches nothing — generation is deterministic and fast
/// relative to the large-query runtimes) the L4All dataset at `scale`.
pub fn l4all_dataset(scale: L4AllScale) -> Dataset {
    generate_l4all(&L4AllConfig::at_scale(scale))
}

/// Generates the YAGO-like dataset at the given scale factor.
pub fn yago_dataset(scale: f64) -> Dataset {
    generate_yago(&YagoConfig::scaled(scale))
}

/// Runs one query with the paper's methodology: exact queries run to
/// completion; APPROX/RELAX queries fetch the top-[`TOP_K`] answers in
/// batches of [`BATCH`].
///
/// Evaluation drives the service API — `prepare` (cached) plus a streaming
/// [`omega_core::Answers`] handle — so the evaluator's counters are
/// available afterwards and repeated runs skip recompilation.
pub fn run_query(db: &Database, id: &str, operator: &str, text: &str) -> QueryRun {
    let mut request = ExecOptions::new();
    if !operator.is_empty() {
        request = request.with_limit(TOP_K);
    }
    run_query_with(db, id, operator, text, &request)
}

/// [`run_query`] repeated `samples` times, reporting the median run (by
/// latency). Evaluation is deterministic, so answers and counters agree
/// across the runs; only the wall clock varies.
pub fn run_query_sampled(
    db: &Database,
    id: &str,
    operator: &str,
    text: &str,
    request: &ExecOptions,
    samples: usize,
) -> QueryRun {
    let samples = samples.max(1);
    let mut runs: Vec<QueryRun> = (0..samples)
        .map(|_| run_query_with(db, id, operator, text, request))
        .collect();
    runs.sort_by_key(|r| r.elapsed);
    debug_assert!(
        runs.iter().all(|r| r.answers == runs[0].answers),
        "sampled runs of {id} disagree on answer counts"
    );
    let mut median = runs.swap_remove(runs.len() / 2);
    median.samples = samples;
    median
}

/// [`run_query`] with an explicit request (limit, deadline, parallelism
/// overrides, …). Single-shot: `samples` is 1.
pub fn run_query_with(
    db: &Database,
    id: &str,
    operator: &str,
    text: &str,
    request: &ExecOptions,
) -> QueryRun {
    let start = Instant::now();
    let mut distances = BTreeMap::new();
    let mut exhausted = false;
    let mut answers = 0usize;

    let prepared = match db.prepare(text) {
        Ok(p) => p,
        Err(e) => panic!("query {id} failed: {e}"),
    };
    let mut stream = prepared.answers(request);
    loop {
        match stream.next_answer() {
            Ok(Some(a)) => {
                answers += 1;
                *distances.entry(a.distance).or_insert(0) += 1;
            }
            Ok(None) => break,
            Err(OmegaError::ResourceExhausted { .. }) => {
                exhausted = true;
                break;
            }
            Err(other) => panic!("query {id} failed: {other}"),
        }
    }
    let stats = stream.stats();
    QueryRun {
        id: id.to_owned(),
        operator: if operator.is_empty() {
            "exact".to_owned()
        } else {
            operator.to_owned()
        },
        elapsed: start.elapsed(),
        samples: 1,
        answers,
        distances,
        exhausted,
        stats,
    }
}

/// Runs the exact, APPROX and RELAX versions of a query, median-of-`samples`
/// each (exact queries drain fully; flexible ones fetch the top [`TOP_K`]).
pub fn run_all_operators(db: &Database, spec: &QuerySpec, samples: usize) -> Vec<QueryRun> {
    ["", "APPROX", "RELAX"]
        .iter()
        .map(|op| {
            let mut request = ExecOptions::new();
            if !op.is_empty() {
                request = request.with_limit(TOP_K);
            }
            run_query_sampled(db, spec.id, op, &spec.with_operator(op), &request, samples)
        })
        .collect()
}

fn format_duration(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

// ----------------------------------------------------------------------
// Figure generators
// ----------------------------------------------------------------------

/// Figure 2: characteristics of the L4All class hierarchies.
pub fn figure2() -> String {
    let dataset = generate_l4all(&L4AllConfig {
        timelines: 1,
        ..L4AllConfig::default()
    });
    let stats = HierarchyStats::compute_all(&dataset.ontology, &dataset.graph);
    let mut out = String::from("Figure 2: class hierarchies of the L4All ontology\n");
    out.push_str(&format!(
        "{:<42} {:>5} {:>16} {:>8}\n",
        "Class hierarchy", "Depth", "Average fan-out", "Classes"
    ));
    for h in stats {
        out.push_str(&format!(
            "{:<42} {:>5} {:>16.2} {:>8}\n",
            h.root_label, h.depth, h.average_fanout, h.classes
        ));
    }
    out
}

/// Figure 3: node and edge counts of the L4All graphs.
pub fn figure3(config: &RunConfig) -> String {
    let mut out = String::from("Figure 3: characteristics of the L4All data graphs\n");
    out.push_str(&format!(
        "{:<6} {:>10} {:>10} {:>12}\n",
        "Graph", "Timelines", "Nodes", "Edges"
    ));
    for scale in config.scales() {
        let dataset = l4all_dataset(scale);
        let stats = GraphStats::compute(&dataset.graph);
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>12}\n",
            scale.name(),
            scale.timelines(),
            stats.nodes,
            stats.edges
        ));
    }
    out.push_str("(published: L1 2,691/19,856  L2 15,188/118,088  L3 68,544/558,972  L4 240,519/1,861,959)\n");
    out
}

/// The L4All queries the paper reports flexible results for in Figure 5.
pub fn figure5_query_ids() -> [&'static str; 6] {
    ["Q3", "Q8", "Q9", "Q10", "Q11", "Q12"]
}

/// Figures 5–8 share the same runs: every reported query, in all three
/// operator modes, on every scale. Returns one row per (scale, query, mode).
pub fn l4all_study(config: &RunConfig, options: &EvalOptions) -> Vec<(String, QueryRun)> {
    let ids = figure5_query_ids();
    let mut rows = Vec::new();
    for scale in config.scales() {
        let dataset = l4all_dataset(scale);
        let omega = engine_for(&dataset, options.clone());
        for spec in l4all_queries() {
            if !ids.contains(&spec.id) {
                continue;
            }
            for run in run_all_operators(&omega, &spec, config.samples) {
                rows.push((scale.name().to_owned(), run));
            }
        }
    }
    rows
}

/// Figure 5: number of answers (and their distance breakdown) per query and
/// data graph.
pub fn figure5(rows: &[(String, QueryRun)]) -> String {
    let mut out = String::from(
        "Figure 5: results per query and data graph (answers; non-zero-distance breakdown)\n",
    );
    out.push_str(&format!(
        "{:<5} {:<5} {:<8} {:>8}  {}\n",
        "Graph", "Query", "Mode", "Answers", "distance (count)"
    ));
    for (scale, run) in rows {
        out.push_str(&format!(
            "{:<5} {:<5} {:<8} {:>8}  {}\n",
            scale,
            run.id,
            run.operator,
            if run.exhausted {
                "?".to_owned()
            } else {
                run.answers.to_string()
            },
            run.distance_summary()
        ));
    }
    out
}

/// Figures 6, 7, 8: execution times (ms) for exact / APPROX / RELAX L4All
/// queries.
pub fn figure_times(rows: &[(String, QueryRun)], operator: &str, figure: &str) -> String {
    let mut out = format!("{figure}: execution time (ms), {operator} queries\n");
    let mut scales: Vec<&str> = rows.iter().map(|(s, _)| s.as_str()).collect();
    scales.dedup();
    out.push_str(&format!("{:<6}", "Query"));
    for s in &scales {
        out.push_str(&format!(" {:>10}", s));
    }
    out.push('\n');
    for id in figure5_query_ids() {
        out.push_str(&format!("{id:<6}"));
        for scale in &scales {
            let cell = rows
                .iter()
                .find(|(s, run)| s == scale && run.id == id && run.operator == operator)
                .map(|(_, run)| {
                    if run.exhausted {
                        "?".to_owned()
                    } else {
                        format_duration(run.elapsed)
                    }
                })
                .unwrap_or_default();
            out.push_str(&format!(" {cell:>10}"));
        }
        out.push('\n');
    }
    out
}

/// The YAGO queries reported in Figures 10 and 11.
pub fn figure10_query_ids() -> [&'static str; 5] {
    ["Q2", "Q3", "Q4", "Q5", "Q9"]
}

/// Runs the YAGO study (Figures 10 and 11).
pub fn yago_study(config: &RunConfig, options: &EvalOptions) -> Vec<QueryRun> {
    let dataset = yago_dataset(config.yago_scale);
    let omega = engine_for(&dataset, options.clone());
    let mut rows = Vec::new();
    for spec in yago_queries() {
        if !figure10_query_ids().contains(&spec.id) {
            continue;
        }
        rows.extend(run_all_operators(&omega, &spec, config.samples));
    }
    rows
}

/// Figure 10: YAGO answer counts and distance breakdowns ("?" = memory
/// budget exhausted).
pub fn figure10(rows: &[QueryRun]) -> String {
    let mut out =
        String::from("Figure 10: YAGO query results (answers; non-zero-distance breakdown)\n");
    out.push_str(&format!(
        "{:<5} {:<8} {:>8}  {}\n",
        "Query", "Mode", "Answers", "distance (count)"
    ));
    for run in rows {
        out.push_str(&format!(
            "{:<5} {:<8} {:>8}  {}\n",
            run.id,
            run.operator,
            if run.exhausted {
                "?".to_owned()
            } else {
                run.answers.to_string()
            },
            run.distance_summary()
        ));
    }
    out
}

/// Figure 11: YAGO execution times (ms).
pub fn figure11(rows: &[QueryRun]) -> String {
    let mut out = String::from("Figure 11: YAGO execution times (ms)\n");
    out.push_str(&format!(
        "{:<6} {:>10} {:>10} {:>10}\n",
        "Query", "exact", "APPROX", "RELAX"
    ));
    for id in figure10_query_ids() {
        let cell = |mode: &str| {
            rows.iter()
                .find(|r| r.id == id && r.operator == mode)
                .map(|r| {
                    if r.exhausted {
                        "?".to_owned()
                    } else {
                        format_duration(r.elapsed)
                    }
                })
                .unwrap_or_default()
        };
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>10}\n",
            id,
            cell("exact"),
            cell("APPROX"),
            cell("RELAX")
        ));
    }
    out
}

/// Section 4.3, first optimisation: distance-aware retrieval. Reports the
/// time for the APPROX versions of L4All Q3/Q9 and YAGO Q2/Q3 with the
/// optimisation off and on.
pub fn optimisation_distance_aware(config: &RunConfig) -> String {
    let mut out = String::from(
        "Section 4.3 (distance-aware retrieval): APPROX top-100 time (ms), off vs on\n",
    );
    out.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>9}\n",
        "Query", "baseline", "distance-aware", "speed-up"
    ));
    let l4all = l4all_dataset(config.scales().last().copied().unwrap_or(L4AllScale::L1));
    let yago = yago_dataset(config.yago_scale);
    let cases: Vec<(&str, &Dataset, QuerySpec)> = vec![
        ("L4All Q3", &l4all, l4all_queries()[2].clone()),
        ("L4All Q9", &l4all, l4all_queries()[8].clone()),
        ("YAGO Q2", &yago, yago_queries()[1].clone()),
        ("YAGO Q3", &yago, yago_queries()[2].clone()),
    ];
    for (name, dataset, spec) in cases {
        let baseline_engine = engine_for(dataset, EvalOptions::default());
        let optimised_engine =
            engine_for(dataset, EvalOptions::default().with_distance_aware(true));
        let text = spec.with_operator("APPROX");
        let base = run_query(&baseline_engine, spec.id, "APPROX", &text);
        let opt = run_query(&optimised_engine, spec.id, "APPROX", &text);
        let speedup = base.elapsed.as_secs_f64() / opt.elapsed.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "{:<22} {:>12} {:>12} {:>8.1}x\n",
            name,
            format_duration(base.elapsed),
            format_duration(opt.elapsed),
            speedup
        ));
    }
    out
}

/// Section 4.3, second optimisation: replacing alternation by disjunction,
/// measured on YAGO Q9 (the paper's example).
pub fn optimisation_disjunction(config: &RunConfig) -> String {
    let mut out = String::from(
        "Section 4.3 (alternation -> disjunction): APPROX top-100 time (ms), off vs on\n",
    );
    let yago = yago_dataset(config.yago_scale);
    let spec = yago_queries()[8].clone();
    let text = spec.with_operator("APPROX");
    let plain_engine = engine_for(&yago, EvalOptions::default());
    let optimised_engine = engine_for(
        &yago,
        EvalOptions::default().with_disjunction_decomposition(true),
    );
    let base = run_query(&plain_engine, spec.id, "APPROX", &text);
    let opt = run_query(&optimised_engine, spec.id, "APPROX", &text);
    out.push_str(&format!(
        "YAGO Q9: baseline {} ms, decomposed {} ms ({:.1}x), answers {} vs {}\n",
        format_duration(base.elapsed),
        format_duration(opt.elapsed),
        base.elapsed.as_secs_f64() / opt.elapsed.as_secs_f64().max(1e-9),
        base.answers,
        opt.answers
    ));
    out
}

/// Prepared-query amortization: repeated execution of the same flexible
/// query with per-call compilation (the old `Omega::execute` behaviour)
/// versus compile-once [`PreparedQuery`] reuse. The automata construction
/// (Thompson + APPROX augmentation + ε-removal) dominates small-query
/// latency, so the prepared path should win on every repeated query.
pub fn prepared_amortization(config: &RunConfig) -> String {
    const ITERS: usize = 20;
    let scale = config.scales().last().copied().unwrap_or(L4AllScale::L1);
    let dataset = l4all_dataset(scale);
    let db = engine_for(&dataset, EvalOptions::default());
    let request = ExecOptions::new().with_limit(TOP_K);
    let drain = |prepared: &PreparedQuery| {
        let mut stream = prepared.answers(&request);
        loop {
            match stream.next_answer() {
                Ok(Some(_)) => {}
                Ok(None) | Err(OmegaError::ResourceExhausted { .. }) => break,
                Err(other) => panic!("amortization query failed: {other}"),
            }
        }
    };
    let mut out = format!(
        "Prepared-query amortization ({}): APPROX top-{TOP_K}, {ITERS} executions (total ms)\n",
        scale.name()
    );
    out.push_str(&format!(
        "{:<6} {:>12} {:>12} {:>9}\n",
        "Query", "one-shot", "prepared", "speed-up"
    ));
    for spec in l4all_queries() {
        if !figure5_query_ids().contains(&spec.id) {
            continue;
        }
        let text = spec.with_operator("APPROX");
        let start = Instant::now();
        for _ in 0..ITERS {
            drain(&db.prepare_uncached(&text).expect("query compiles"));
        }
        let one_shot = start.elapsed();
        let prepared = db.prepare_uncached(&text).expect("query compiles");
        let start = Instant::now();
        for _ in 0..ITERS {
            drain(&prepared);
        }
        let reused = start.elapsed();
        out.push_str(&format!(
            "{:<6} {:>12} {:>12} {:>8.2}x\n",
            spec.id,
            format_duration(one_shot),
            format_duration(reused),
            one_shot.as_secs_f64() / reused.as_secs_f64().max(1e-9)
        ));
    }
    out
}

/// Runs the multi-conjunct query sets sequentially (`seq`) and with
/// parallel conjunct workers (`par`), on the largest configured L4All scale
/// and the YAGO graph. Both the exact and the APPROX variants (the operator
/// applied to *every* conjunct) fetch the top [`TOP_K`] answers — the
/// interactive workload the paper's methodology models; full exact drains
/// of the rank join are quadratic in the buffered streams and not
/// representative. Each row is tagged with its mode so the JSON report
/// keeps both sides.
pub fn parallel_study(config: &RunConfig, options: &EvalOptions) -> Vec<(String, QueryRun)> {
    let l4all = l4all_dataset(config.scales().last().copied().unwrap_or(L4AllScale::L1));
    let yago = yago_dataset(config.yago_scale);
    let cases: Vec<(&Dataset, QuerySpec)> = l4all_multi_conjunct_queries()
        .into_iter()
        .map(|spec| (&l4all, spec))
        .chain(
            yago_multi_conjunct_queries()
                .into_iter()
                .map(|spec| (&yago, spec)),
        )
        .collect();
    let mut rows = Vec::new();
    for (mode, parallel) in [("seq", false), ("par", true)] {
        let l4all_db = engine_for(&l4all, options.clone().with_parallel_conjuncts(parallel));
        let yago_db = engine_for(&yago, options.clone().with_parallel_conjuncts(parallel));
        for (dataset, spec) in &cases {
            let db = if std::ptr::eq(*dataset, &l4all) {
                &l4all_db
            } else {
                &yago_db
            };
            for operator in ["", "APPROX"] {
                let text = spec.with_operator_everywhere(operator);
                // Top-K in *both* modes: full exact drains of the rank join
                // are quadratic in the buffered streams and not what the
                // interactive workload looks like.
                let request = ExecOptions::new().with_limit(TOP_K);
                rows.push((
                    mode.to_owned(),
                    run_query_sampled(db, spec.id, operator, &text, &request, config.samples),
                ));
            }
        }
    }
    rows
}

/// Formats the [`parallel_study`] rows as a sequential-vs-parallel
/// comparison table, checking that both modes returned the same number of
/// answers (they must: parallel evaluation is answer-identical).
pub fn parallel_comparison(rows: &[(String, QueryRun)]) -> String {
    let mut out = String::from(
        "Parallel conjunct evaluation: multi-conjunct queries, sequential vs parallel (ms)\n",
    );
    out.push_str(&format!(
        "{:<6} {:<8} {:>10} {:>10} {:>9} {:>9}\n",
        "Query", "Mode", "seq", "par", "speed-up", "answers"
    ));
    let find = |mode: &str, id: &str, operator: &str| {
        rows.iter()
            .find(|(m, r)| m == mode && r.id == id && r.operator == operator)
            .map(|(_, r)| r)
    };
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for (_, run) in rows {
        let key = (run.id.as_str(), run.operator.as_str());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let (Some(seq), Some(par)) = (find("seq", key.0, key.1), find("par", key.0, key.1)) else {
            continue;
        };
        let answers = if seq.answers == par.answers {
            seq.answers.to_string()
        } else {
            format!("MISMATCH {}≠{}", seq.answers, par.answers)
        };
        out.push_str(&format!(
            "{:<6} {:<8} {:>10} {:>10} {:>8.2}x {:>9}\n",
            seq.id,
            seq.operator,
            format_duration(seq.elapsed),
            format_duration(par.elapsed),
            seq.elapsed.as_secs_f64() / par.elapsed.as_secs_f64().max(1e-9),
            answers,
        ));
    }
    out
}

/// The per-phase profiling study: one exact query, the flexible workhorse
/// (Q9 APPROX), and a multi-conjunct query, each executed once with
/// [`ExecOptions::with_profile`] so the engine records where the time went.
/// One row per (query, phase); the row's scale slot carries the phase name
/// (`parse` / `compile` / `conjunct_<i>` / `rank_join` / `streaming` /
/// `total`) and `elapsed` that phase's duration, so the rows flow into
/// `BENCH_N.json` under a `profile` suite unchanged.
pub fn profile_study(config: &RunConfig) -> Vec<(String, QueryRun)> {
    let scale = config.scales().first().copied().unwrap_or(L4AllScale::L1);
    let dataset = l4all_dataset(scale);
    let db = engine_for(&dataset, EvalOptions::default());
    let queries = l4all_queries();
    let multi = l4all_multi_conjunct_queries();
    let cases: Vec<(&str, &str, String)> = vec![
        (queries[0].id, "", queries[0].text.to_owned()),
        (queries[8].id, "APPROX", queries[8].with_operator("APPROX")),
        (
            multi[0].id,
            "APPROX",
            multi[0].with_operator_everywhere("APPROX"),
        ),
    ];
    let mut rows = Vec::new();
    for (id, operator, text) in cases {
        let mut request = ExecOptions::new().with_profile(true);
        if !operator.is_empty() {
            request = request.with_limit(TOP_K);
        }
        let prepared = db.prepare(&text).expect("profile study query compiles");
        let mut stream = prepared.answers(&request);
        let mut answers = 0usize;
        let mut distances = BTreeMap::new();
        loop {
            match stream.next_answer() {
                Ok(Some(a)) => {
                    answers += 1;
                    *distances.entry(a.distance).or_insert(0) += 1;
                }
                Ok(None) | Err(OmegaError::ResourceExhausted { .. }) => break,
                Err(other) => panic!("profile study query {id} failed: {other}"),
            }
        }
        let stats = stream.stats();
        let profile = stream
            .profile()
            .cloned()
            .expect("profile requested and stream finished");
        for phase in profile.phases() {
            rows.push((
                phase.name.clone(),
                QueryRun {
                    id: id.to_owned(),
                    operator: if operator.is_empty() {
                        "exact".to_owned()
                    } else {
                        operator.to_owned()
                    },
                    elapsed: Duration::from_nanos(phase.nanos),
                    samples: 1,
                    answers,
                    distances: distances.clone(),
                    exhausted: false,
                    stats,
                },
            ));
        }
    }
    rows
}

/// Formats the [`profile_study`] rows as a per-phase breakdown table.
pub fn profile_comparison(rows: &[(String, QueryRun)]) -> String {
    let mut out = String::from("Per-phase query profile (ExecOptions::with_profile; ms)\n");
    out.push_str(&format!(
        "{:<6} {:<8} {:<14} {:>12} {:>7}\n",
        "Query", "Mode", "Phase", "ms", "share"
    ));
    for (phase, run) in rows {
        let total = rows
            .iter()
            .find(|(p, r)| p == "total" && r.id == run.id && r.operator == run.operator)
            .map(|(_, r)| r.elapsed)
            .unwrap_or(run.elapsed)
            .max(Duration::from_nanos(1));
        out.push_str(&format!(
            "{:<6} {:<8} {:<14} {:>12.3} {:>6.1}%\n",
            run.id,
            run.operator,
            phase,
            run.elapsed.as_secs_f64() * 1e3,
            run.elapsed.as_secs_f64() * 100.0 / total.as_secs_f64(),
        ));
    }
    out
}

/// Startup-cost study for the snapshot subsystem: how long it takes to have
/// a query-ready [`Database`] by (a) **rebuilding** — regenerating the
/// dataset and constructing the frozen engine, the per-process tax every
/// cold start without a snapshot pays (the paper's YAGO import plays this
/// role in the real system), (b) saving a snapshot image, (c) opening that
/// image **cold** (first open after the write: pays validation, mapping
/// and first-touch costs — the file's pages are still in the page cache,
/// so a truly disk-cold open would additionally pay the sequential read)
/// and (d) opening it again **warm** (everything cached, the steady state
/// for map-many serving).
///
/// Rows reuse the [`QueryRun`] shape so they flow into `BENCH_N.json`
/// unchanged: the first tuple slot carries the phase
/// (`rebuild`/`save`/`open_cold`/`open_warm`), `id` names the dataset, and
/// `answers` records the node count as a sanity anchor. After each open the
/// same APPROX probe query runs on both databases and must agree — a
/// snapshot that loads fast but answers differently would be worthless.
pub fn startup_study(config: &RunConfig) -> Vec<(String, QueryRun)> {
    let scale = config.scales().last().copied().unwrap_or(L4AllScale::L1);
    let yago_scale = config.yago_scale;
    #[allow(clippy::type_complexity)]
    let cases: Vec<(String, Box<dyn Fn() -> Dataset>, String)> = vec![
        (
            format!("l4all-{}", scale.name()),
            Box::new(move || l4all_dataset(scale)),
            l4all_queries()[8].with_operator("APPROX"),
        ),
        (
            "yago".to_owned(),
            Box::new(move || yago_dataset(yago_scale)),
            yago_queries()[1].with_operator("APPROX"),
        ),
    ];
    let mut rows = Vec::new();
    let probe_request = ExecOptions::new().with_limit(TOP_K);
    for (name, generate, probe) in &cases {
        // Rebuild: everything a fresh process does without a snapshot —
        // produce the graph + ontology and construct the frozen engine.
        let start = Instant::now();
        let dataset = generate();
        let rebuilt = engine_for(&dataset, EvalOptions::default());
        let rebuild_elapsed = start.elapsed();
        drop(dataset);

        let nodes = rebuilt.graph().node_count();
        let row = |phase: &str, elapsed: Duration| {
            (
                phase.to_owned(),
                QueryRun {
                    id: name.clone(),
                    operator: "startup".to_owned(),
                    elapsed,
                    // Startup phases are one-shot by construction ("open
                    // cold" means the *first* open after the write).
                    samples: 1,
                    answers: nodes,
                    distances: BTreeMap::new(),
                    exhausted: false,
                    stats: EvalStats::default(),
                },
            )
        };
        rows.push(row("rebuild", rebuild_elapsed));

        let path = std::env::temp_dir().join(format!(
            "omega-startup-{}-{name}.snapshot",
            std::process::id()
        ));
        let start = Instant::now();
        rebuilt.save_snapshot(&path).expect("snapshot save");
        rows.push(row("save", start.elapsed()));

        let start = Instant::now();
        let cold = Database::open_snapshot_with(
            &path,
            EvalOptions::default().with_max_tuples(Some(MEMORY_BUDGET)),
        )
        .expect("snapshot open (cold)");
        rows.push(row("open_cold", start.elapsed()));

        let start = Instant::now();
        let warm = Database::open_snapshot_with(
            &path,
            EvalOptions::default().with_max_tuples(Some(MEMORY_BUDGET)),
        )
        .expect("snapshot open (warm)");
        rows.push(row("open_warm", start.elapsed()));

        // Answer-equality sanity probe: rebuilt vs snapshot-backed.
        let reference = run_query_with(&rebuilt, name, "APPROX", probe, &probe_request);
        for db in [&cold, &warm] {
            let got = run_query_with(db, name, "APPROX", probe, &probe_request);
            assert_eq!(
                (got.answers, &got.distances),
                (reference.answers, &reference.distances),
                "snapshot-backed database diverged on {name}"
            );
        }
        drop((cold, warm));
        std::fs::remove_file(&path).ok();
    }
    rows
}

/// Formats the [`startup_study`] rows as a rebuild-vs-open table.
pub fn startup_comparison(rows: &[(String, QueryRun)]) -> String {
    let mut out = String::from("Startup: query-ready Database, rebuild vs snapshot open (ms)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}\n",
        "Dataset", "rebuild", "save", "open cold", "open warm", "cold x", "warm x"
    ));
    let find = |phase: &str, id: &str| {
        rows.iter()
            .find(|(p, r)| p == phase && r.id == id)
            .map(|(_, r)| r.elapsed)
    };
    let mut seen: Vec<&str> = Vec::new();
    for (_, run) in rows {
        if seen.contains(&run.id.as_str()) {
            continue;
        }
        seen.push(&run.id);
        let (Some(rebuild), Some(save), Some(cold), Some(warm)) = (
            find("rebuild", &run.id),
            find("save", &run.id),
            find("open_cold", &run.id),
            find("open_warm", &run.id),
        ) else {
            continue;
        };
        out.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>8.1}x {:>8.1}x\n",
            run.id,
            format_duration(rebuild),
            format_duration(save),
            format_duration(cold),
            format_duration(warm),
            rebuild.as_secs_f64() / cold.as_secs_f64().max(1e-9),
            rebuild.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Live-mutation study (epoch-pinned delta overlay)
// ----------------------------------------------------------------------

/// The live-mutation study at the largest configured L4All scale: the
/// Figure 5 queries timed against the same [`Database`] in three storage
/// states, with the mutation machinery timed in between.
///
/// Phases (carried in the row's scale slot):
///
/// * `frozen` — the pristine frozen store. The overlay exists but is empty,
///   so this measures the mutable read path's overhead over the plain CSR
///   scans of earlier reports (the `l4all` suite).
/// * `apply` — landing ~1% of the graph's edge count as fresh edges, then
///   deleting half of them again (`answers` = edges added + removed).
/// * `overlay` — the queries with that live delta overlay in place.
/// * `compact` — folding the overlay into a fresh frozen CSR.
/// * `compacted` — the queries once more on the compacted store.
pub fn live_study(config: &RunConfig) -> Vec<(String, QueryRun)> {
    let ids = figure5_query_ids();
    let dataset = l4all_dataset(config.max_scale);
    let db = engine_for(&dataset, EvalOptions::default());
    let specs: Vec<QuerySpec> = l4all_queries()
        .into_iter()
        .filter(|spec| ids.contains(&spec.id))
        .collect();

    let mut rows = Vec::new();
    let run_phase = |phase: &str, db: &Database, rows: &mut Vec<(String, QueryRun)>| {
        for spec in &specs {
            for op in ["", "APPROX"] {
                if !op.is_empty() && !spec.flexible_in_study {
                    continue;
                }
                let mut request = ExecOptions::new();
                if !op.is_empty() {
                    request = request.with_limit(TOP_K);
                }
                let text = spec.with_operator(op);
                rows.push((
                    phase.to_owned(),
                    run_query_sampled(db, spec.id, op, &text, &request, config.samples),
                ));
            }
        }
    };

    run_phase("frozen", &db, &mut rows);

    // ~1% of the base edge count in fresh edges, chained through the
    // existing labels so every committed query's label scan has to merge
    // the overlay; half are deleted again so tombstones are exercised too.
    let extra = (db.graph().edge_count() / 100).clamp(64, 4096);
    let labels: Vec<String> = db
        .graph()
        .labels()
        .map(|(_, name)| name.to_owned())
        .collect();
    let mutation_row = |id: &str, elapsed: Duration, edges: u64| QueryRun {
        id: id.to_owned(),
        operator: "exact".to_owned(),
        elapsed,
        samples: 1,
        answers: edges as usize,
        distances: BTreeMap::new(),
        exhausted: false,
        stats: EvalStats::default(),
    };

    let start = Instant::now();
    let mut batch = db.begin_mutation();
    for i in 0..extra {
        let label = &labels[i % labels.len()];
        batch.add(
            &format!("live-extra-{i}"),
            label,
            &format!("live-extra-{}", i + 1),
        );
    }
    let added = db.apply(&batch).expect("live study: apply adds");
    let mut removals = db.begin_mutation();
    for i in 0..extra / 2 {
        let label = &labels[i % labels.len()];
        removals.remove(
            &format!("live-extra-{i}"),
            label,
            &format!("live-extra-{}", i + 1),
        );
    }
    let removed = db.apply(&removals).expect("live study: apply removes");
    let landed = added.added + added.removed + removed.added + removed.removed;
    rows.push((
        "apply".to_owned(),
        mutation_row("mutations", start.elapsed(), landed),
    ));

    run_phase("overlay", &db, &mut rows);

    let folded = db.graph().overlay_edges();
    let start = Instant::now();
    db.compact();
    rows.push((
        "compact".to_owned(),
        mutation_row("compact", start.elapsed(), folded),
    ));

    run_phase("compacted", &db, &mut rows);
    rows
}

/// Formats the [`live_study`] rows as a frozen/overlay/compacted table with
/// the overhead ratios against the frozen (empty-overlay) baseline.
pub fn live_comparison(rows: &[(String, QueryRun)]) -> String {
    let mut out = String::from("Live graph: frozen vs delta-overlay vs compacted (ms)\n");
    out.push_str(&format!(
        "{:<6} {:<8} {:>9} {:>9} {:>10} {:>8} {:>8}\n",
        "Query", "Mode", "frozen", "overlay", "compacted", "ovl x", "cmp x"
    ));
    let find = |phase: &str, id: &str, op: &str| {
        rows.iter()
            .find(|(p, r)| p == phase && r.id == id && r.operator == op)
            .map(|(_, r)| r.elapsed)
    };
    for (phase, run) in rows {
        if phase != "frozen" {
            continue;
        }
        let (Some(overlay), Some(compacted)) = (
            find("overlay", &run.id, &run.operator),
            find("compacted", &run.id, &run.operator),
        ) else {
            continue;
        };
        out.push_str(&format!(
            "{:<6} {:<8} {:>9} {:>9} {:>10} {:>7.2}x {:>7.2}x\n",
            run.id,
            run.operator,
            format_duration(run.elapsed),
            format_duration(overlay),
            format_duration(compacted),
            overlay.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9),
            compacted.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9),
        ));
    }
    for (phase, run) in rows {
        match phase.as_str() {
            "apply" => out.push_str(&format!(
                "applied {} edge mutations in {} ms\n",
                run.answers,
                format_duration(run.elapsed)
            )),
            "compact" => out.push_str(&format!(
                "compacted {} overlay edges into a fresh CSR in {} ms\n",
                run.answers,
                format_duration(run.elapsed)
            )),
            _ => {}
        }
    }
    out
}

// ----------------------------------------------------------------------
// Durability study (write-ahead log overhead and crash recovery)
// ----------------------------------------------------------------------

/// A scratch directory for one durability run, unique per process and
/// call site so parallel test binaries never collide.
fn durability_scratch(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "omega-bench-wal-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Opens the dataset as a WAL-backed [`Database`] under `dir`.
fn durable_engine(dataset: &Dataset, dir: &std::path::Path, fsync: FsyncPolicy) -> Database {
    let (db, _recovery) = Database::with_governor_durable(
        dataset.graph.clone(),
        dataset.ontology.clone(),
        EvalOptions::default().with_max_tuples(Some(MEMORY_BUDGET)),
        GovernorConfig::default(),
        &WalConfig::new(dir).with_fsync(fsync),
    )
    .expect("durability study: durable open");
    db
}

/// The durability study at the largest configured L4All scale: what the
/// write-ahead log costs on the hot paths, and what recovery costs after a
/// crash. Phases (carried in the row's scale slot):
///
/// * `base` / `read` — the Figure 5 queries on a plain database and on a
///   WAL-backed one whose log is attached but idle, measured back to back
///   so the pair shares machine state (the `l4all` rows of earlier suites
///   run minutes earlier in a full bench, which on sub-ms rows is more
///   noise than the effect being measured). The acceptance bar: `read`
///   medians within 1.1x of `base` — the log must be free when nobody
///   writes.
/// * `apply` — one row per durability mode (`no-wal`, `fsync-never`,
///   `fsync-always`): the same mutation batches landed through a plain
///   database and WAL-backed ones, `answers` = edges applied, so the
///   logging and fsync overhead of the write path is on record.
/// * `recovery` — one row per log length (`log-0`, `log-64`, `log-256`):
///   a durable reopen over a log with that many records, `answers` = the
///   records actually replayed. `log-0` is the no-replay baseline (the
///   timing includes base-graph construction, which replay rides on).
pub fn durability_study(config: &RunConfig) -> Vec<(String, QueryRun)> {
    let ids = figure5_query_ids();
    let dataset = l4all_dataset(config.max_scale);
    let specs: Vec<QuerySpec> = l4all_queries()
        .into_iter()
        .filter(|spec| ids.contains(&spec.id))
        .collect();
    let labels: Vec<String> = dataset
        .graph
        .labels()
        .map(|(_, name)| name.to_owned())
        .collect();
    let study_row = |id: &str, elapsed: Duration, count: u64| QueryRun {
        id: id.to_owned(),
        operator: "exact".to_owned(),
        elapsed,
        samples: 1,
        answers: count as usize,
        distances: BTreeMap::new(),
        exhausted: false,
        stats: EvalStats::default(),
    };
    let mut rows = Vec::new();

    // Phase 1: reads with the log attached but idle, against a WAL-less
    // twin. The twin rows are interleaved per query — base then read,
    // back to back — so slow drift in machine state (this study runs
    // after the allocator-thrashing overload/serve studies in a full
    // bench) cancels out of the ratio instead of accumulating across a
    // whole phase.
    let dir = durability_scratch("read");
    {
        let plain = engine_for(&dataset, EvalOptions::default());
        let durable = durable_engine(&dataset, &dir, FsyncPolicy::Always);
        for spec in &specs {
            for op in ["", "APPROX"] {
                if !op.is_empty() && !spec.flexible_in_study {
                    continue;
                }
                let mut request = ExecOptions::new();
                if !op.is_empty() {
                    request = request.with_limit(TOP_K);
                }
                let text = spec.with_operator(op);
                // The acceptance bar is a 10% *ratio* between these two
                // rows, several of which are sub-millisecond — triple the
                // sampling so the medians settle below that.
                let samples = config.samples * 3;
                for (phase, db) in [("base", &plain), ("read", &durable)] {
                    rows.push((
                        phase.to_owned(),
                        run_query_sampled(db, spec.id, op, &text, &request, samples),
                    ));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 2: the write path under each durability mode. Small batches so
    // per-batch costs (one log record, one fsync under `always`) dominate
    // over overlay insertion, which the `live` suite already measures.
    const BATCHES: usize = 16;
    const EDGES_PER_BATCH: usize = 128;
    let apply_batches = |db: &Database| -> (Duration, u64) {
        let start = Instant::now();
        let mut landed = 0u64;
        for b in 0..BATCHES {
            let mut batch = db.begin_mutation();
            for i in 0..EDGES_PER_BATCH {
                let label = &labels[(b + i) % labels.len()];
                batch.add(
                    &format!("wal-extra-{b}-{i}"),
                    label,
                    &format!("wal-extra-{b}-{}", i + 1),
                );
            }
            let applied = db.apply(&batch).expect("durability study: apply");
            landed += applied.added + applied.removed;
        }
        (start.elapsed(), landed)
    };

    // Warm-up round on a throwaway database: the first apply pass pays
    // one-off allocator and page-cache costs that would otherwise be
    // charged to whichever mode runs first.
    {
        let warmup = engine_for(&dataset, EvalOptions::default());
        apply_batches(&warmup);
    }

    let plain = engine_for(&dataset, EvalOptions::default());
    let (elapsed, landed) = apply_batches(&plain);
    rows.push(("apply".to_owned(), study_row("no-wal", elapsed, landed)));
    drop(plain);

    for (id, fsync) in [
        ("fsync-never", FsyncPolicy::Never),
        ("fsync-always", FsyncPolicy::Always),
    ] {
        let dir = durability_scratch(id);
        let db = durable_engine(&dataset, &dir, fsync);
        let (elapsed, landed) = apply_batches(&db);
        rows.push(("apply".to_owned(), study_row(id, elapsed, landed)));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Phase 3: crash recovery as a function of log length. Each reopen
    // replays the whole log into a freshly built base graph, so `log-0`
    // isolates the construction cost every run pays.
    for records in [0usize, 64, 256] {
        let dir = durability_scratch("recovery");
        {
            let db = durable_engine(&dataset, &dir, FsyncPolicy::Never);
            for r in 0..records {
                let mut batch = db.begin_mutation();
                let label = &labels[r % labels.len()];
                batch.add(&format!("crash-{r}"), label, &format!("crash-{}", r + 1));
                db.apply(&batch).expect("durability study: build log");
            }
        }
        let start = Instant::now();
        let (db, recovery) = Database::with_governor_durable(
            dataset.graph.clone(),
            dataset.ontology.clone(),
            EvalOptions::default().with_max_tuples(Some(MEMORY_BUDGET)),
            GovernorConfig::default(),
            &WalConfig::new(&dir).with_fsync(FsyncPolicy::Never),
        )
        .expect("durability study: recovery open");
        let elapsed = start.elapsed();
        assert_eq!(
            recovery.records, records as u64,
            "durability study: recovery must replay every logged record"
        );
        rows.push((
            "recovery".to_owned(),
            study_row(&format!("log-{records}"), elapsed, recovery.records),
        ));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    rows
}

/// Formats the [`durability_study`] rows: the idle-WAL read medians against
/// their WAL-less twins, the write-path cost per durability mode (with the
/// overhead multiple against the WAL-less baseline), and recovery time by
/// log length.
pub fn durability_comparison(rows: &[(String, QueryRun)]) -> String {
    let mut out = String::from("Durability: WAL overhead and crash recovery\n");
    out.push_str("reads: WAL attached but idle vs a WAL-less twin:\n");
    out.push_str(&format!(
        "{:<6} {:<8} {:>9} {:>9} {:>8}\n",
        "Query", "Mode", "base", "read", "x"
    ));
    let base = |id: &str, op: &str| {
        rows.iter()
            .find(|(p, r)| p == "base" && r.id == id && r.operator == op)
            .map(|(_, r)| r.elapsed)
    };
    for (phase, run) in rows {
        if phase != "read" {
            continue;
        }
        let ratio = base(&run.id, &run.operator)
            .map(|b| run.elapsed.as_secs_f64() / b.as_secs_f64().max(1e-9))
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{:<6} {:<8} {:>9} {:>9} {:>7.2}x\n",
            run.id,
            run.operator,
            base(&run.id, &run.operator)
                .map(format_duration)
                .unwrap_or_default(),
            format_duration(run.elapsed),
            ratio
        ));
    }
    let no_wal = rows
        .iter()
        .find(|(p, r)| p == "apply" && r.id == "no-wal")
        .map(|(_, r)| r.elapsed);
    out.push_str("write path (same mutation batches per mode):\n");
    out.push_str(&format!(
        "{:<14} {:>7} {:>9} {:>9}\n",
        "Mode", "edges", "ms", "vs no-wal"
    ));
    for (phase, run) in rows {
        if phase != "apply" {
            continue;
        }
        let ratio = no_wal
            .map(|base| run.elapsed.as_secs_f64() / base.as_secs_f64().max(1e-9))
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{:<14} {:>7} {:>9} {:>8.2}x\n",
            run.id,
            run.answers,
            format_duration(run.elapsed),
            ratio
        ));
    }
    out.push_str("recovery (durable reopen incl. base-graph build):\n");
    out.push_str(&format!("{:<10} {:>8} {:>9}\n", "Log", "records", "ms"));
    for (phase, run) in rows {
        if phase == "recovery" {
            out.push_str(&format!(
                "{:<10} {:>8} {:>9}\n",
                run.id,
                run.answers,
                format_duration(run.elapsed)
            ));
        }
    }
    out
}

// ----------------------------------------------------------------------
// Overload study (the resource governor under concurrent clients)
// ----------------------------------------------------------------------

/// One closed-loop overload run: a fixed number of concurrent clients
/// hammering a governed [`Database`] with the same flexible query, at one
/// overload policy and one saturation multiple of the shared tuple pool.
#[derive(Debug, Clone)]
pub struct OverloadRun {
    /// Overload policy the clients requested (`degrade` or `shed`).
    pub policy: String,
    /// Offered load relative to the pool (`1x`, `4x`, `16x`).
    pub saturation: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests that completed with answers (including degraded ones).
    pub completed: usize,
    /// Completed requests that finished degraded (budget tripped mid-query).
    pub degraded: usize,
    /// Shed events: governor rejections absorbed by backoff-and-retry,
    /// both the engine's own `Shed` retries and the clients' loop.
    pub sheds: u64,
    /// Requests abandoned after exhausting their retry budget.
    pub rejected: u64,
    /// Requests that failed with `ResourceExhausted` (pool pressure under
    /// the shrunken post-shed budgets).
    pub exhausted: usize,
    /// Median latency of completed requests (client view, retries included).
    pub p50: Duration,
    /// 99th-percentile latency of completed requests.
    pub p99: Duration,
}

/// Drains one governed request, returning its stats or the typed failure.
fn governed_request(
    prepared: &PreparedQuery,
    request: &ExecOptions,
) -> Result<EvalStats, OmegaError> {
    let mut stream = prepared.answers(request);
    loop {
        match stream.next_answer() {
            Ok(Some(_)) => {}
            Ok(None) => return Ok(stream.stats()),
            Err(e) => return Err(e),
        }
    }
}

/// The overload study: closed-loop concurrent clients against a governed
/// database whose shared tuple pool is sized to fit roughly four copies of
/// the study query, at offered loads of 1x/4x/16x that capacity, under both
/// graceful-degradation and load-shedding policies.
///
/// Clients are closed-loop (next request only after the previous one
/// finishes), the paper-methodology top-[`TOP_K`] APPROX fetch is the unit
/// of work, and a client that is rejected with `Overloaded` honours the
/// governor's `retry_after` hint up to three retries before counting the
/// request as rejected. Latencies are the client's view: retry backoff is
/// part of the measured request.
pub fn overload_study(config: &RunConfig) -> Vec<OverloadRun> {
    use omega_core::{GovernorConfig, OverloadPolicy};

    let scale = config.scales().first().copied().unwrap_or(L4AllScale::L1);
    let dataset = l4all_dataset(scale);
    let spec = l4all_queries()[8].clone(); // Q9, the flexible workhorse
    let text = spec.with_operator("APPROX");
    let request = ExecOptions::new().with_limit(TOP_K);

    // Probe the query's tuple appetite on an ungoverned engine, then size
    // the shared pool to about four concurrent copies of it.
    let probe_db = Database::new(dataset.graph.clone(), dataset.ontology.clone());
    let probe = run_query_with(&probe_db, spec.id, "APPROX", &text, &request);
    let appetite = (probe.stats.tuples_added as usize).max(1024);
    let pool = appetite * 4;
    let concurrency = 8usize;

    let mut rows = Vec::new();
    for (policy_name, policy) in [
        ("degrade", OverloadPolicy::Degrade),
        ("shed", OverloadPolicy::Shed),
    ] {
        for (saturation, clients) in [("1x", 4usize), ("4x", 16), ("16x", 64)] {
            let db = Database::with_governor(
                dataset.graph.clone(),
                dataset.ontology.clone(),
                EvalOptions::default(),
                GovernorConfig::default()
                    .with_max_live_tuples(pool)
                    .with_max_concurrent(concurrency)
                    .with_retry_after(Duration::from_millis(2)),
            );
            let client_request = request.clone().with_on_overload(policy);
            const ITERS: usize = 6;
            const ATTEMPTS: usize = 4;

            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    let db = db.clone();
                    let tx = tx.clone();
                    let client_request = &client_request;
                    let text = &text;
                    scope.spawn(move || {
                        let prepared = db.prepare(text).expect("study query compiles");
                        let mut latencies = Vec::with_capacity(ITERS);
                        let (mut completed, mut degraded, mut exhausted) = (0usize, 0usize, 0usize);
                        let (mut sheds, mut rejected) = (0u64, 0u64);
                        for _ in 0..ITERS {
                            let start = Instant::now();
                            for attempt in 1..=ATTEMPTS {
                                match governed_request(&prepared, client_request) {
                                    Ok(stats) => {
                                        completed += 1;
                                        degraded += usize::from(stats.degraded);
                                        sheds += stats.sheds;
                                        latencies.push(start.elapsed());
                                        break;
                                    }
                                    Err(OmegaError::Overloaded { retry_after }) => {
                                        if attempt == ATTEMPTS {
                                            rejected += 1;
                                        } else {
                                            sheds += 1;
                                            std::thread::sleep(retry_after);
                                        }
                                    }
                                    Err(OmegaError::ResourceExhausted { .. }) => {
                                        exhausted += 1;
                                        break;
                                    }
                                    Err(other) => panic!("overload study request failed: {other}"),
                                }
                            }
                        }
                        tx.send((latencies, completed, degraded, exhausted, sheds, rejected))
                            .expect("study channel open");
                    });
                }
            });
            drop(tx);

            // Percentiles come from the shared log-scale histogram (the
            // same one the serving layer and load generator report from),
            // so every suite's p50/p99 is computed the same way.
            let latencies = Histogram::new();
            let (mut completed, mut degraded, mut exhausted) = (0usize, 0usize, 0usize);
            let (mut sheds, mut rejected) = (0u64, 0u64);
            for (lat, c, d, e, s, r) in rx {
                for latency in lat {
                    latencies.observe(latency);
                }
                completed += c;
                degraded += d;
                exhausted += e;
                sheds += s;
                rejected += r;
            }
            let snap = latencies.snapshot();
            let gauges = db.governor().gauges();
            assert_eq!(
                (
                    gauges.live_tuples,
                    gauges.executions,
                    gauges.join_buffer_entries
                ),
                (0, 0, 0),
                "governor gauges must return to zero after the {policy_name}/{saturation} run"
            );
            rows.push(OverloadRun {
                policy: policy_name.to_owned(),
                saturation: saturation.to_owned(),
                clients,
                completed,
                degraded,
                sheds,
                rejected,
                exhausted,
                p50: Duration::from_nanos(snap.p50()),
                p99: Duration::from_nanos(snap.p99()),
            });
        }
    }
    rows
}

/// Formats the [`overload_study`] rows as a policy/saturation table.
pub fn overload_comparison(rows: &[OverloadRun]) -> String {
    let mut out =
        String::from("Overload: closed-loop clients vs the resource governor (latency in ms)\n");
    out.push_str(&format!(
        "{:<9} {:<5} {:>8} {:>10} {:>9} {:>7} {:>9} {:>10} {:>9} {:>9}\n",
        "Policy",
        "Load",
        "Clients",
        "Completed",
        "Degraded",
        "Sheds",
        "Rejected",
        "Exhausted",
        "p50",
        "p99"
    ));
    for run in rows {
        out.push_str(&format!(
            "{:<9} {:<5} {:>8} {:>10} {:>9} {:>7} {:>9} {:>10} {:>9} {:>9}\n",
            run.policy,
            run.saturation,
            run.clients,
            run.completed,
            run.degraded,
            run.sheds,
            run.rejected,
            run.exhausted,
            format_duration(run.p50),
            format_duration(run.p99),
        ));
    }
    out
}

/// The Section 4.1 claim that exact evaluation is competitive with plain
/// NFA-based approaches: Omega's ranked evaluator vs the BFS baseline on the
/// exact L4All queries.
pub fn baseline_comparison(config: &RunConfig) -> String {
    use omega_core::BaselineEvaluator;

    let mut out = String::from(
        "Baseline comparison: exact queries, ranked evaluator vs product-automaton BFS (ms)\n",
    );
    out.push_str(&format!(
        "{:<6} {:>10} {:>10} {:>10}\n",
        "Query", "ranked", "BFS", "answers"
    ));
    let scale = config.scales().last().copied().unwrap_or(L4AllScale::L1);
    let dataset = l4all_dataset(scale);
    let omega = engine_for(&dataset, EvalOptions::default());
    for spec in l4all_queries() {
        if !figure5_query_ids().contains(&spec.id) {
            continue;
        }
        let ranked = run_query(&omega, spec.id, "", spec.text);
        let query = omega_core::parse_query(spec.text).unwrap();
        let start = Instant::now();
        let mut bfs = BaselineEvaluator::new(
            &query.conjuncts[0],
            &dataset.graph,
            &dataset.ontology,
            &EvalOptions::default(),
        )
        .unwrap();
        let bfs_answers = bfs.run();
        let bfs_elapsed = start.elapsed();
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>10}\n",
            spec.id,
            format_duration(ranked.elapsed),
            format_duration(bfs_elapsed),
            format!("{}/{}", ranked.answers, bfs_answers.len()),
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Snapshot tooling (the `experiments -- snapshot` subcommand)
// ----------------------------------------------------------------------

/// Generates the named dataset (`l4all` or `yago`) at the configured scale,
/// builds a [`Database`] and saves its snapshot image to `out`. Returns a
/// human-readable summary.
pub fn snapshot_build(
    dataset: &str,
    config: &RunConfig,
    out: &std::path::Path,
) -> Result<String, String> {
    let data = match dataset {
        "l4all" => l4all_dataset(config.scales().last().copied().unwrap_or(L4AllScale::L1)),
        "yago" => yago_dataset(config.yago_scale),
        other => {
            return Err(format!(
                "unknown dataset {other:?} (expected l4all or yago)"
            ))
        }
    };
    let start = Instant::now();
    let db = Database::new(data.graph, data.ontology);
    let built = start.elapsed();
    let start = Instant::now();
    db.save_snapshot(out).map_err(|e| e.to_string())?;
    let saved = start.elapsed();
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "snapshot {}: {} nodes, {} edges, {} labels -> {} bytes (build {}ms, save {}ms)",
        out.display(),
        db.graph().node_count(),
        db.graph().edge_count(),
        db.graph().label_count(),
        bytes,
        built.as_millis(),
        saved.as_millis(),
    ))
}

/// Opens `path`, prints the container header and section table, and
/// verifies the image end-to-end by constructing a [`Database`] over it.
pub fn snapshot_inspect(path: &std::path::Path) -> Result<String, String> {
    use omega_graph::snapshot::{SectionId, SectionKind, SnapshotReader, FORMAT_VERSION};

    let reader = SnapshotReader::open(path).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{}: format v{FORMAT_VERSION}, {} bytes, {} sections (all checksums verified)\n",
        path.display(),
        reader.file_len(),
        reader.sections().len(),
    );
    out.push_str(&format!(
        "{:<24} {:>12} {:>14} {:>18}\n",
        "section", "offset", "bytes", "fnv1a-64"
    ));
    for entry in reader.sections() {
        out.push_str(&format!(
            "{:<24} {:>12} {:>14} {:>#18x}\n",
            entry.id.to_string(),
            entry.offset,
            entry.len,
            entry.checksum
        ));
    }
    // The label-stats section is optional: images written before it existed
    // open fine and recompute the statistics lazily. A structurally wrong
    // section is reported here, not panicked on — `Database::open_snapshot`
    // below then rejects the image with its typed error.
    match reader.section(SectionId::plain(SectionKind::LabelStats)) {
        Some(section) => {
            let words = section.as_u64s().map_err(|e| e.to_string())?;
            let expected = words
                .first()
                .and_then(|&labels| labels.checked_mul(3))
                .and_then(|triples| triples.checked_add(1));
            if expected == Some(words.len() as u64) {
                let edges: u64 = words[1..].chunks_exact(3).map(|w| w[0]).sum();
                out.push_str(&format!(
                    "label stats: {} labels, {edges} edges (planner-ready)\n",
                    words[0]
                ));
            } else {
                out.push_str(&format!(
                    "label stats: malformed section ({} words)\n",
                    words.len()
                ));
            }
        }
        None => out.push_str("label stats: absent (pre-stats image; recomputed lazily on open)\n"),
    }
    drop(reader);
    let start = Instant::now();
    let db = Database::open_snapshot(path).map_err(|e| e.to_string())?;
    out.push_str(&format!(
        "opened as Database in {:.2}ms: {} nodes, {} edges, {} labels, {} classes, {} properties\n",
        start.elapsed().as_secs_f64() * 1e3,
        db.graph().node_count(),
        db.graph().edge_count(),
        db.graph().label_count(),
        db.ontology().class_count(),
        db.ontology().property_count(),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_build_and_inspect_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "omega-bench-snapshot-{}.snapshot",
            std::process::id()
        ));
        let config = RunConfig {
            max_scale: L4AllScale::L1,
            yago_scale: 0.05,
            samples: 1,
        };
        let summary = snapshot_build("yago", &config, &path).unwrap();
        assert!(summary.contains("nodes"));
        let inspected = snapshot_inspect(&path).unwrap();
        assert!(inspected.contains("format v1"));
        assert!(inspected.contains("csr-offsets"));
        assert!(inspected.contains("ontology"));
        assert!(inspected.contains("opened as Database"));
        assert!(snapshot_build("nope", &config, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_reports_a_malformed_stats_section_without_panicking() {
        use omega_graph::snapshot::{
            write_graph_sections_without_stats, SectionId, SectionKind, SnapshotWriter,
        };

        let dataset = yago_dataset(0.05);
        let db = omega_core::Database::new(dataset.graph.clone(), dataset.ontology.clone());
        let path = std::env::temp_dir().join(format!(
            "omega-bench-badstats-{}.snapshot",
            std::process::id()
        ));
        let mut writer = SnapshotWriter::new();
        write_graph_sections_without_stats(&db.graph(), &mut writer).unwrap();
        omega_ontology::snapshot::write_ontology_section(db.ontology(), &mut writer).unwrap();
        // An empty label-stats section: structurally valid container, bogus
        // payload. Inspect must degrade to a typed error, never panic.
        writer.add(SectionId::plain(SectionKind::LabelStats), Vec::new());
        writer.write_to(&path).unwrap();
        let err = snapshot_inspect(&path).unwrap_err();
        assert!(
            err.contains("label-stats"),
            "expected the typed malformed-section error, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn startup_study_produces_all_phases_and_agreeing_answers() {
        // The study itself asserts rebuilt == snapshot-backed answers.
        let config = RunConfig {
            max_scale: L4AllScale::L1,
            yago_scale: 0.05,
            samples: 1,
        };
        let rows = startup_study(&config);
        for phase in ["rebuild", "save", "open_cold", "open_warm"] {
            assert_eq!(
                rows.iter().filter(|(p, _)| p == phase).count(),
                2,
                "one {phase} row per dataset"
            );
        }
        let table = startup_comparison(&rows);
        assert!(table.contains("yago"));
        assert!(table.contains("l4all-L1"));
    }

    #[test]
    fn run_config_scales() {
        assert_eq!(RunConfig::quick().scales().len(), 2);
        assert_eq!(RunConfig::full().scales().len(), 4);
    }

    #[test]
    fn figure2_lists_all_five_hierarchies() {
        let fig = figure2();
        for name in [
            "Episode",
            "Subject",
            "Occupation",
            "Education Qualification Level",
            "Industry Sector",
        ] {
            assert!(fig.contains(name), "missing {name} in:\n{fig}");
        }
    }

    #[test]
    fn query_run_distance_summary_format() {
        let run = QueryRun {
            id: "Q9".into(),
            operator: "APPROX".into(),
            elapsed: Duration::from_millis(5),
            samples: 1,
            answers: 100,
            distances: [(0u32, 1usize), (1, 32), (2, 67)].into_iter().collect(),
            exhausted: false,
            stats: EvalStats::default(),
        };
        assert_eq!(run.distance_summary(), "1 (32) 2 (67)");
    }

    #[test]
    fn profile_study_emits_phase_rows_for_all_three_cases() {
        let config = RunConfig {
            max_scale: L4AllScale::L1,
            yago_scale: 0.05,
            samples: 1,
        };
        let rows = profile_study(&config);
        let totals = rows.iter().filter(|(p, _)| p == "total").count();
        assert_eq!(totals, 3, "one total row per profiled query");
        assert!(rows
            .iter()
            .any(|(p, r)| p == "parse" && r.operator == "exact"));
        assert!(rows
            .iter()
            .any(|(p, r)| p == "streaming" && r.operator == "APPROX"));
        assert!(rows.iter().any(|(p, _)| p.starts_with("conjunct_")));
        assert!(rows.iter().any(|(p, _)| p == "rank_join"));
        let table = profile_comparison(&rows);
        assert!(table.contains("total"));
        assert!(table.contains("APPROX"));
    }

    #[test]
    fn tiny_end_to_end_study() {
        // A minimal smoke test of the harness machinery on a tiny dataset:
        // exact vs APPROX vs RELAX on L4All Q10.
        let dataset = generate_l4all(&L4AllConfig::tiny());
        let omega = engine_for(&dataset, EvalOptions::default());
        let spec = l4all_queries()[9].clone();
        let runs = run_all_operators(&omega, &spec, 3);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.samples == 3));
        let exact = &runs[0];
        let approx = &runs[1];
        let relax = &runs[2];
        assert!(approx.answers >= exact.answers);
        assert!(relax.answers >= exact.answers);
        assert!(!exact.exhausted);
    }
}
