//! The serving-layer study: an in-process `omega-server` on a unix socket,
//! driven by the `omega-client` load generator, measuring end-to-end
//! request latency (p50/p99/p999) under closed- and open-loop load, plus a
//! governed scenario that exercises shedding and degradation at the edge.
//!
//! The rows land in the `serve` array of `BENCH_N.json`, so the cost of the
//! network hop (framing, syscalls, credit flow control) is tracked from PR
//! to PR alongside the in-process suites.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use omega_client::bench::{run_load, Endpoint, LoadMode, LoadSpec};
use omega_core::{Database, EvalOptions, ExecOptions, GovernorConfig, OverloadPolicy};
use omega_datagen::{l4all_queries, L4AllScale};
use omega_server::{Server, ServerConfig, ServerHandle};

use crate::{l4all_dataset, RunConfig, TOP_K};

/// One serving-layer load run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Arrival discipline: `closed`, or `open@R` (R in req/s).
    pub mode: String,
    /// Scenario label (`plain` or the governed policy name).
    pub scenario: String,
    /// Query id plus operator (`Q1`, `Q9/APPROX`, …).
    pub id: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued.
    pub issued: u64,
    /// Requests that streamed to completion.
    pub completed: u64,
    /// Requests rejected with `Overloaded` at the admission edge.
    pub overloaded: u64,
    /// Requests that failed with any other typed error.
    pub failed: u64,
    /// Completed requests whose evaluation degraded under pressure.
    pub degraded: u64,
    /// Requests ended early by server drain (`Finished { Drained }`).
    pub drained: u64,
    /// Completed requests whose result set was truncated mid-query.
    pub truncated: u64,
    /// Conjunct worker panics absorbed server-side over completed requests.
    pub worker_panics: u64,
    /// Shed-and-retry events absorbed inside the engine (server counter).
    pub sheds: u64,
    /// Requests the server answered with a typed wire error (server counter).
    pub rejected: u64,
    /// Total answers streamed back.
    pub answers: u64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p999: Duration,
    /// Completed requests per second over the run's wall-clock.
    pub throughput: f64,
}

/// A collision-free unix socket path for one study server.
fn socket_path() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("omega-bench-serve-{}-{n}.sock", std::process::id()))
}

/// Spawns a serving daemon over `db`; returns its handle, endpoint and the
/// joiner for the run loop.
fn spawn(db: Database) -> (ServerHandle, Endpoint, std::thread::JoinHandle<()>) {
    let mut server = Server::with_config(
        db,
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );
    let path = socket_path();
    server.listen_unix(&path).expect("bind serve-study socket");
    let handle = server.handle();
    let joiner = std::thread::spawn(move || server.run());
    (handle, Endpoint::Unix(path), joiner)
}

/// Runs one load spec and folds the outcome (plus the server-counter
/// deltas) into a [`ServeRun`] row.
fn measure(
    handle: &ServerHandle,
    endpoint: &Endpoint,
    scenario: &str,
    id: &str,
    spec: &LoadSpec,
) -> ServeRun {
    let before = handle.stats();
    let report = run_load(endpoint, spec).expect("serve-study load run");
    let after = handle.stats();
    ServeRun {
        mode: match spec.mode {
            LoadMode::Closed => "closed".to_owned(),
            LoadMode::Open(rate) => format!("open@{rate:.0}"),
        },
        scenario: scenario.to_owned(),
        id: id.to_owned(),
        connections: spec.connections,
        issued: report.issued,
        completed: report.completed,
        overloaded: report.overloaded,
        failed: report.failed,
        degraded: report.degraded,
        drained: report.drained,
        truncated: report.truncated,
        worker_panics: report.worker_panics,
        sheds: after.sheds - before.sheds,
        rejected: after.rejected - before.rejected,
        answers: report.answers,
        p50: report.p50,
        p99: report.p99,
        p999: report.p999,
        throughput: report.throughput(),
    }
}

/// The serving study.
///
/// Scenario `plain` serves an ungoverned database: one exact query and the
/// flexible workhorse (Q9 APPROX) under closed-loop load at increasing
/// concurrency, plus an open-loop run paced at ~75% of the measured
/// closed-loop throughput (so queueing delay is visible but bounded).
/// Scenario `degrade`/`shed` serve a tightly governed database at 2x the
/// concurrency ceiling, populating the shed/degraded/rejected counters.
pub fn serve_study(config: &RunConfig) -> Vec<ServeRun> {
    let scale = config.scales().first().copied().unwrap_or(L4AllScale::L1);
    let dataset = l4all_dataset(scale);
    let queries = l4all_queries();
    let exact = &queries[0]; // Q1
    let flexible = queries[8].with_operator("APPROX"); // Q9, the flexible workhorse
    let request = ExecOptions::new().with_limit(TOP_K);
    let mut rows = Vec::new();

    // --- plain scenario: ungoverned database --------------------------
    let db = Database::new(dataset.graph.clone(), dataset.ontology.clone());
    let (handle, endpoint, joiner) = spawn(db);
    for (id, text) in [
        ("Q1", exact.text.to_owned()),
        ("Q9/APPROX", flexible.clone()),
    ] {
        for connections in [1usize, 4] {
            let spec = LoadSpec {
                query: text.clone(),
                options: request.clone(),
                connections,
                requests: 32 * connections,
                mode: LoadMode::Closed,
                retry: None,
            };
            rows.push(measure(&handle, &endpoint, "plain", id, &spec));
        }
    }
    // Open loop, paced off the last closed-loop row's throughput.
    let closed_rps = rows
        .last()
        .map(|r| r.throughput)
        .filter(|t| t.is_finite() && *t > 1.0)
        .unwrap_or(50.0);
    let spec = LoadSpec {
        query: flexible.clone(),
        options: request.clone(),
        connections: 4,
        requests: 96,
        mode: LoadMode::Open(closed_rps * 0.75),
        retry: None,
    };
    rows.push(measure(&handle, &endpoint, "plain", "Q9/APPROX", &spec));
    handle.shutdown();
    joiner.join().expect("serve-study server drained");

    // --- governed scenarios: shedding and degradation at the edge ------
    // Probe the workhorse query's tuple appetite ungoverned, then squeeze
    // the shared pool to roughly two concurrent copies so four closed-loop
    // clients genuinely contend (same sizing idea as `overload_study`).
    let probe_db = Database::new(dataset.graph.clone(), dataset.ontology.clone());
    let probe = crate::run_query_with(&probe_db, "Q9", "APPROX", &flexible, &request);
    let pool = (probe.stats.tuples_added as usize).max(1024) * 2;
    for (scenario, policy) in [
        ("degrade", OverloadPolicy::Degrade),
        ("shed", OverloadPolicy::Shed),
    ] {
        let mut governor = GovernorConfig::default()
            .with_max_live_tuples(pool)
            .with_retry_after(Duration::from_millis(2));
        if policy == OverloadPolicy::Shed {
            // Sheds happen at the admission gate; a concurrency ceiling
            // below the client count makes the retry loop do real work.
            governor = governor.with_max_concurrent(2);
        }
        let db = Database::with_governor(
            dataset.graph.clone(),
            dataset.ontology.clone(),
            EvalOptions::default(),
            governor,
        );
        let (handle, endpoint, joiner) = spawn(db);
        let spec = LoadSpec {
            query: flexible.clone(),
            options: request.clone().with_on_overload(policy),
            connections: 4,
            requests: 64,
            mode: LoadMode::Closed,
            retry: None,
        };
        rows.push(measure(&handle, &endpoint, scenario, "Q9/APPROX", &spec));
        handle.shutdown();
        joiner.join().expect("governed serve-study server drained");
    }
    rows
}

/// Formats the [`serve_study`] rows as a table.
pub fn serve_comparison(rows: &[ServeRun]) -> String {
    let mut out = String::from(
        "## Serving layer: end-to-end latency over the wire (unix socket)\n\n\
         scenario  mode       query      conns  compl/issued  p50 ms  p99 ms  p999 ms  req/s  shed  degr  rej\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<10} {:<10} {:>5}  {:>6}/{:<6} {:>7.3} {:>7.3} {:>8.3} {:>6.0} {:>5} {:>5} {:>4}\n",
            r.scenario,
            r.mode,
            r.id,
            r.connections,
            r.completed,
            r.issued,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.p999.as_secs_f64() * 1e3,
            r.throughput,
            r.sheds,
            r.degraded,
            r.rejected,
        ));
    }
    out
}
