//! The ontology proper: class and property hierarchies plus domain/range.

use std::collections::HashMap;

use omega_graph::{LabelId, NodeId};

use crate::error::OntologyError;
use crate::hierarchy::Hierarchy;

/// The RDFS-subset ontology `K` accompanying a data graph.
///
/// * classes are graph nodes (identified by [`NodeId`]),
/// * properties are edge labels (identified by [`LabelId`]),
/// * `sc` edges form the class hierarchy, `sp` edges the property hierarchy,
/// * `dom`/`range` map properties to class nodes.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    classes: Hierarchy<NodeId>,
    properties: Hierarchy<LabelId>,
    domain: HashMap<LabelId, NodeId>,
    range: HashMap<LabelId, NodeId>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Freezing: interned closures for the inference hot path
    // ------------------------------------------------------------------

    /// Interns the class and property closures ([`Hierarchy::freeze`]) so
    /// the RDFS-inference paths read borrowed slices instead of running an
    /// allocating BFS per expansion. Idempotent; any mutation drops the
    /// tables again. Called automatically when a `Database` takes ownership
    /// of the ontology.
    pub fn freeze(&mut self) {
        self.classes.freeze();
        self.properties.freeze();
    }

    /// Whether both hierarchies carry current interned closure tables.
    pub fn is_frozen(&self) -> bool {
        self.classes.is_frozen() && self.properties.is_frozen()
    }

    /// The interned `property` + subproperties closure (the RDFS-inference
    /// label set), or `None` when the ontology is not frozen or the property
    /// is unknown — an unknown property's closure is just itself.
    #[inline]
    pub fn interned_subproperties_or_self(&self, property: LabelId) -> Option<&[LabelId]> {
        self.properties.interned_descendants_or_self(property)
    }

    /// The interned `class` + subclasses closure, or `None` when not frozen
    /// or the class is unknown.
    #[inline]
    pub fn interned_subclasses_or_self(&self, class: NodeId) -> Option<&[NodeId]> {
        self.classes.interned_descendants_or_self(class)
    }

    /// The interned proper superclasses of `class` with distances, nearest
    /// first, or `None` when not frozen or the class is unknown (an unknown
    /// class has no superclasses).
    #[inline]
    pub fn interned_superclasses(&self, class: NodeId) -> Option<&[(NodeId, u32)]> {
        self.classes.interned_ancestors(class)
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Declares `class` as a class node (with no super/subclasses yet).
    pub fn add_class(&mut self, class: NodeId) {
        self.classes.add_member(class);
    }

    /// Declares `property` as a property (with no super/subproperties yet).
    pub fn add_property(&mut self, property: LabelId) {
        self.properties.add_member(property);
    }

    /// Adds `child rdfs:subClassOf parent`.
    pub fn add_subclass(&mut self, child: NodeId, parent: NodeId) -> Result<(), OntologyError> {
        self.classes.add_edge(child, parent)
    }

    /// Adds `child rdfs:subPropertyOf parent`.
    pub fn add_subproperty(
        &mut self,
        child: LabelId,
        parent: LabelId,
    ) -> Result<(), OntologyError> {
        self.properties.add_edge(child, parent)
    }

    /// Declares `rdfs:domain(property) = class`.
    pub fn set_domain(&mut self, property: LabelId, class: NodeId) {
        self.properties.add_member(property);
        self.classes.add_member(class);
        self.domain.insert(property, class);
    }

    /// Declares `rdfs:range(property) = class`.
    pub fn set_range(&mut self, property: LabelId, class: NodeId) {
        self.properties.add_member(property);
        self.classes.add_member(class);
        self.range.insert(property, class);
    }

    // ------------------------------------------------------------------
    // Classes
    // ------------------------------------------------------------------

    /// Whether `node` is a known class node.
    pub fn is_class(&self, node: NodeId) -> bool {
        self.classes.contains(node)
    }

    /// Direct superclasses of `class`.
    pub fn direct_superclasses(&self, class: NodeId) -> &[NodeId] {
        self.classes.parents(class)
    }

    /// Direct subclasses of `class`.
    pub fn direct_subclasses(&self, class: NodeId) -> &[NodeId] {
        self.classes.children(class)
    }

    /// All proper superclasses of `class` with their distance, nearest
    /// (most specific) first — the paper's `GetAncestors`.
    pub fn superclasses(&self, class: NodeId) -> Vec<(NodeId, u32)> {
        self.classes.ancestors(class)
    }

    /// All proper subclasses of `class` with their distance.
    pub fn subclasses(&self, class: NodeId) -> Vec<(NodeId, u32)> {
        self.classes.descendants(class)
    }

    /// `class` plus all of its subclasses — what a class constraint accepts
    /// under RDFS inference.
    pub fn subclasses_or_self(&self, class: NodeId) -> Vec<NodeId> {
        self.classes.descendants_or_self(class)
    }

    /// Whether `sup` is a (proper) superclass of `sub`.
    pub fn is_superclass_of(&self, sup: NodeId, sub: NodeId) -> bool {
        self.classes.is_ancestor(sup, sub)
    }

    /// The class hierarchy (for statistics and generators).
    pub fn class_hierarchy(&self) -> &Hierarchy<NodeId> {
        &self.classes
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    /// Whether `label` is a known property.
    pub fn is_property(&self, label: LabelId) -> bool {
        self.properties.contains(label)
    }

    /// Direct superproperties of `property`.
    pub fn direct_superproperties(&self, property: LabelId) -> &[LabelId] {
        self.properties.parents(property)
    }

    /// Direct subproperties of `property`.
    pub fn direct_subproperties(&self, property: LabelId) -> &[LabelId] {
        self.properties.children(property)
    }

    /// All proper superproperties of `property` with their distance, nearest
    /// first.
    pub fn superproperties(&self, property: LabelId) -> Vec<(LabelId, u32)> {
        self.properties.ancestors(property)
    }

    /// `property` plus all of its subproperties — what a property label
    /// matches under RDFS inference.
    pub fn subproperties_or_self(&self, property: LabelId) -> Vec<LabelId> {
        self.properties.descendants_or_self(property)
    }

    /// The property hierarchy (for statistics and generators).
    pub fn property_hierarchy(&self) -> &Hierarchy<LabelId> {
        &self.properties
    }

    /// The declared domain class of `property`, if any.
    pub fn domain(&self, property: LabelId) -> Option<NodeId> {
        self.domain.get(&property).copied()
    }

    /// The declared range class of `property`, if any.
    pub fn range(&self, property: LabelId) -> Option<NodeId> {
        self.range.get(&property).copied()
    }

    /// Iterates over all `(property, domain class)` declarations
    /// (unordered).
    pub fn domains(&self) -> impl Iterator<Item = (LabelId, NodeId)> + '_ {
        self.domain.iter().map(|(&p, &c)| (p, c))
    }

    /// Iterates over all `(property, range class)` declarations (unordered).
    pub fn ranges(&self) -> impl Iterator<Item = (LabelId, NodeId)> + '_ {
        self.range.iter().map(|(&p, &c)| (p, c))
    }

    /// Number of declared classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of declared properties.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// Reassembles an ontology from snapshot parts (already-frozen
    /// hierarchies plus the domain/range maps).
    pub(crate) fn from_snapshot_parts(
        classes: Hierarchy<NodeId>,
        properties: Hierarchy<LabelId>,
        domain: HashMap<LabelId, NodeId>,
        range: HashMap<LabelId, NodeId>,
    ) -> Ontology {
        Ontology {
            classes,
            properties,
            domain,
            range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> NodeId {
        NodeId(n)
    }
    fn lid(n: u32) -> LabelId {
        LabelId(n)
    }

    fn sample() -> Ontology {
        // classes: Thing(0) <- Person(1) <- Student(2); Thing <- Place(3)
        // properties: related(0) <- knows(1) <- closeFriend(2)
        let mut o = Ontology::new();
        o.add_subclass(ids(1), ids(0)).unwrap();
        o.add_subclass(ids(2), ids(1)).unwrap();
        o.add_subclass(ids(3), ids(0)).unwrap();
        o.add_subproperty(lid(1), lid(0)).unwrap();
        o.add_subproperty(lid(2), lid(1)).unwrap();
        o.set_domain(lid(1), ids(1));
        o.set_range(lid(1), ids(1));
        o
    }

    #[test]
    fn superclasses_nearest_first() {
        let o = sample();
        assert_eq!(o.superclasses(ids(2)), vec![(ids(1), 1), (ids(0), 2)]);
        assert!(o.is_superclass_of(ids(0), ids(2)));
        assert!(!o.is_superclass_of(ids(2), ids(0)));
    }

    #[test]
    fn subclass_closure_for_inference() {
        let o = sample();
        let mut subs = o.subclasses_or_self(ids(0));
        subs.sort();
        assert_eq!(subs, vec![ids(0), ids(1), ids(2), ids(3)]);
        assert_eq!(o.subclasses_or_self(ids(2)), vec![ids(2)]);
    }

    #[test]
    fn property_hierarchy_and_domain_range() {
        let o = sample();
        assert_eq!(o.superproperties(lid(2)), vec![(lid(1), 1), (lid(0), 2)]);
        assert_eq!(o.direct_superproperties(lid(1)), &[lid(0)]);
        let mut subs = o.subproperties_or_self(lid(0));
        subs.sort();
        assert_eq!(subs, vec![lid(0), lid(1), lid(2)]);
        assert_eq!(o.domain(lid(1)), Some(ids(1)));
        assert_eq!(o.range(lid(1)), Some(ids(1)));
        assert_eq!(o.domain(lid(0)), None);
    }

    #[test]
    fn class_and_property_membership() {
        let o = sample();
        assert!(o.is_class(ids(3)));
        assert!(!o.is_class(ids(42)));
        assert!(o.is_property(lid(2)));
        assert!(!o.is_property(lid(42)));
        assert_eq!(o.class_count(), 4);
        assert_eq!(o.property_count(), 3);
    }

    #[test]
    fn frozen_closures_match_on_demand_answers() {
        let mut o = sample();
        assert!(!o.is_frozen());
        o.freeze();
        assert!(o.is_frozen());
        assert_eq!(
            o.interned_subproperties_or_self(lid(0)).unwrap(),
            &o.subproperties_or_self(lid(0))[..]
        );
        assert_eq!(
            o.interned_subclasses_or_self(ids(0)).unwrap(),
            &o.subclasses_or_self(ids(0))[..]
        );
        assert_eq!(
            o.interned_superclasses(ids(2)).unwrap(),
            &o.superclasses(ids(2))[..]
        );
        assert!(o.interned_subproperties_or_self(lid(42)).is_none());
        // Mutation invalidates; refreezing restores.
        o.add_subproperty(lid(3), lid(0)).unwrap();
        assert!(!o.is_frozen());
        o.freeze();
        assert!(o
            .interned_subproperties_or_self(lid(0))
            .unwrap()
            .contains(&lid(3)));
    }

    #[test]
    fn domain_range_iteration() {
        let o = sample();
        assert_eq!(o.domains().collect::<Vec<_>>(), vec![(lid(1), ids(1))]);
        assert_eq!(o.ranges().collect::<Vec<_>>(), vec![(lid(1), ids(1))]);
    }

    #[test]
    fn empty_ontology_defaults() {
        let o = Ontology::new();
        assert_eq!(o.superclasses(ids(7)), vec![]);
        assert_eq!(o.subproperties_or_self(lid(7)), vec![lid(7)]);
        assert!(!o.is_class(ids(7)));
    }
}
