//! The ontology section of a snapshot image.
//!
//! The whole ontology — both hierarchies' direct relations, the
//! domain/range declarations, *and* the interned closure tables built by
//! [`Ontology::freeze`] — is packed into one checksummed `u32` section of
//! the shared snapshot container ([`omega_graph::snapshot`]). Serialising
//! the precomputed closures means a loaded ontology is frozen from the
//! first instruction: the RDFS-inference hot path never recomputes (or
//! allocates) a closure after open.
//!
//! Layout (all little-endian `u32` words): a fixed header of counts, then
//! for each hierarchy (classes first, properties second) its sorted member
//! list, per-member parent and child lists, and the closure/ancestor
//! offset+data arrays in the same member order, followed by the sorted
//! domain and range pairs.

use std::collections::HashMap;
use std::hash::Hash;

use omega_graph::snapshot::{
    u32_payload, SectionId, SectionKind, SnapshotError, SnapshotReader, SnapshotWriter,
};
use omega_graph::{LabelId, NodeId};

use crate::hierarchy::{FrozenTables, Hierarchy};
use crate::ontology::Ontology;

/// Ids that serialise as one `u32` word.
trait Word: Copy + Eq + Hash + Ord + std::fmt::Debug {
    fn to_word(self) -> u32;
    fn from_word(word: u32) -> Self;
}

impl Word for NodeId {
    fn to_word(self) -> u32 {
        self.0
    }
    fn from_word(word: u32) -> Self {
        NodeId(word)
    }
}

impl Word for LabelId {
    fn to_word(self) -> u32 {
        self.0
    }
    fn from_word(word: u32) -> Self {
        LabelId(word)
    }
}

/// Adds the ontology section of `ontology` to `writer`.
///
/// Works on unfrozen ontologies too (a frozen clone is made internally),
/// but the normal caller — `Database::save_snapshot` — always holds a
/// frozen one.
pub fn write_ontology_section(
    ontology: &Ontology,
    writer: &mut SnapshotWriter,
) -> Result<(), SnapshotError> {
    let frozen_clone;
    let ontology = if ontology.is_frozen() {
        ontology
    } else {
        let mut clone = ontology.clone();
        clone.freeze();
        frozen_clone = clone;
        &frozen_clone
    };

    let mut words: Vec<u32> = Vec::new();
    encode_hierarchy(ontology.class_hierarchy(), &mut words)?;
    encode_hierarchy(ontology.property_hierarchy(), &mut words)?;
    encode_pairs(ontology.domains(), &mut words);
    encode_pairs(ontology.ranges(), &mut words);
    writer.add(SectionId::plain(SectionKind::Ontology), u32_payload(words));
    Ok(())
}

/// Decodes the ontology section of an open snapshot. The returned ontology
/// is already frozen (its closure tables come straight from the image).
pub fn read_ontology_section(reader: &SnapshotReader) -> Result<Ontology, SnapshotError> {
    let section = reader.require(SectionId::plain(SectionKind::Ontology))?;
    let words = section.as_u32s()?;
    let mut cursor = Cursor { words, pos: 0 };
    let classes: Hierarchy<NodeId> = decode_hierarchy(&mut cursor)?;
    let properties: Hierarchy<LabelId> = decode_hierarchy(&mut cursor)?;
    let domain = decode_pairs(&mut cursor)?;
    let range = decode_pairs(&mut cursor)?;
    if cursor.pos != words.len() {
        return Err(SnapshotError::malformed(format!(
            "ontology section has {} trailing words",
            words.len() - cursor.pos
        )));
    }
    Ok(Ontology::from_snapshot_parts(
        classes, properties, domain, range,
    ))
}

/// Serialises one hierarchy: member list, direct relations, interned tables.
fn encode_hierarchy<T: Word>(
    hierarchy: &Hierarchy<T>,
    out: &mut Vec<u32>,
) -> Result<(), SnapshotError> {
    let tables = hierarchy
        .frozen_tables()
        .ok_or_else(|| SnapshotError::malformed("hierarchy must be frozen before writing"))?;
    let members = hierarchy.sorted_members();
    out.push(members.len() as u32);
    for &m in &members {
        out.push(m.to_word());
    }
    // Direct parent and child lists, in member-sorted order. Both lists are
    // written (children are derivable from parents but their *order* — which
    // tie-breaks BFS closures — is not), so a loaded hierarchy reproduces
    // the original's traversal orders exactly.
    for &m in &members {
        let parents = hierarchy.parents(m);
        out.push(parents.len() as u32);
        out.extend(parents.iter().map(|p| p.to_word()));
    }
    for &m in &members {
        let children = hierarchy.children(m);
        out.push(children.len() as u32);
        out.extend(children.iter().map(|c| c.to_word()));
    }
    // Interned closures, in the same member order as the frozen rows.
    out.extend(tables.closure_offsets.iter().copied());
    out.extend(tables.closure_data.iter().map(|d| d.to_word()));
    out.extend(tables.ancestor_offsets.iter().copied());
    for &(a, dist) in &tables.ancestor_data {
        out.push(a.to_word());
        out.push(dist);
    }
    Ok(())
}

fn decode_hierarchy<T: Word>(cursor: &mut Cursor<'_>) -> Result<Hierarchy<T>, SnapshotError> {
    let count = cursor.take(1)?[0] as usize;
    let members: Vec<T> = cursor
        .take(count)?
        .iter()
        .map(|&w| T::from_word(w))
        .collect();
    if members.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::malformed(
            "hierarchy member list is not sorted and unique",
        ));
    }
    let member_set: std::collections::HashSet<T> = members.iter().copied().collect();
    let mut read_lists = |what: &str| -> Result<HashMap<T, Vec<T>>, SnapshotError> {
        let mut map = HashMap::new();
        for &m in &members {
            let len = cursor.take(1)?[0] as usize;
            let list: Vec<T> = cursor.take(len)?.iter().map(|&w| T::from_word(w)).collect();
            if let Some(stranger) = list.iter().find(|x| !member_set.contains(x)) {
                return Err(SnapshotError::malformed(format!(
                    "{what} list of {m:?} references unknown member {stranger:?}"
                )));
            }
            if !list.is_empty() {
                map.insert(m, list);
            }
        }
        Ok(map)
    };
    let parents = read_lists("parent")?;
    let children = read_lists("child")?;

    let closure_offsets = cursor.take(count + 1)?.to_vec();
    let closure_len = validate_offsets(&closure_offsets, "closure")?;
    let closure_data: Vec<T> = cursor
        .take(closure_len)?
        .iter()
        .map(|&w| T::from_word(w))
        .collect();
    let ancestor_offsets = cursor.take(count + 1)?.to_vec();
    let ancestor_len = validate_offsets(&ancestor_offsets, "ancestor")?;
    let ancestor_data: Vec<(T, u32)> = cursor
        .take(ancestor_len * 2)?
        .chunks_exact(2)
        .map(|p| (T::from_word(p[0]), p[1]))
        .collect();

    let mut rows = omega_graph::FxHashMap::default();
    for (row, &m) in members.iter().enumerate() {
        rows.insert(m, row as u32);
    }
    Ok(Hierarchy::from_snapshot_parts(
        members,
        parents,
        children,
        FrozenTables {
            rows,
            closure_offsets,
            closure_data,
            ancestor_offsets,
            ancestor_data,
        },
    ))
}

fn encode_pairs<A: Word, B: Word>(pairs: impl Iterator<Item = (A, B)>, out: &mut Vec<u32>) {
    let mut sorted: Vec<(A, B)> = pairs.collect();
    sorted.sort();
    out.push(sorted.len() as u32);
    for (a, b) in sorted {
        out.push(a.to_word());
        out.push(b.to_word());
    }
}

fn decode_pairs<A: Word, B: Word>(cursor: &mut Cursor<'_>) -> Result<HashMap<A, B>, SnapshotError> {
    let count = cursor.take(1)?[0] as usize;
    Ok(cursor
        .take(count * 2)?
        .chunks_exact(2)
        .map(|p| (A::from_word(p[0]), B::from_word(p[1])))
        .collect())
}

/// Checks a `count + 1` offsets array is monotone from 0 and returns its
/// final (total) length.
fn validate_offsets(offsets: &[u32], what: &str) -> Result<usize, SnapshotError> {
    if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::malformed(format!(
            "ontology {what} offsets are not monotone from zero"
        )));
    }
    Ok(*offsets.last().unwrap_or(&0) as usize)
}

/// Bounds-checked forward reader over the section words.
struct Cursor<'a> {
    words: &'a [u32],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, count: usize) -> Result<&'a [u32], SnapshotError> {
        let end = self
            .pos
            .checked_add(count)
            .filter(|&e| e <= self.words.len());
        match end {
            Some(end) => {
                let slice = &self.words[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(SnapshotError::malformed(
                "ontology section ends mid-structure",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ontology {
        let mut o = Ontology::new();
        o.add_subclass(NodeId(2), NodeId(1)).unwrap();
        o.add_subclass(NodeId(1), NodeId(0)).unwrap();
        o.add_subclass(NodeId(3), NodeId(0)).unwrap();
        o.add_subproperty(LabelId(5), LabelId(4)).unwrap();
        o.add_subproperty(LabelId(6), LabelId(4)).unwrap();
        o.set_domain(LabelId(5), NodeId(1));
        o.set_range(LabelId(6), NodeId(3));
        o.freeze();
        o
    }

    fn roundtrip(o: &Ontology, tag: &str) -> Ontology {
        let path = std::env::temp_dir().join(format!(
            "omega-ontology-image-{}-{tag}.snapshot",
            std::process::id()
        ));
        let mut w = SnapshotWriter::new();
        write_ontology_section(o, &mut w).unwrap();
        w.write_to(&path).unwrap();
        let r = SnapshotReader::open(&path).unwrap();
        let loaded = read_ontology_section(&r).unwrap();
        std::fs::remove_file(&path).ok();
        loaded
    }

    #[test]
    fn ontology_roundtrips_with_closures() {
        let o = sample();
        let loaded = roundtrip(&o, "basic");
        assert!(loaded.is_frozen(), "loaded ontology is frozen from birth");
        assert_eq!(loaded.class_count(), o.class_count());
        assert_eq!(loaded.property_count(), o.property_count());
        for c in 0..4u32 {
            let c = NodeId(c);
            assert_eq!(loaded.superclasses(c), o.superclasses(c));
            assert_eq!(loaded.subclasses_or_self(c), o.subclasses_or_self(c));
            assert_eq!(
                loaded.interned_subclasses_or_self(c),
                o.interned_subclasses_or_self(c)
            );
            assert_eq!(loaded.interned_superclasses(c), o.interned_superclasses(c));
        }
        for p in 4..7u32 {
            let p = LabelId(p);
            assert_eq!(loaded.subproperties_or_self(p), o.subproperties_or_self(p));
            assert_eq!(
                loaded.interned_subproperties_or_self(p),
                o.interned_subproperties_or_self(p)
            );
            assert_eq!(loaded.domain(p), o.domain(p));
            assert_eq!(loaded.range(p), o.range(p));
        }
        // Direct relations (and their orders) survive too.
        assert_eq!(
            loaded.direct_subclasses(NodeId(0)),
            o.direct_subclasses(NodeId(0))
        );
        assert_eq!(
            loaded.direct_superproperties(LabelId(5)),
            o.direct_superproperties(LabelId(5))
        );
    }

    #[test]
    fn unfrozen_ontology_is_frozen_on_write() {
        let mut o = sample();
        o.add_class(NodeId(9)); // invalidates the tables
        assert!(!o.is_frozen());
        let loaded = roundtrip(&o, "unfrozen");
        assert!(loaded.is_frozen());
        assert!(loaded.is_class(NodeId(9)));
    }

    #[test]
    fn empty_ontology_roundtrips() {
        let mut o = Ontology::new();
        o.freeze();
        let loaded = roundtrip(&o, "empty");
        assert_eq!(loaded.class_count(), 0);
        assert_eq!(loaded.property_count(), 0);
        assert!(loaded.is_frozen());
    }
}
