//! Error type for ontology construction.

use std::fmt;

/// Errors raised while building or validating an [`crate::Ontology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// Adding the edge would create a cycle in a hierarchy.
    CycleDetected(String),
    /// A domain/range declaration refers to an unknown class.
    UnknownClass(String),
    /// A subproperty declaration refers to an unknown property.
    UnknownProperty(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::CycleDetected(what) => {
                write!(f, "hierarchy cycle detected involving {what}")
            }
            OntologyError::UnknownClass(c) => write!(f, "unknown class: {c}"),
            OntologyError::UnknownProperty(p) => write!(f, "unknown property: {p}"),
        }
    }
}

impl std::error::Error for OntologyError {}
