//! # omega-ontology
//!
//! The RDFS-subset ontology `K = (V_K, E_K)` of the paper: subclass (`sc`)
//! and subproperty (`sp`) hierarchies together with property `domain` and
//! `range` declarations.
//!
//! The RELAX operator of Omega uses this ontology in two ways:
//!
//! 1. **Relaxation** — replacing a class/property by its immediate
//!    superclass/superproperty (cost β per step) and replacing a property by
//!    a `type` edge to its domain/range class (cost γ).
//! 2. **Inference** — a relaxed query is answered over the RDFS closure of
//!    the data graph, so a transition labelled `p` also matches edges whose
//!    label is a sub-property of `p`, and a class constraint also accepts its
//!    sub-classes.
//!
//! Classes are identified by the [`omega_graph::NodeId`] of their class node
//! in the data graph; properties are identified by their edge
//! [`omega_graph::LabelId`]. Keeping the ontology in the graph's id space
//! means the evaluator never needs string lookups on the hot path.

pub mod error;
pub mod hierarchy;
pub mod ontology;
pub mod snapshot;
pub mod stats;

pub use error::OntologyError;
pub use hierarchy::Hierarchy;
pub use ontology::Ontology;
pub use stats::HierarchyStats;
