//! Class-hierarchy statistics — the quantities reported in Figure 2 of the
//! paper (depth and average fan-out per hierarchy).

use omega_graph::{GraphStore, NodeId};

use crate::ontology::Ontology;

/// Statistics of one class hierarchy (the sub-hierarchy below one root).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyStats {
    /// The root class node.
    pub root: NodeId,
    /// Human-readable label of the root class.
    pub root_label: String,
    /// Length of the longest root-to-leaf path.
    pub depth: u32,
    /// Average number of children over non-leaf classes.
    pub average_fanout: f64,
    /// Number of classes in the hierarchy (including the root).
    pub classes: usize,
}

impl HierarchyStats {
    /// Computes the statistics of every class hierarchy in `ontology`
    /// (one entry per root class), ordered by root label.
    pub fn compute_all(ontology: &Ontology, graph: &GraphStore) -> Vec<HierarchyStats> {
        let hierarchy = ontology.class_hierarchy();
        let mut stats: Vec<HierarchyStats> = hierarchy
            .roots()
            .into_iter()
            .map(|root| HierarchyStats {
                root,
                root_label: graph.node_label(root).to_owned(),
                depth: hierarchy.depth_below(root),
                average_fanout: hierarchy.average_fanout_below(root),
                classes: hierarchy.size_below(root),
            })
            .collect();
        stats.sort_by(|a, b| a.root_label.cmp(&b.root_label));
        stats
    }
}

impl std::fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} depth={} avg_fanout={:.2} classes={}",
            self.root_label, self.depth, self.average_fanout, self.classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_per_root() {
        let mut g = GraphStore::new();
        let animal = g.add_node("Animal");
        let mammal = g.add_node("Mammal");
        let dog = g.add_node("Dog");
        let cat = g.add_node("Cat");
        let vehicle = g.add_node("Vehicle");
        let car = g.add_node("Car");

        let mut o = Ontology::new();
        o.add_subclass(mammal, animal).unwrap();
        o.add_subclass(dog, mammal).unwrap();
        o.add_subclass(cat, mammal).unwrap();
        o.add_subclass(car, vehicle).unwrap();

        let stats = HierarchyStats::compute_all(&o, &g);
        assert_eq!(stats.len(), 2);
        let animal_stats = stats.iter().find(|s| s.root_label == "Animal").unwrap();
        assert_eq!(animal_stats.depth, 2);
        assert_eq!(animal_stats.classes, 4);
        assert!((animal_stats.average_fanout - 1.5).abs() < 1e-9); // Animal:1, Mammal:2
        let vehicle_stats = stats.iter().find(|s| s.root_label == "Vehicle").unwrap();
        assert_eq!(vehicle_stats.depth, 1);
        assert!((vehicle_stats.average_fanout - 1.0).abs() < 1e-9);
    }
}
