//! A generic "is-a" hierarchy (a DAG), used for both the subclass and the
//! subproperty relations.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

use crate::error::OntologyError;

/// A directed acyclic "child → parent" hierarchy over ids of type `T`.
///
/// The hierarchy stores the *direct* relation; transitive closures are
/// computed on demand by breadth-first search and returned together with the
/// number of direct steps (the relaxation distance).
#[derive(Debug, Clone)]
pub struct Hierarchy<T> {
    parents: HashMap<T, Vec<T>>,
    children: HashMap<T, Vec<T>>,
    members: HashSet<T>,
}

impl<T> Default for Hierarchy<T> {
    fn default() -> Self {
        Hierarchy {
            parents: HashMap::new(),
            children: HashMap::new(),
            members: HashSet::new(),
        }
    }
}

impl<T: Copy + Eq + Hash + Ord + std::fmt::Debug> Hierarchy<T> {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `member` without any parent/child edges (a root until an
    /// edge is added).
    pub fn add_member(&mut self, member: T) {
        self.members.insert(member);
    }

    /// Adds the direct relation `child ⊑ parent`.
    ///
    /// Returns an error if this would introduce a cycle.
    pub fn add_edge(&mut self, child: T, parent: T) -> Result<(), OntologyError> {
        if child == parent || self.ancestors(parent).iter().any(|(a, _)| *a == child) {
            return Err(OntologyError::CycleDetected(format!("{child:?}")));
        }
        self.members.insert(child);
        self.members.insert(parent);
        let parents = self.parents.entry(child).or_default();
        if !parents.contains(&parent) {
            parents.push(parent);
            self.children.entry(parent).or_default().push(child);
        }
        Ok(())
    }

    /// Whether `member` is known to this hierarchy.
    pub fn contains(&self, member: T) -> bool {
        self.members.contains(&member)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the hierarchy has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over all members (unordered).
    pub fn members(&self) -> impl Iterator<Item = T> + '_ {
        self.members.iter().copied()
    }

    /// Direct parents of `member`.
    pub fn parents(&self, member: T) -> &[T] {
        self.parents.get(&member).map_or(&[][..], Vec::as_slice)
    }

    /// Direct children of `member`.
    pub fn children(&self, member: T) -> &[T] {
        self.children.get(&member).map_or(&[][..], Vec::as_slice)
    }

    /// All proper ancestors of `member` with their distance (number of direct
    /// steps), in breadth-first order, i.e. nearest (most specific) first.
    /// If several paths reach an ancestor the minimum distance is reported.
    pub fn ancestors(&self, member: T) -> Vec<(T, u32)> {
        self.closure(member, |h, m| h.parents(m))
    }

    /// All proper descendants of `member` with their distance, nearest first.
    pub fn descendants(&self, member: T) -> Vec<(T, u32)> {
        self.closure(member, |h, m| h.children(m))
    }

    /// `member` together with all of its descendants (no distances) — the
    /// set a label expands to under RDFS inference.
    pub fn descendants_or_self(&self, member: T) -> Vec<T> {
        let mut out = vec![member];
        out.extend(self.descendants(member).into_iter().map(|(m, _)| m));
        out
    }

    /// Whether `ancestor` is a proper ancestor of `member`.
    pub fn is_ancestor(&self, ancestor: T, member: T) -> bool {
        self.ancestors(member).iter().any(|(a, _)| *a == ancestor)
    }

    /// Members with no parents.
    pub fn roots(&self) -> Vec<T> {
        let mut roots: Vec<T> = self
            .members
            .iter()
            .copied()
            .filter(|m| self.parents(*m).is_empty())
            .collect();
        roots.sort();
        roots
    }

    /// Members with no children.
    pub fn leaves(&self) -> Vec<T> {
        let mut leaves: Vec<T> = self
            .members
            .iter()
            .copied()
            .filter(|m| self.children(*m).is_empty())
            .collect();
        leaves.sort();
        leaves
    }

    /// Length of the longest child-chain below `member` (0 if it is a leaf).
    pub fn depth_below(&self, member: T) -> u32 {
        self.children(member)
            .iter()
            .map(|&c| 1 + self.depth_below(c))
            .max()
            .unwrap_or(0)
    }

    /// Average number of children over non-leaf members of the sub-hierarchy
    /// rooted at `member` (the paper's Figure 2 "average fan-out").
    pub fn average_fanout_below(&self, member: T) -> f64 {
        let mut non_leaves = 0usize;
        let mut child_edges = 0usize;
        let mut stack = vec![member];
        let mut seen = HashSet::new();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            let kids = self.children(m);
            if !kids.is_empty() {
                non_leaves += 1;
                child_edges += kids.len();
                stack.extend(kids.iter().copied());
            }
        }
        if non_leaves == 0 {
            0.0
        } else {
            child_edges as f64 / non_leaves as f64
        }
    }

    /// Number of members in the sub-hierarchy rooted at `member` (inclusive).
    pub fn size_below(&self, member: T) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![member];
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                stack.extend(self.children(m).iter().copied());
            }
        }
        seen.len()
    }

    fn closure<'a, F>(&'a self, start: T, step: F) -> Vec<(T, u32)>
    where
        F: Fn(&'a Hierarchy<T>, T) -> &'a [T],
    {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        seen.insert(start);
        let mut queue = VecDeque::new();
        queue.push_back((start, 0u32));
        while let Some((m, d)) = queue.pop_front() {
            for &next in step(self, m) {
                if seen.insert(next) {
                    out.push((next, d + 1));
                    queue.push_back((next, d + 1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds:        animal
    ///               /      \
    ///            mammal    bird
    ///            /    \
    ///          dog    cat
    fn sample() -> Hierarchy<u32> {
        let mut h = Hierarchy::new();
        h.add_edge(1, 0).unwrap(); // mammal -> animal
        h.add_edge(2, 0).unwrap(); // bird -> animal
        h.add_edge(3, 1).unwrap(); // dog -> mammal
        h.add_edge(4, 1).unwrap(); // cat -> mammal
        h
    }

    #[test]
    fn ancestors_with_distances() {
        let h = sample();
        assert_eq!(h.ancestors(3), vec![(1, 1), (0, 2)]);
        assert_eq!(h.ancestors(0), vec![]);
    }

    #[test]
    fn descendants_with_distances() {
        let h = sample();
        let d = h.descendants(0);
        assert_eq!(d.len(), 4);
        assert!(d.contains(&(1, 1)));
        assert!(d.contains(&(3, 2)));
        assert_eq!(h.descendants_or_self(1), vec![1, 3, 4]);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut h = sample();
        assert!(h.add_edge(0, 3).is_err()); // animal -> dog would close a cycle
        assert!(h.add_edge(0, 0).is_err()); // self-loop
    }

    #[test]
    fn roots_and_leaves() {
        let h = sample();
        assert_eq!(h.roots(), vec![0]);
        assert_eq!(h.leaves(), vec![2, 3, 4]);
    }

    #[test]
    fn depth_and_fanout() {
        let h = sample();
        assert_eq!(h.depth_below(0), 2);
        assert_eq!(h.depth_below(1), 1);
        assert_eq!(h.depth_below(3), 0);
        // non-leaves: animal (2 children), mammal (2 children) -> fanout 2.0
        assert!((h.average_fanout_below(0) - 2.0).abs() < 1e-9);
        assert_eq!(h.size_below(0), 5);
        assert_eq!(h.size_below(1), 3);
    }

    #[test]
    fn is_ancestor_and_membership() {
        let h = sample();
        assert!(h.is_ancestor(0, 3));
        assert!(h.is_ancestor(1, 4));
        assert!(!h.is_ancestor(3, 0));
        assert!(h.contains(4));
        assert!(!h.contains(99));
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn diamond_reports_minimum_distance() {
        // d -> b -> a, d -> c -> a, and also d -> a directly.
        let mut h = Hierarchy::new();
        h.add_edge(1, 0).unwrap();
        h.add_edge(2, 0).unwrap();
        h.add_edge(3, 1).unwrap();
        h.add_edge(3, 2).unwrap();
        h.add_edge(3, 0).unwrap();
        let anc = h.ancestors(3);
        assert!(anc.contains(&(0, 1)));
        assert_eq!(anc.len(), 3);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut h = Hierarchy::new();
        h.add_edge(1, 0).unwrap();
        h.add_edge(1, 0).unwrap();
        assert_eq!(h.parents(1), &[0]);
        assert_eq!(h.children(0), &[1]);
    }
}
