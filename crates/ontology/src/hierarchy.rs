//! A generic "is-a" hierarchy (a DAG), used for both the subclass and the
//! subproperty relations.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

use omega_graph::FxHashMap;

use crate::error::OntologyError;

/// Interned transitive closures of a frozen [`Hierarchy`]: one row per
/// member (in sorted member order) holding its descendants-or-self set and
/// its ancestors with distances, flattened into offset/data arrays so a
/// lookup returns a borrowed slice without allocating.
///
/// This is what the RDFS-inference hot path reads instead of re-running a
/// BFS (and heap-allocating its result) on every expansion.
#[derive(Debug, Clone)]
pub(crate) struct FrozenTables<T> {
    /// Member → row index.
    pub(crate) rows: FxHashMap<T, u32>,
    /// Row `r`'s descendants-or-self set is
    /// `closure_data[closure_offsets[r] .. closure_offsets[r + 1]]`
    /// (the member itself first, then BFS order — exactly the order
    /// [`Hierarchy::descendants_or_self`] produces).
    pub(crate) closure_offsets: Vec<u32>,
    pub(crate) closure_data: Vec<T>,
    /// Row `r`'s proper ancestors with distances, nearest first (the order
    /// [`Hierarchy::ancestors`] produces).
    pub(crate) ancestor_offsets: Vec<u32>,
    pub(crate) ancestor_data: Vec<(T, u32)>,
}

impl<T: Copy + Eq + Hash> FrozenTables<T> {
    fn closure_row(&self, member: T) -> Option<&[T]> {
        let r = *self.rows.get(&member)? as usize;
        Some(
            &self.closure_data
                [self.closure_offsets[r] as usize..self.closure_offsets[r + 1] as usize],
        )
    }

    fn ancestor_row(&self, member: T) -> Option<&[(T, u32)]> {
        let r = *self.rows.get(&member)? as usize;
        Some(
            &self.ancestor_data
                [self.ancestor_offsets[r] as usize..self.ancestor_offsets[r + 1] as usize],
        )
    }
}

/// A directed acyclic "child → parent" hierarchy over ids of type `T`.
///
/// The hierarchy stores the *direct* relation; transitive closures are
/// computed on demand by breadth-first search and returned together with the
/// number of direct steps (the relaxation distance).
///
/// Like the graph store, a hierarchy can be *frozen* ([`Hierarchy::freeze`])
/// once construction is complete: the closures the evaluator needs under
/// RDFS inference are interned into flat arrays, and
/// [`Hierarchy::interned_descendants_or_self`] /
/// [`Hierarchy::interned_ancestors`] serve them as borrowed slices without
/// any per-query allocation. Mutation transparently drops the tables.
#[derive(Debug, Clone)]
pub struct Hierarchy<T> {
    parents: HashMap<T, Vec<T>>,
    children: HashMap<T, Vec<T>>,
    members: HashSet<T>,
    frozen: Option<FrozenTables<T>>,
}

impl<T> Default for Hierarchy<T> {
    fn default() -> Self {
        Hierarchy {
            parents: HashMap::new(),
            children: HashMap::new(),
            members: HashSet::new(),
            frozen: None,
        }
    }
}

impl<T: Copy + Eq + Hash + Ord + std::fmt::Debug> Hierarchy<T> {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `member` without any parent/child edges (a root until an
    /// edge is added).
    pub fn add_member(&mut self, member: T) {
        if self.members.insert(member) {
            self.frozen = None;
        }
    }

    /// Adds the direct relation `child ⊑ parent`.
    ///
    /// Returns an error if this would introduce a cycle. Drops the interned
    /// closure tables, if any.
    pub fn add_edge(&mut self, child: T, parent: T) -> Result<(), OntologyError> {
        if child == parent || self.ancestors(parent).iter().any(|(a, _)| *a == child) {
            return Err(OntologyError::CycleDetected(format!("{child:?}")));
        }
        self.frozen = None;
        self.members.insert(child);
        self.members.insert(parent);
        let parents = self.parents.entry(child).or_default();
        if !parents.contains(&parent) {
            parents.push(parent);
            self.children.entry(parent).or_default().push(child);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Freezing: interned closures for the inference hot path
    // ------------------------------------------------------------------

    /// Interns the descendants-or-self and ancestor closures of every member
    /// into flat arrays. Idempotent; dropped again by any mutation.
    pub fn freeze(&mut self) {
        if self.frozen.is_some() {
            return;
        }
        let mut sorted: Vec<T> = self.members.iter().copied().collect();
        sorted.sort();
        let mut rows = FxHashMap::default();
        let mut closure_offsets = Vec::with_capacity(sorted.len() + 1);
        let mut closure_data = Vec::new();
        let mut ancestor_offsets = Vec::with_capacity(sorted.len() + 1);
        let mut ancestor_data = Vec::new();
        closure_offsets.push(0);
        ancestor_offsets.push(0);
        for (row, &member) in sorted.iter().enumerate() {
            rows.insert(member, row as u32);
            closure_data.extend(self.descendants_or_self(member));
            closure_offsets.push(closure_data.len() as u32);
            ancestor_data.extend(self.ancestors(member));
            ancestor_offsets.push(ancestor_data.len() as u32);
        }
        self.frozen = Some(FrozenTables {
            rows,
            closure_offsets,
            closure_data,
            ancestor_offsets,
            ancestor_data,
        });
    }

    /// Whether the interned closure tables are present and current.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// The interned descendants-or-self closure of `member` (member first,
    /// then BFS order): `None` when the hierarchy is not frozen or `member`
    /// is unknown (an unknown member's closure is just itself).
    #[inline]
    pub fn interned_descendants_or_self(&self, member: T) -> Option<&[T]> {
        self.frozen.as_ref()?.closure_row(member)
    }

    /// The interned proper-ancestor closure of `member` with distances,
    /// nearest first: `None` when not frozen or `member` is unknown (an
    /// unknown member has no ancestors).
    #[inline]
    pub fn interned_ancestors(&self, member: T) -> Option<&[(T, u32)]> {
        self.frozen.as_ref()?.ancestor_row(member)
    }

    /// The interned tables (for snapshot serialisation).
    pub(crate) fn frozen_tables(&self) -> Option<&FrozenTables<T>> {
        self.frozen.as_ref()
    }

    /// Members in sorted order — the row order of the frozen tables.
    pub(crate) fn sorted_members(&self) -> Vec<T> {
        let mut sorted: Vec<T> = self.members.iter().copied().collect();
        sorted.sort();
        sorted
    }

    /// Rebuilds a hierarchy from its direct-relation maps and pre-computed
    /// closure tables (the snapshot load path). The caller — the snapshot
    /// decoder — has validated offsets and row counts; relation *content* is
    /// trusted from the checksummed image, so no cycle check is re-run.
    pub(crate) fn from_snapshot_parts(
        members: Vec<T>,
        parents: HashMap<T, Vec<T>>,
        children: HashMap<T, Vec<T>>,
        frozen: FrozenTables<T>,
    ) -> Hierarchy<T> {
        Hierarchy {
            parents,
            children,
            members: members.into_iter().collect(),
            frozen: Some(frozen),
        }
    }

    /// Whether `member` is known to this hierarchy.
    pub fn contains(&self, member: T) -> bool {
        self.members.contains(&member)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the hierarchy has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over all members (unordered).
    pub fn members(&self) -> impl Iterator<Item = T> + '_ {
        self.members.iter().copied()
    }

    /// Direct parents of `member`.
    pub fn parents(&self, member: T) -> &[T] {
        self.parents.get(&member).map_or(&[][..], Vec::as_slice)
    }

    /// Direct children of `member`.
    pub fn children(&self, member: T) -> &[T] {
        self.children.get(&member).map_or(&[][..], Vec::as_slice)
    }

    /// All proper ancestors of `member` with their distance (number of direct
    /// steps), in breadth-first order, i.e. nearest (most specific) first.
    /// If several paths reach an ancestor the minimum distance is reported.
    pub fn ancestors(&self, member: T) -> Vec<(T, u32)> {
        self.closure(member, |h, m| h.parents(m))
    }

    /// All proper descendants of `member` with their distance, nearest first.
    pub fn descendants(&self, member: T) -> Vec<(T, u32)> {
        self.closure(member, |h, m| h.children(m))
    }

    /// `member` together with all of its descendants (no distances) — the
    /// set a label expands to under RDFS inference.
    pub fn descendants_or_self(&self, member: T) -> Vec<T> {
        let mut out = vec![member];
        out.extend(self.descendants(member).into_iter().map(|(m, _)| m));
        out
    }

    /// Whether `ancestor` is a proper ancestor of `member`.
    ///
    /// Allocation-free on a frozen hierarchy (served from the interned
    /// ancestor table); falls back to an on-demand BFS otherwise.
    pub fn is_ancestor(&self, ancestor: T, member: T) -> bool {
        if let Some(tables) = &self.frozen {
            return tables
                .ancestor_row(member)
                .is_some_and(|row| row.iter().any(|(a, _)| *a == ancestor));
        }
        self.ancestors(member).iter().any(|(a, _)| *a == ancestor)
    }

    /// Members with no parents.
    pub fn roots(&self) -> Vec<T> {
        let mut roots: Vec<T> = self
            .members
            .iter()
            .copied()
            .filter(|m| self.parents(*m).is_empty())
            .collect();
        roots.sort();
        roots
    }

    /// Members with no children.
    pub fn leaves(&self) -> Vec<T> {
        let mut leaves: Vec<T> = self
            .members
            .iter()
            .copied()
            .filter(|m| self.children(*m).is_empty())
            .collect();
        leaves.sort();
        leaves
    }

    /// Length of the longest child-chain below `member` (0 if it is a leaf).
    pub fn depth_below(&self, member: T) -> u32 {
        self.children(member)
            .iter()
            .map(|&c| 1 + self.depth_below(c))
            .max()
            .unwrap_or(0)
    }

    /// Average number of children over non-leaf members of the sub-hierarchy
    /// rooted at `member` (the paper's Figure 2 "average fan-out").
    pub fn average_fanout_below(&self, member: T) -> f64 {
        let mut non_leaves = 0usize;
        let mut child_edges = 0usize;
        let mut stack = vec![member];
        let mut seen = HashSet::new();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            let kids = self.children(m);
            if !kids.is_empty() {
                non_leaves += 1;
                child_edges += kids.len();
                stack.extend(kids.iter().copied());
            }
        }
        if non_leaves == 0 {
            0.0
        } else {
            child_edges as f64 / non_leaves as f64
        }
    }

    /// Number of members in the sub-hierarchy rooted at `member` (inclusive).
    pub fn size_below(&self, member: T) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![member];
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                stack.extend(self.children(m).iter().copied());
            }
        }
        seen.len()
    }

    fn closure<'a, F>(&'a self, start: T, step: F) -> Vec<(T, u32)>
    where
        F: Fn(&'a Hierarchy<T>, T) -> &'a [T],
    {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        seen.insert(start);
        let mut queue = VecDeque::new();
        queue.push_back((start, 0u32));
        while let Some((m, d)) = queue.pop_front() {
            for &next in step(self, m) {
                if seen.insert(next) {
                    out.push((next, d + 1));
                    queue.push_back((next, d + 1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds:        animal
    ///               /      \
    ///            mammal    bird
    ///            /    \
    ///          dog    cat
    fn sample() -> Hierarchy<u32> {
        let mut h = Hierarchy::new();
        h.add_edge(1, 0).unwrap(); // mammal -> animal
        h.add_edge(2, 0).unwrap(); // bird -> animal
        h.add_edge(3, 1).unwrap(); // dog -> mammal
        h.add_edge(4, 1).unwrap(); // cat -> mammal
        h
    }

    #[test]
    fn ancestors_with_distances() {
        let h = sample();
        assert_eq!(h.ancestors(3), vec![(1, 1), (0, 2)]);
        assert_eq!(h.ancestors(0), vec![]);
    }

    #[test]
    fn descendants_with_distances() {
        let h = sample();
        let d = h.descendants(0);
        assert_eq!(d.len(), 4);
        assert!(d.contains(&(1, 1)));
        assert!(d.contains(&(3, 2)));
        assert_eq!(h.descendants_or_self(1), vec![1, 3, 4]);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut h = sample();
        assert!(h.add_edge(0, 3).is_err()); // animal -> dog would close a cycle
        assert!(h.add_edge(0, 0).is_err()); // self-loop
    }

    #[test]
    fn roots_and_leaves() {
        let h = sample();
        assert_eq!(h.roots(), vec![0]);
        assert_eq!(h.leaves(), vec![2, 3, 4]);
    }

    #[test]
    fn depth_and_fanout() {
        let h = sample();
        assert_eq!(h.depth_below(0), 2);
        assert_eq!(h.depth_below(1), 1);
        assert_eq!(h.depth_below(3), 0);
        // non-leaves: animal (2 children), mammal (2 children) -> fanout 2.0
        assert!((h.average_fanout_below(0) - 2.0).abs() < 1e-9);
        assert_eq!(h.size_below(0), 5);
        assert_eq!(h.size_below(1), 3);
    }

    #[test]
    fn is_ancestor_and_membership() {
        let h = sample();
        assert!(h.is_ancestor(0, 3));
        assert!(h.is_ancestor(1, 4));
        assert!(!h.is_ancestor(3, 0));
        assert!(h.contains(4));
        assert!(!h.contains(99));
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn diamond_reports_minimum_distance() {
        // d -> b -> a, d -> c -> a, and also d -> a directly.
        let mut h = Hierarchy::new();
        h.add_edge(1, 0).unwrap();
        h.add_edge(2, 0).unwrap();
        h.add_edge(3, 1).unwrap();
        h.add_edge(3, 2).unwrap();
        h.add_edge(3, 0).unwrap();
        let anc = h.ancestors(3);
        assert!(anc.contains(&(0, 1)));
        assert_eq!(anc.len(), 3);
    }

    #[test]
    fn frozen_tables_match_on_demand_closures() {
        let mut h = sample();
        h.freeze();
        assert!(h.is_frozen());
        for m in 0..5u32 {
            assert_eq!(
                h.interned_descendants_or_self(m).unwrap(),
                &h.descendants_or_self(m)[..],
            );
            assert_eq!(h.interned_ancestors(m).unwrap(), &h.ancestors(m)[..]);
        }
        // Unknown members have no interned rows.
        assert!(h.interned_descendants_or_self(99).is_none());
        assert!(h.interned_ancestors(99).is_none());
        // is_ancestor agrees with the unfrozen answer.
        assert!(h.is_ancestor(0, 3));
        assert!(!h.is_ancestor(3, 0));
        assert!(!h.is_ancestor(0, 99));
    }

    #[test]
    fn mutation_drops_the_frozen_tables() {
        let mut h = sample();
        h.freeze();
        h.add_edge(5, 2).unwrap(); // penguin -> bird
        assert!(!h.is_frozen(), "adding an edge must invalidate");
        h.freeze();
        assert_eq!(
            h.interned_descendants_or_self(2).unwrap(),
            &h.descendants_or_self(2)[..]
        );
        // Adding a genuinely new member also invalidates…
        h.add_member(9);
        assert!(!h.is_frozen());
        h.freeze();
        // …but re-adding an existing one does not.
        h.add_member(9);
        assert!(h.is_frozen());
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut h = Hierarchy::new();
        h.add_edge(1, 0).unwrap();
        h.add_edge(1, 0).unwrap();
        assert_eq!(h.parents(1), &[0]);
        assert_eq!(h.children(0), &[1]);
    }
}
