//! The byte transports the protocol runs over: unix-domain and TCP stream
//! sockets, unified behind one enum so the server's connection loop and the
//! client library are transport-agnostic.
//!
//! Cloning ([`Transport::try_clone`]) duplicates the socket handle, so one
//! half can sit inside a [`crate::FrameReader`] while the other writes
//! frames; timeouts and blocking mode apply to the shared underlying socket
//! either way.

use std::io::{Read, Result as IoResult, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A connected stream socket.
#[derive(Debug)]
pub enum Transport {
    /// A unix-domain stream socket.
    Unix(UnixStream),
    /// A TCP socket (`TCP_NODELAY` is the creator's responsibility).
    Tcp(TcpStream),
}

impl Transport {
    /// A second handle to the same socket (shared file description: mode
    /// and timeout changes through either handle affect both).
    pub fn try_clone(&self) -> IoResult<Transport> {
        Ok(match self {
            Transport::Unix(s) => Transport::Unix(s.try_clone()?),
            Transport::Tcp(s) => Transport::Tcp(s.try_clone()?),
        })
    }

    /// Read timeout (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> IoResult<()> {
        match self {
            Transport::Unix(s) => s.set_read_timeout(timeout),
            Transport::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Write timeout (`None` blocks forever).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> IoResult<()> {
        match self {
            Transport::Unix(s) => s.set_write_timeout(timeout),
            Transport::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Non-blocking mode for opportunistic control-frame polls.
    pub fn set_nonblocking(&self, on: bool) -> IoResult<()> {
        match self {
            Transport::Unix(s) => s.set_nonblocking(on),
            Transport::Tcp(s) => s.set_nonblocking(on),
        }
    }

    /// Shuts down both directions, waking any thread blocked on the socket.
    pub fn shutdown(&self) -> IoResult<()> {
        match self {
            Transport::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Transport::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        match self {
            Transport::Unix(s) => s.read(buf),
            Transport::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        match self {
            Transport::Unix(s) => s.write(buf),
            Transport::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> IoResult<()> {
        match self {
            Transport::Unix(s) => s.flush(),
            Transport::Tcp(s) => s.flush(),
        }
    }
}
