//! Value codecs: engine types ⇄ wire bytes.
//!
//! Everything the serving layer carries — answers, statistics, execution
//! options, errors, gauges — encodes here. Each codec is a pure function
//! pair over [`Writer`] / [`Reader`]; the framing layer
//! ([`crate::frame`]) composes them.

use std::collections::BTreeMap;
use std::time::Instant;

use omega_core::{
    Answer, EvalStats, ExecOptions, GovernorGauges, OmegaError, OverloadPolicy, QueryProfile,
    TruncationReason,
};
use omega_regex::RegexParseError;

use crate::error::{ProtocolError, WireError};
use crate::wire::{Reader, Writer};

// ---------------------------------------------------------------------------
// Answer
// ---------------------------------------------------------------------------

/// Encodes one ranked answer: distance, then the head bindings in
/// `BTreeMap` (i.e. deterministic) order.
pub fn put_answer(w: &mut Writer, answer: &Answer) {
    w.put_u32(answer.distance);
    w.put_u32(answer.bindings.len() as u32);
    for (var, value) in &answer.bindings {
        w.put_str(var);
        w.put_str(value);
    }
}

/// Decodes one ranked answer.
pub fn take_answer(r: &mut Reader<'_>) -> Result<Answer, ProtocolError> {
    let distance = r.take_u32()?;
    let count = r.take_u32()?;
    let mut bindings = BTreeMap::new();
    for _ in 0..count {
        let var = r.take_str()?;
        let value = r.take_str()?;
        bindings.insert(var, value);
    }
    Ok(Answer { bindings, distance })
}

// ---------------------------------------------------------------------------
// EvalStats
// ---------------------------------------------------------------------------

/// Encodes the full evaluator counter block, including the degradation
/// markers, so remote stats compare bit-identically to in-process runs.
pub fn put_stats(w: &mut Writer, stats: &EvalStats) {
    w.put_u64(stats.tuples_added);
    w.put_u64(stats.tuples_processed);
    w.put_u64(stats.succ_calls);
    w.put_u64(stats.neighbour_lookups);
    w.put_u64(stats.answers);
    w.put_u64(stats.suppressed);
    w.put_u64(stats.restarts);
    w.put_u64(stats.pruned_dead);
    w.put_u64(stats.pruned_bound);
    w.put_u64(stats.deferred_expansions);
    w.put_u64(stats.worker_panics);
    w.put_u64(stats.sheds);
    w.put_bool(stats.degraded);
    w.put_opt(stats.truncation, |w, reason| {
        w.put_u8(match reason {
            TruncationReason::TupleBudget => 0,
            TruncationReason::PoolExhausted => 1,
        })
    });
}

/// Decodes an [`EvalStats`] block.
pub fn take_stats(r: &mut Reader<'_>) -> Result<EvalStats, ProtocolError> {
    Ok(EvalStats {
        tuples_added: r.take_u64()?,
        tuples_processed: r.take_u64()?,
        succ_calls: r.take_u64()?,
        neighbour_lookups: r.take_u64()?,
        answers: r.take_u64()?,
        suppressed: r.take_u64()?,
        restarts: r.take_u64()?,
        pruned_dead: r.take_u64()?,
        pruned_bound: r.take_u64()?,
        deferred_expansions: r.take_u64()?,
        worker_panics: r.take_u64()?,
        sheds: r.take_u64()?,
        degraded: r.take_bool()?,
        truncation: r.take_opt(|r| match r.take_u8()? {
            0 => Ok(TruncationReason::TupleBudget),
            1 => Ok(TruncationReason::PoolExhausted),
            _ => Err(ProtocolError::Malformed("unknown truncation reason")),
        })?,
    })
}

// ---------------------------------------------------------------------------
// QueryProfile
// ---------------------------------------------------------------------------

/// Encodes a per-phase query profile: phase count, then `(name, nanos)`
/// pairs in execution order.
pub fn put_profile(w: &mut Writer, profile: &QueryProfile) {
    w.put_u32(profile.phases().len() as u32);
    for phase in profile.phases() {
        w.put_str(&phase.name);
        w.put_u64(phase.nanos);
    }
}

/// Decodes a per-phase query profile.
pub fn take_profile(r: &mut Reader<'_>) -> Result<QueryProfile, ProtocolError> {
    let count = r.take_u32()?;
    let mut profile = QueryProfile::new();
    for _ in 0..count {
        let name = r.take_str()?;
        let nanos = r.take_u64()?;
        profile.push(name, nanos);
    }
    Ok(profile)
}

// ---------------------------------------------------------------------------
// ExecOptions
// ---------------------------------------------------------------------------

fn put_policy(w: &mut Writer, policy: OverloadPolicy) {
    w.put_u8(match policy {
        OverloadPolicy::Fail => 0,
        OverloadPolicy::Degrade => 1,
        OverloadPolicy::Shed => 2,
    });
}

fn take_policy(r: &mut Reader<'_>) -> Result<OverloadPolicy, ProtocolError> {
    match r.take_u8()? {
        0 => Ok(OverloadPolicy::Fail),
        1 => Ok(OverloadPolicy::Degrade),
        2 => Ok(OverloadPolicy::Shed),
        _ => Err(ProtocolError::Malformed("unknown overload policy")),
    }
}

/// Encodes a request's execution options.
///
/// `Instant` deadlines cannot cross a process boundary, so the absolute
/// `deadline` and the relative `timeout` fold into one *remaining budget*
/// at encode time (the tighter of the two, measured against `Instant::now()`
/// on the client); the server re-anchors it as a `timeout` when execution
/// starts. An already-expired deadline encodes as a zero budget, which the
/// evaluator rejects with [`OmegaError::DeadlineExceeded`] on first pull —
/// the same behaviour an in-process caller sees.
pub fn put_exec_options(w: &mut Writer, options: &ExecOptions) {
    let from_deadline = options
        .deadline
        .map(|d| d.saturating_duration_since(Instant::now()));
    let budget = match (options.timeout, from_deadline) {
        (Some(t), Some(d)) => Some(t.min(d)),
        (Some(t), None) => Some(t),
        (None, Some(d)) => Some(d),
        (None, None) => None,
    };
    w.put_opt(options.limit, Writer::put_usize);
    w.put_opt(budget, |w, v| w.put_duration(v));
    w.put_opt(options.max_distance, Writer::put_u32);
    w.put_opt(options.max_tuples, Writer::put_usize);
    w.put_opt(options.distance_aware, Writer::put_bool);
    w.put_opt(options.disjunction_decomposition, Writer::put_bool);
    w.put_opt(options.batch_size, Writer::put_usize);
    w.put_opt(options.prioritize_final, Writer::put_bool);
    w.put_opt(options.parallel_conjuncts, Writer::put_bool);
    w.put_opt(options.parallel_workers, Writer::put_usize);
    w.put_opt(options.parallel_channel_capacity, Writer::put_usize);
    w.put_opt(options.cost_guided, Writer::put_bool);
    w.put_opt(options.on_overload, put_policy);
    w.put_bool(options.profile);
}

/// Decodes execution options; the wire budget lands in `timeout`, never in
/// `deadline` (see [`put_exec_options`]).
pub fn take_exec_options(r: &mut Reader<'_>) -> Result<ExecOptions, ProtocolError> {
    Ok(ExecOptions {
        limit: r.take_opt(Reader::take_usize)?,
        timeout: r.take_opt(Reader::take_duration)?,
        deadline: None,
        max_distance: r.take_opt(Reader::take_u32)?,
        max_tuples: r.take_opt(Reader::take_usize)?,
        distance_aware: r.take_opt(Reader::take_bool)?,
        disjunction_decomposition: r.take_opt(Reader::take_bool)?,
        batch_size: r.take_opt(Reader::take_usize)?,
        prioritize_final: r.take_opt(Reader::take_bool)?,
        parallel_conjuncts: r.take_opt(Reader::take_bool)?,
        parallel_workers: r.take_opt(Reader::take_usize)?,
        parallel_channel_capacity: r.take_opt(Reader::take_usize)?,
        cost_guided: r.take_opt(Reader::take_bool)?,
        on_overload: r.take_opt(take_policy)?,
        profile: r.take_bool()?,
    })
}

// ---------------------------------------------------------------------------
// OmegaError / WireError
// ---------------------------------------------------------------------------

/// Encodes an engine error losslessly — positions, messages, budgets and
/// `retry_after` all survive the round trip.
pub fn put_engine_error(w: &mut Writer, err: &OmegaError) {
    match err {
        OmegaError::Parse { position, message } => {
            w.put_u8(0);
            w.put_usize(*position);
            w.put_str(message);
        }
        OmegaError::Regex(err) => {
            w.put_u8(1);
            w.put_usize(err.position);
            w.put_str(&err.message);
        }
        OmegaError::UnknownConstant(name) => {
            w.put_u8(2);
            w.put_str(name);
        }
        OmegaError::UnboundHeadVariable(name) => {
            w.put_u8(3);
            w.put_str(name);
        }
        OmegaError::EmptyQuery => w.put_u8(4),
        OmegaError::ResourceExhausted { tuples } => {
            w.put_u8(5);
            w.put_usize(*tuples);
        }
        OmegaError::DeadlineExceeded => w.put_u8(6),
        OmegaError::Cancelled => w.put_u8(7),
        OmegaError::Overloaded { retry_after } => {
            w.put_u8(8);
            w.put_duration(*retry_after);
        }
        OmegaError::Internal { message } => {
            w.put_u8(9);
            w.put_str(message);
        }
        OmegaError::MutationFailed { message } => {
            w.put_u8(10);
            w.put_str(message);
        }
        OmegaError::ReadOnly { message } => {
            w.put_u8(11);
            w.put_str(message);
        }
    }
}

/// Decodes an engine error.
pub fn take_engine_error(r: &mut Reader<'_>) -> Result<OmegaError, ProtocolError> {
    Ok(match r.take_u8()? {
        0 => OmegaError::Parse {
            position: r.take_usize()?,
            message: r.take_str()?,
        },
        1 => OmegaError::Regex(RegexParseError {
            position: r.take_usize()?,
            message: r.take_str()?,
        }),
        2 => OmegaError::UnknownConstant(r.take_str()?),
        3 => OmegaError::UnboundHeadVariable(r.take_str()?),
        4 => OmegaError::EmptyQuery,
        5 => OmegaError::ResourceExhausted {
            tuples: r.take_usize()?,
        },
        6 => OmegaError::DeadlineExceeded,
        7 => OmegaError::Cancelled,
        8 => OmegaError::Overloaded {
            retry_after: r.take_duration()?,
        },
        9 => OmegaError::Internal {
            message: r.take_str()?,
        },
        10 => OmegaError::MutationFailed {
            message: r.take_str()?,
        },
        11 => OmegaError::ReadOnly {
            message: r.take_str()?,
        },
        _ => return Err(ProtocolError::Malformed("unknown engine error tag")),
    })
}

/// Encodes a wire error (the payload of a `Fail` frame).
pub fn put_wire_error(w: &mut Writer, err: &WireError) {
    match err {
        WireError::Engine(err) => {
            w.put_u8(0);
            put_engine_error(w, err);
        }
        WireError::UnknownStatement(id) => {
            w.put_u8(1);
            w.put_u64(*id);
        }
        WireError::VersionSkew { client, server } => {
            w.put_u8(2);
            w.put_u32(*client);
            w.put_u32(*server);
        }
        WireError::Malformed(message) => {
            w.put_u8(3);
            w.put_str(message);
        }
        WireError::Shutdown => w.put_u8(4),
    }
}

/// Decodes a wire error.
pub fn take_wire_error(r: &mut Reader<'_>) -> Result<WireError, ProtocolError> {
    Ok(match r.take_u8()? {
        0 => WireError::Engine(take_engine_error(r)?),
        1 => WireError::UnknownStatement(r.take_u64()?),
        2 => WireError::VersionSkew {
            client: r.take_u32()?,
            server: r.take_u32()?,
        },
        3 => WireError::Malformed(r.take_str()?),
        4 => WireError::Shutdown,
        _ => return Err(ProtocolError::Malformed("unknown wire error tag")),
    })
}

// ---------------------------------------------------------------------------
// Server statistics
// ---------------------------------------------------------------------------

/// Point-in-time server observability snapshot: the engine governor's
/// gauges plus the daemon's own counters, exposed through the `Stats`
/// request so overload behaviour is observable from outside the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// The database-wide governor gauges at snapshot time.
    pub gauges: GovernorGauges,
    /// Connections accepted since startup.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Executions currently streaming answers to a client.
    pub streams_in_flight: u64,
    /// Prepared statements currently held by per-connection tables.
    pub statements_open: u64,
    /// Answers streamed to clients since startup.
    pub answers_streamed: u64,
    /// Executions that performed a shed retry at admission.
    pub sheds: u64,
    /// Streams that ended degraded (budget trip under `Degrade`, or cut
    /// short by server drain).
    pub degraded: u64,
    /// Requests that failed with a typed wire error (overload, shutdown,
    /// unknown statement, evaluation failure, …) since startup.
    pub rejected: u64,
    /// Conjunct worker threads currently live in the engine's pool.
    pub live_workers: u64,
    /// Storage epoch currently serving (mutations and compactions bump it).
    pub epoch: u64,
    /// Edges held in the current epoch's delta overlay (0 after compaction).
    pub overlay_edges: u64,
    /// Seconds since the daemon started serving.
    pub uptime_secs: u64,
    /// Entries in the database's shared prepared-statement LRU cache.
    pub prepared_statements: u64,
    /// Sequence number of the last write-ahead-log record appended (0 when
    /// the daemon runs without a WAL).
    pub wal_seq: u64,
    /// Highest storage epoch known durable on stable storage (0 without a
    /// WAL; lags `epoch` under deferred fsync policies).
    pub durable_epoch: u64,
}

/// Encodes a [`ServerStats`] snapshot: the original fixed block, then a
/// length-prefixed extension block (epoch, overlay edges, uptime, prepared
/// cache size). Decoders that predate the extension stop at the fixed
/// block; newer decoders ignore extension bytes beyond the fields they
/// know, so the block can keep growing without another format break.
pub fn put_server_stats(w: &mut Writer, stats: &ServerStats) {
    w.put_usize(stats.gauges.live_tuples);
    w.put_usize(stats.gauges.join_buffer_entries);
    w.put_usize(stats.gauges.executions);
    w.put_u64(stats.gauges.rejected);
    w.put_u64(stats.connections_total);
    w.put_u64(stats.connections_open);
    w.put_u64(stats.streams_in_flight);
    w.put_u64(stats.statements_open);
    w.put_u64(stats.answers_streamed);
    w.put_u64(stats.sheds);
    w.put_u64(stats.degraded);
    w.put_u64(stats.rejected);
    w.put_u64(stats.live_workers);
    let mut ext = Writer::new();
    ext.put_u64(stats.epoch);
    ext.put_u64(stats.overlay_edges);
    ext.put_u64(stats.uptime_secs);
    ext.put_u64(stats.prepared_statements);
    ext.put_u64(stats.wal_seq);
    ext.put_u64(stats.durable_epoch);
    let ext = ext.into_inner();
    w.put_u32(ext.len() as u32);
    w.put_bytes(&ext);
}

/// Decodes a [`ServerStats`] snapshot, tolerating both a missing extension
/// block (older encoder) and an extension longer than the known fields
/// (newer encoder).
pub fn take_server_stats(r: &mut Reader<'_>) -> Result<ServerStats, ProtocolError> {
    let mut stats = ServerStats {
        gauges: GovernorGauges {
            live_tuples: r.take_usize()?,
            join_buffer_entries: r.take_usize()?,
            executions: r.take_usize()?,
            rejected: r.take_u64()?,
        },
        connections_total: r.take_u64()?,
        connections_open: r.take_u64()?,
        streams_in_flight: r.take_u64()?,
        statements_open: r.take_u64()?,
        answers_streamed: r.take_u64()?,
        sheds: r.take_u64()?,
        degraded: r.take_u64()?,
        rejected: r.take_u64()?,
        live_workers: r.take_u64()?,
        ..ServerStats::default()
    };
    if r.remaining() > 0 {
        let len = r.take_u32()? as usize;
        let mut ext = Reader::new(r.take_bytes(len)?);
        // Fields appear oldest-first; a shorter-than-known block (from a
        // hypothetical intermediate encoder) just leaves the tail zeroed.
        for field in [
            &mut stats.epoch,
            &mut stats.overlay_edges,
            &mut stats.uptime_secs,
            &mut stats.prepared_statements,
            &mut stats.wal_seq,
            &mut stats.durable_epoch,
        ] {
            if ext.remaining() < 8 {
                break;
            }
            *field = ext.take_u64()?;
        }
    }
    Ok(stats)
}

/// A human-oriented multi-line rendering shared by the REPL and logs.
impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "connections: {} open / {} total; streams in flight: {}; statements open: {}",
            self.connections_open,
            self.connections_total,
            self.streams_in_flight,
            self.statements_open
        )?;
        writeln!(
            f,
            "answers streamed: {}; sheds: {}; degraded: {}; rejected: {}",
            self.answers_streamed, self.sheds, self.degraded, self.rejected
        )?;
        writeln!(
            f,
            "epoch: {}; overlay edges: {}; prepared statements: {}; uptime: {}s",
            self.epoch, self.overlay_edges, self.prepared_statements, self.uptime_secs
        )?;
        writeln!(
            f,
            "durability: wal_seq={} durable_epoch={}",
            self.wal_seq, self.durable_epoch
        )?;
        write!(
            f,
            "governor: live_tuples={} join_buffer={} executions={} rejected={}; live workers: {}",
            self.gauges.live_tuples,
            self.gauges.join_buffer_entries,
            self.gauges.executions,
            self.gauges.rejected,
            self.live_workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn round_trip<T: PartialEq + std::fmt::Debug>(
        value: &T,
        put: impl Fn(&mut Writer, &T),
        take: impl Fn(&mut Reader<'_>) -> Result<T, ProtocolError>,
    ) {
        let mut w = Writer::new();
        put(&mut w, value);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        let back = take(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(&back, value);
    }

    #[test]
    fn every_engine_error_round_trips() {
        let errors = [
            OmegaError::Parse {
                position: 17,
                message: "unexpected token".into(),
            },
            OmegaError::Regex(RegexParseError {
                position: 3,
                message: "unbalanced paren".into(),
            }),
            OmegaError::UnknownConstant("atlantis".into()),
            OmegaError::UnboundHeadVariable("Z".into()),
            OmegaError::EmptyQuery,
            OmegaError::ResourceExhausted { tuples: 123_456 },
            OmegaError::DeadlineExceeded,
            OmegaError::Cancelled,
            OmegaError::Overloaded {
                retry_after: Duration::from_micros(12_345),
            },
            OmegaError::Internal {
                message: "worker panicked".into(),
            },
            OmegaError::MutationFailed {
                message: "delta rejected".into(),
            },
            OmegaError::ReadOnly {
                message: "wal append failed: disk full".into(),
            },
        ];
        for err in errors {
            round_trip(&err, put_engine_error, take_engine_error);
        }
    }

    #[test]
    fn exec_options_fold_deadline_into_remaining_budget() {
        let options = ExecOptions::new()
            .with_timeout(Duration::from_secs(60))
            .with_deadline(Instant::now() + Duration::from_secs(5));
        let mut w = Writer::new();
        put_exec_options(&mut w, &options);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        let back = take_exec_options(&mut r).unwrap();
        let budget = back.timeout.unwrap();
        assert!(back.deadline.is_none());
        assert!(budget <= Duration::from_secs(5), "tighter bound wins");
        assert!(budget > Duration::from_secs(4), "budget is the remainder");
    }

    #[test]
    fn expired_deadline_encodes_as_zero_budget() {
        let options = ExecOptions::new().with_deadline(Instant::now() - Duration::from_secs(1));
        let mut w = Writer::new();
        put_exec_options(&mut w, &options);
        let bytes = w.into_inner();
        let back = take_exec_options(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.timeout, Some(Duration::ZERO));
    }

    #[test]
    fn stats_round_trip_with_truncation_marker() {
        let stats = EvalStats {
            tuples_added: 1,
            answers: 9,
            sheds: 2,
            degraded: true,
            truncation: Some(TruncationReason::PoolExhausted),
            ..EvalStats::default()
        };
        round_trip(&stats, put_stats, take_stats);
    }

    #[test]
    fn server_stats_display_names_every_counter() {
        let rendered = ServerStats::default().to_string();
        for needle in ["connections", "streams", "governor", "rejected"] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }

    fn sample_server_stats() -> ServerStats {
        ServerStats {
            connections_total: 12,
            connections_open: 3,
            answers_streamed: 4_096,
            epoch: 7,
            overlay_edges: 150,
            uptime_secs: 86_400,
            prepared_statements: 32,
            wal_seq: 41,
            durable_epoch: 6,
            ..ServerStats::default()
        }
    }

    #[test]
    fn server_stats_round_trip_including_extension_block() {
        round_trip(&sample_server_stats(), put_server_stats, take_server_stats);
    }

    #[test]
    fn server_stats_decode_pre_extension_encoding() {
        // Simulate an encoder that predates the extension block: the fixed
        // field block only, no trailing length prefix.
        let stats = sample_server_stats();
        let mut w = Writer::new();
        put_server_stats(&mut w, &stats);
        let mut bytes = w.into_inner();
        bytes.truncate(bytes.len() - 4 - 6 * 8); // drop ext length + 6 u64s
        let back = take_server_stats(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.connections_total, stats.connections_total);
        assert_eq!(back.answers_streamed, stats.answers_streamed);
        assert_eq!(back.epoch, 0, "missing extension defaults to zero");
        assert_eq!(back.uptime_secs, 0);
        assert_eq!(back.prepared_statements, 0);
    }

    #[test]
    fn server_stats_decode_tolerates_longer_extension() {
        // A future encoder appends more fields inside the ext block; this
        // decoder must take what it knows and skip the rest cleanly.
        let stats = sample_server_stats();
        let mut w = Writer::new();
        put_server_stats(&mut w, &stats);
        let mut bytes = w.into_inner();
        let ext_len_at = bytes.len() - 4 - 6 * 8;
        bytes.extend_from_slice(&99u64.to_le_bytes()); // unknown future field
        let new_len = 7u32 * 8;
        bytes[ext_len_at..ext_len_at + 4].copy_from_slice(&new_len.to_le_bytes());
        let mut r = Reader::new(&bytes);
        let back = take_server_stats(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn query_profile_round_trips() {
        let mut profile = QueryProfile::new();
        profile.push("parse", 950);
        profile.push("conjunct_1", 2_000_000);
        profile.push("total", 2_500_000);
        round_trip(&profile, put_profile, take_profile);
        round_trip(&QueryProfile::new(), put_profile, take_profile);
    }

    #[test]
    fn exec_options_carry_the_profile_flag() {
        for on in [false, true] {
            let options = ExecOptions::new().with_profile(on);
            let mut w = Writer::new();
            put_exec_options(&mut w, &options);
            let back = take_exec_options(&mut Reader::new(&w.into_inner())).unwrap();
            assert_eq!(back.profile, on);
        }
    }
}
