//! Primitive little-endian value encoding shared by every frame.
//!
//! The shapes mirror the snapshot container (`omega_graph::snapshot`):
//! fixed-width little-endian integers, `u32`-length-prefixed UTF-8 strings,
//! single-byte booleans and option markers. [`Reader`] is bounds-checked and
//! never panics — running out of bytes is [`ProtocolError::Truncated`], a
//! bad discriminant is [`ProtocolError::Malformed`].

use std::time::Duration;

use crate::error::ProtocolError;

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Raw bytes, no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` widened to `u64` (the wire is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Boolean as a single `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// UTF-8 string: `u32` byte length, then the bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v.as_bytes());
    }

    /// Duration as whole nanoseconds (`u64`, saturating at ~584 years).
    pub fn put_duration(&mut self, v: Duration) {
        self.put_u64(u64::try_from(v.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Option marker byte (`0` absent / `1` present) followed by the value
    /// when present.
    pub fn put_opt<T>(&mut self, v: Option<T>, mut put: impl FnMut(&mut Writer, T)) {
        match v {
            None => self.put_u8(0),
            Some(v) => {
                self.put_u8(1);
                put(self, v);
            }
        }
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One raw byte.
    pub fn take_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, ProtocolError> {
        let bytes = self.take_bytes(4)?;
        // The slice is exactly 4 bytes by construction.
        let mut out = [0u8; 4];
        out.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(out))
    }

    /// Little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, ProtocolError> {
        let bytes = self.take_bytes(8)?;
        let mut out = [0u8; 8];
        out.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(out))
    }

    /// `u64` narrowed back to `usize` (fails on 32-bit hosts fed 64-bit
    /// values rather than wrapping).
    pub fn take_usize(&mut self) -> Result<usize, ProtocolError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| ProtocolError::Malformed("usize value exceeds host width"))
    }

    /// Boolean; any byte other than `0`/`1` is malformed.
    pub fn take_bool(&mut self) -> Result<bool, ProtocolError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError::Malformed("boolean byte is not 0 or 1")),
        }
    }

    /// UTF-8 string written by [`Writer::put_str`].
    pub fn take_str(&mut self) -> Result<String, ProtocolError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string field is not valid UTF-8"))
    }

    /// Duration written by [`Writer::put_duration`].
    pub fn take_duration(&mut self) -> Result<Duration, ProtocolError> {
        Ok(Duration::from_nanos(self.take_u64()?))
    }

    /// Option written by [`Writer::put_opt`].
    pub fn take_opt<T>(
        &mut self,
        mut take: impl FnMut(&mut Reader<'a>) -> Result<T, ProtocolError>,
    ) -> Result<Option<T>, ProtocolError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(take(self)?)),
            _ => Err(ProtocolError::Malformed("option marker is not 0 or 1")),
        }
    }

    /// Asserts every byte was consumed — trailing garbage is corruption, not
    /// forward compatibility.
    pub fn expect_end(&self) -> Result<(), ProtocolError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after frame body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_duration(Duration::from_millis(1234));
        w.put_opt(Some(42u32), |w, v| w.put_u32(v));
        w.put_opt(None::<u32>, |w, v| w.put_u32(v));
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "héllo");
        assert_eq!(r.take_duration().unwrap(), Duration::from_millis(1234));
        assert_eq!(r.take_opt(|r| r.take_u32()).unwrap(), Some(42));
        assert_eq!(r.take_opt(|r| r.take_u32()).unwrap(), None);
        r.expect_end().unwrap();
    }

    #[test]
    fn exhausted_reader_is_truncated_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.take_u32().unwrap_err(), ProtocolError::Truncated);
    }

    #[test]
    fn bad_discriminants_are_malformed() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            r.take_bool().unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        let mut r = Reader::new(&[2, 0, 0, 0, 0]);
        assert!(matches!(
            r.take_opt(|r| r.take_u32()).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.take_str().unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = Reader::new(&[0]);
        assert!(matches!(
            r.expect_end().unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }
}
