//! The frame layer: every message either side can send, its binary
//! encoding, and the buffered reader that re-assembles frames from a byte
//! stream without ever blocking away partial data.
//!
//! ## Wire layout
//!
//! ```text
//! ┌───────────────┬───────────┬──────────────────────┐
//! │ length  (u32) │ tag  (u8) │ body (length-1 bytes)│
//! └───────────────┴───────────┴──────────────────────┘
//! ```
//!
//! The length prefix counts the tag byte plus the body and is bounded by
//! [`crate::MAX_FRAME_LEN`]; a larger prefix is treated as corruption
//! ([`ProtocolError::Oversized`]) rather than allocated on faith. The
//! handshake frame additionally opens with the 8-byte [`crate::MAGIC`], the
//! same pattern as the `OMEGSNAP` snapshot header, so a peer that is not
//! speaking this protocol at all fails with [`ProtocolError::BadMagic`]
//! instead of a confusing tag error.

use std::io::{ErrorKind, Read, Write};

use omega_core::{Answer, EvalStats, ExecOptions, QueryProfile};

use crate::codec::{
    put_answer, put_exec_options, put_profile, put_server_stats, put_stats, put_wire_error,
    take_answer, take_exec_options, take_profile, take_server_stats, take_stats, take_wire_error,
    ServerStats,
};
use crate::error::{ProtocolError, WireError};
use crate::wire::{Reader, Writer};
use crate::{MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION};

/// How the client names the statement an `Execute` frame runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatementRef {
    /// A statement id returned by a `Prepared` frame on this connection.
    Id(u64),
    /// Ad-hoc query text: the server prepares (through its LRU cache) and
    /// executes in one round trip, without entering the connection's
    /// statement table.
    Text(String),
}

/// Why a `Finished` frame ended the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The stream ran to completion: limit reached or answers exhausted
    /// (including graceful degradation inside the engine, which is recorded
    /// in the accompanying [`EvalStats`]).
    Complete,
    /// The server drained the stream early because it is shutting down; the
    /// answers already delivered are a correct rank-order prefix.
    Drained,
}

/// One protocol message. Client→server frames come first, server→client
/// frames second; the tag byte namespaces them together.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client → server -------------------------------------------------
    /// Connection opener: magic + the highest protocol version the client
    /// speaks. Must be the first frame on every connection.
    Hello {
        /// Client's protocol version.
        version: u32,
    },
    /// Compile `text` into the connection's statement table.
    Prepare {
        /// Query text.
        text: String,
    },
    /// Execute a statement with per-request options and an initial answer
    /// credit window (the server never buffers more un-acknowledged answers
    /// than the client has granted).
    Execute {
        /// The statement to run.
        statement: StatementRef,
        /// Per-request execution options.
        options: ExecOptions,
        /// Initial flow-control window, in answers.
        credits: u32,
    },
    /// Grant more answer credits to the in-flight stream.
    Fetch {
        /// Additional credits, in answers.
        credits: u32,
    },
    /// Abandon the in-flight stream; the server cancels the execution and
    /// replies with a terminal `Finished`/`Fail` frame.
    Cancel,
    /// Drop a prepared statement from the connection's table.
    Close {
        /// Statement id to drop.
        id: u64,
    },
    /// Request a [`ServerStats`] snapshot.
    Stats,
    /// Request the server's full metrics exposition (counters, gauges,
    /// latency histograms) as versioned text.
    Metrics,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Apply a batch of edge mutations atomically: the server publishes all
    /// of the batch as one new storage epoch, or none of it. In-flight
    /// answer streams (on any connection) keep reading the epoch they
    /// started on.
    Mutate {
        /// Edges to add, as `(tail, label, head)` node/edge-label triples.
        adds: Vec<(String, String, String)>,
        /// Edges to remove, same shape.
        removes: Vec<(String, String, String)>,
    },

    // ---- server → client -------------------------------------------------
    /// Handshake accepted.
    HelloOk {
        /// Protocol version the connection will speak.
        version: u32,
        /// Server software identifier (informational).
        server: String,
    },
    /// A statement was prepared.
    Prepared {
        /// Connection-scoped statement id.
        id: u64,
        /// Number of conjuncts in the compiled query.
        conjuncts: u32,
        /// Head variables, in projection order.
        head: Vec<String>,
    },
    /// A batch of ranked answers, in stream order.
    Answers {
        /// The batch; never empty on the wire.
        answers: Vec<Answer>,
    },
    /// Terminal frame of a successful stream.
    Finished {
        /// Evaluator statistics for the execution.
        stats: EvalStats,
        /// Whether the stream completed or was drained by shutdown.
        reason: FinishReason,
        /// Per-phase timings, present iff the request set
        /// [`ExecOptions::with_profile`].
        profile: Option<QueryProfile>,
    },
    /// Terminal frame of a failed request.
    Fail {
        /// The typed failure.
        error: WireError,
    },
    /// Reply to `Stats`.
    StatsReply {
        /// The snapshot.
        stats: ServerStats,
    },
    /// Reply to `Metrics`.
    MetricsReply {
        /// Version of the exposition text format (independent of the
        /// protocol version, so the format can evolve without a handshake
        /// break).
        version: u32,
        /// The rendered exposition, one `name{labels} value` line per
        /// series.
        text: String,
    },
    /// Reply to `Close`.
    Closed,
    /// Reply to `Shutdown`: the server has stopped accepting work and will
    /// exit once in-flight streams finish draining.
    ShutdownOk,
    /// Reply to `Mutate`: the batch was applied and published.
    MutateOk {
        /// Storage epoch serving after the batch.
        epoch: u64,
        /// Edges actually added (duplicates of existing edges excluded).
        added: u64,
        /// Edges actually removed (unknown edges excluded).
        removed: u64,
    },
}

// Frame tags. Client requests are 0x01.., server replies 0x81.. so a
// misdirected frame fails loudly as an unknown tag.
const TAG_HELLO: u8 = 0x01;
const TAG_PREPARE: u8 = 0x02;
const TAG_EXECUTE: u8 = 0x03;
const TAG_FETCH: u8 = 0x04;
const TAG_CANCEL: u8 = 0x05;
const TAG_CLOSE: u8 = 0x06;
const TAG_STATS: u8 = 0x07;
const TAG_SHUTDOWN: u8 = 0x08;
const TAG_MUTATE: u8 = 0x09;
const TAG_METRICS: u8 = 0x0a;
const TAG_HELLO_OK: u8 = 0x81;
const TAG_PREPARED: u8 = 0x82;
const TAG_ANSWERS: u8 = 0x83;
const TAG_FINISHED: u8 = 0x84;
const TAG_FAIL: u8 = 0x85;
const TAG_STATS_REPLY: u8 = 0x86;
const TAG_CLOSED: u8 = 0x87;
const TAG_SHUTDOWN_OK: u8 = 0x88;
const TAG_MUTATE_OK: u8 = 0x89;
const TAG_METRICS_REPLY: u8 = 0x8a;

impl Frame {
    /// Encodes the frame payload: tag byte plus body (the length prefix is
    /// added by [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::Hello { version } => {
                w.put_u8(TAG_HELLO);
                w.put_bytes(&MAGIC);
                w.put_u32(*version);
            }
            Frame::Prepare { text } => {
                w.put_u8(TAG_PREPARE);
                w.put_str(text);
            }
            Frame::Execute {
                statement,
                options,
                credits,
            } => {
                w.put_u8(TAG_EXECUTE);
                match statement {
                    StatementRef::Id(id) => {
                        w.put_u8(0);
                        w.put_u64(*id);
                    }
                    StatementRef::Text(text) => {
                        w.put_u8(1);
                        w.put_str(text);
                    }
                }
                put_exec_options(&mut w, options);
                w.put_u32(*credits);
            }
            Frame::Fetch { credits } => {
                w.put_u8(TAG_FETCH);
                w.put_u32(*credits);
            }
            Frame::Cancel => w.put_u8(TAG_CANCEL),
            Frame::Close { id } => {
                w.put_u8(TAG_CLOSE);
                w.put_u64(*id);
            }
            Frame::Stats => w.put_u8(TAG_STATS),
            Frame::Metrics => w.put_u8(TAG_METRICS),
            Frame::Shutdown => w.put_u8(TAG_SHUTDOWN),
            Frame::Mutate { adds, removes } => {
                w.put_u8(TAG_MUTATE);
                for batch in [adds, removes] {
                    w.put_u32(batch.len() as u32);
                    for (tail, label, head) in batch {
                        w.put_str(tail);
                        w.put_str(label);
                        w.put_str(head);
                    }
                }
            }
            Frame::HelloOk { version, server } => {
                w.put_u8(TAG_HELLO_OK);
                w.put_u32(*version);
                w.put_str(server);
            }
            Frame::Prepared {
                id,
                conjuncts,
                head,
            } => {
                w.put_u8(TAG_PREPARED);
                w.put_u64(*id);
                w.put_u32(*conjuncts);
                w.put_u32(head.len() as u32);
                for var in head {
                    w.put_str(var);
                }
            }
            Frame::Answers { answers } => {
                w.put_u8(TAG_ANSWERS);
                w.put_u32(answers.len() as u32);
                for answer in answers {
                    put_answer(&mut w, answer);
                }
            }
            Frame::Finished {
                stats,
                reason,
                profile,
            } => {
                w.put_u8(TAG_FINISHED);
                put_stats(&mut w, stats);
                w.put_u8(match reason {
                    FinishReason::Complete => 0,
                    FinishReason::Drained => 1,
                });
                w.put_opt(profile.as_ref(), put_profile);
            }
            Frame::Fail { error } => {
                w.put_u8(TAG_FAIL);
                put_wire_error(&mut w, error);
            }
            Frame::StatsReply { stats } => {
                w.put_u8(TAG_STATS_REPLY);
                put_server_stats(&mut w, stats);
            }
            Frame::MetricsReply { version, text } => {
                w.put_u8(TAG_METRICS_REPLY);
                w.put_u32(*version);
                w.put_str(text);
            }
            Frame::Closed => w.put_u8(TAG_CLOSED),
            Frame::ShutdownOk => w.put_u8(TAG_SHUTDOWN_OK),
            Frame::MutateOk {
                epoch,
                added,
                removed,
            } => {
                w.put_u8(TAG_MUTATE_OK);
                w.put_u64(*epoch);
                w.put_u64(*added);
                w.put_u64(*removed);
            }
        }
        w.into_inner()
    }

    /// Decodes a frame payload (tag byte plus body). Corruption surfaces as
    /// a typed [`ProtocolError`]; decoding never panics.
    pub fn decode(payload: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = Reader::new(payload);
        let tag = r.take_u8()?;
        let frame = match tag {
            TAG_HELLO => {
                let mut found = [0u8; 8];
                found.copy_from_slice(r.take_bytes(8)?);
                if found != MAGIC {
                    return Err(ProtocolError::BadMagic { found });
                }
                let version = r.take_u32()?;
                if version == 0 || version > PROTOCOL_VERSION {
                    return Err(ProtocolError::UnsupportedVersion {
                        requested: version,
                        supported: PROTOCOL_VERSION,
                    });
                }
                Frame::Hello { version }
            }
            TAG_PREPARE => Frame::Prepare {
                text: r.take_str()?,
            },
            TAG_EXECUTE => {
                let statement = match r.take_u8()? {
                    0 => StatementRef::Id(r.take_u64()?),
                    1 => StatementRef::Text(r.take_str()?),
                    _ => return Err(ProtocolError::Malformed("unknown statement reference")),
                };
                let options = take_exec_options(&mut r)?;
                let credits = r.take_u32()?;
                Frame::Execute {
                    statement,
                    options,
                    credits,
                }
            }
            TAG_FETCH => Frame::Fetch {
                credits: r.take_u32()?,
            },
            TAG_CANCEL => Frame::Cancel,
            TAG_CLOSE => Frame::Close { id: r.take_u64()? },
            TAG_STATS => Frame::Stats,
            TAG_METRICS => Frame::Metrics,
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_MUTATE => {
                let mut batches = [Vec::new(), Vec::new()];
                for batch in &mut batches {
                    let count = r.take_u32()?;
                    for _ in 0..count {
                        batch.push((r.take_str()?, r.take_str()?, r.take_str()?));
                    }
                }
                let [adds, removes] = batches;
                Frame::Mutate { adds, removes }
            }
            TAG_HELLO_OK => Frame::HelloOk {
                version: r.take_u32()?,
                server: r.take_str()?,
            },
            TAG_PREPARED => {
                let id = r.take_u64()?;
                let conjuncts = r.take_u32()?;
                let count = r.take_u32()?;
                let mut head = Vec::new();
                for _ in 0..count {
                    head.push(r.take_str()?);
                }
                Frame::Prepared {
                    id,
                    conjuncts,
                    head,
                }
            }
            TAG_ANSWERS => {
                let count = r.take_u32()?;
                let mut answers = Vec::new();
                for _ in 0..count {
                    answers.push(take_answer(&mut r)?);
                }
                Frame::Answers { answers }
            }
            TAG_FINISHED => {
                let stats = take_stats(&mut r)?;
                let reason = match r.take_u8()? {
                    0 => FinishReason::Complete,
                    1 => FinishReason::Drained,
                    _ => return Err(ProtocolError::Malformed("unknown finish reason")),
                };
                let profile = r.take_opt(take_profile)?;
                Frame::Finished {
                    stats,
                    reason,
                    profile,
                }
            }
            TAG_FAIL => Frame::Fail {
                error: take_wire_error(&mut r)?,
            },
            TAG_STATS_REPLY => Frame::StatsReply {
                stats: take_server_stats(&mut r)?,
            },
            TAG_METRICS_REPLY => Frame::MetricsReply {
                version: r.take_u32()?,
                text: r.take_str()?,
            },
            TAG_CLOSED => Frame::Closed,
            TAG_SHUTDOWN_OK => Frame::ShutdownOk,
            TAG_MUTATE_OK => Frame::MutateOk {
                epoch: r.take_u64()?,
                added: r.take_u64()?,
                removed: r.take_u64()?,
            },
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.expect_end()?;
        Ok(frame)
    }
}

/// Writes one length-prefixed frame to `w` (and flushes it, so a frame is
/// either fully on the wire or an error). Returns the total bytes written
/// — prefix plus payload — for byte-level accounting.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<usize, ProtocolError> {
    let payload = frame.encode();
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(ProtocolError::Oversized {
            len: payload.len() as u32,
            max: MAX_FRAME_LEN,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(4 + payload.len())
}

/// What one [`FrameReader::poll`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// A complete frame.
    Frame(Frame),
    /// The peer closed the stream cleanly, at a frame boundary.
    Eof,
    /// The read timed out (or would block) before a full frame arrived; the
    /// partial bytes are retained and the next call resumes exactly where
    /// this one stopped.
    Pending,
}

/// Incremental frame re-assembler over any [`Read`].
///
/// The transport may be in blocking mode (a client waiting for its answer)
/// or carry a read timeout (a server polling its drain flag between
/// frames): partial reads are accumulated internally, so a timeout mid-frame
/// never corrupts the stream — the next [`FrameReader::poll`] resumes with
/// the bytes already received.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    /// Bytes of the current (incomplete) length prefix or payload.
    buf: Vec<u8>,
    /// Payload length once the prefix is complete.
    payload_len: Option<usize>,
    /// Total bytes consumed from the transport, including length prefixes.
    bytes_read: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a transport.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            payload_len: None,
            bytes_read: 0,
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Total bytes consumed from the transport so far (prefixes included).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads until a full frame, EOF or a transport timeout.
    pub fn poll(&mut self) -> Result<Poll, ProtocolError> {
        loop {
            let goal = self.payload_len.unwrap_or(4);
            while self.buf.len() < goal {
                let mut chunk = [0u8; 4096];
                let want = (goal - self.buf.len()).min(chunk.len());
                match self.inner.read(&mut chunk[..want]) {
                    Ok(0) => {
                        // Clean close only at a frame boundary; anything mid
                        // prefix or mid payload is a truncated frame.
                        if self.buf.is_empty() && self.payload_len.is_none() {
                            return Ok(Poll::Eof);
                        }
                        return Err(ProtocolError::Truncated);
                    }
                    Ok(n) => {
                        self.bytes_read += n as u64;
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        return Ok(Poll::Pending);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if self.payload_len.is_none() {
                // The buffer holds exactly the 4 prefix bytes here.
                let mut prefix = [0u8; 4];
                prefix.copy_from_slice(&self.buf);
                let len = u32::from_le_bytes(prefix);
                if len > MAX_FRAME_LEN {
                    return Err(ProtocolError::Oversized {
                        len,
                        max: MAX_FRAME_LEN,
                    });
                }
                if len == 0 {
                    return Err(ProtocolError::Malformed("empty frame (no tag byte)"));
                }
                self.buf.clear();
                self.payload_len = Some(len as usize);
                continue;
            }
            let frame = Frame::decode(&self.buf)?;
            self.buf.clear();
            self.payload_len = None;
            return Ok(Poll::Frame(frame));
        }
    }

    /// Blocking convenience: polls until a frame or EOF (treats `Pending`
    /// as "keep waiting", so only meaningful on transports without a read
    /// timeout — clients, mainly).
    pub fn read_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        loop {
            match self.poll()? {
                Poll::Frame(frame) => return Ok(Some(frame)),
                Poll::Eof => return Ok(None),
                Poll::Pending => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut reader = FrameReader::new(&wire[..]);
        let back = reader.read_frame().unwrap().expect("one frame");
        assert_eq!(back, frame);
        assert_eq!(reader.read_frame().unwrap(), None, "clean EOF after");
    }

    #[test]
    fn hello_and_control_frames_round_trip() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Cancel);
        round_trip(Frame::Stats);
        round_trip(Frame::Metrics);
        round_trip(Frame::Shutdown);
        round_trip(Frame::Closed);
        round_trip(Frame::ShutdownOk);
        round_trip(Frame::Fetch { credits: 512 });
        round_trip(Frame::Close { id: 3 });
    }

    #[test]
    fn mutate_frames_round_trip() {
        round_trip(Frame::Mutate {
            adds: vec![
                ("alice".into(), "knows".into(), "eve".into()),
                ("eve".into(), "worksAt".into(), "acme".into()),
            ],
            removes: vec![("alice".into(), "knows".into(), "bob".into())],
        });
        round_trip(Frame::Mutate {
            adds: Vec::new(),
            removes: Vec::new(),
        });
        round_trip(Frame::MutateOk {
            epoch: 7,
            added: 2,
            removed: 1,
        });
    }

    #[test]
    fn execute_frame_round_trips_options() {
        round_trip(Frame::Execute {
            statement: StatementRef::Text("(?X) <- (a, p, ?X)".into()),
            options: ExecOptions::new().with_limit(10).with_max_distance(2),
            credits: 64,
        });
    }

    #[test]
    fn metrics_reply_round_trips_exposition_text() {
        round_trip(Frame::MetricsReply {
            version: 1,
            text: "# omega-obs exposition v1\nrequests_total{kind=\"exec\"} 42\n".into(),
        });
        round_trip(Frame::MetricsReply {
            version: 1,
            text: String::new(),
        });
    }

    #[test]
    fn finished_round_trips_with_and_without_profile() {
        round_trip(Frame::Finished {
            stats: EvalStats::default(),
            reason: FinishReason::Complete,
            profile: None,
        });
        let mut profile = QueryProfile::new();
        profile.push("parse", 1_200);
        profile.push("compile", 84_000);
        profile.push("conjunct_0", 3_000_000);
        profile.push("rank_join", 250_000);
        profile.push("total", 3_500_000);
        round_trip(Frame::Finished {
            stats: EvalStats::default(),
            reason: FinishReason::Drained,
            profile: Some(profile),
        });
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut payload = Frame::Hello { version: 1 }.encode();
        payload[1..9].copy_from_slice(b"OMEGSNAP"); // right family, wrong magic
        assert!(matches!(
            Frame::decode(&payload),
            Err(ProtocolError::BadMagic { found }) if &found == b"OMEGSNAP"
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut w = Writer::new();
        w.put_u8(0x01);
        w.put_bytes(&MAGIC);
        w.put_u32(PROTOCOL_VERSION + 1);
        assert_eq!(
            Frame::decode(&w.into_inner()),
            Err(ProtocolError::UnsupportedVersion {
                requested: PROTOCOL_VERSION + 1,
                supported: PROTOCOL_VERSION,
            })
        );
    }

    #[test]
    fn truncated_stream_is_typed_not_a_panic() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Stats).unwrap();
        for cut in 1..wire.len() {
            let mut reader = FrameReader::new(&wire[..cut]);
            assert_eq!(
                reader.read_frame().unwrap_err(),
                ProtocolError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut reader = FrameReader::new(&wire[..]);
        assert!(matches!(
            reader.read_frame().unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
    }

    #[test]
    fn empty_frame_is_malformed() {
        let wire = 0u32.to_le_bytes();
        let mut reader = FrameReader::new(&wire[..]);
        assert!(matches!(
            reader.read_frame().unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn back_to_back_frames_reassemble() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Stats).unwrap();
        write_frame(&mut wire, &Frame::Cancel).unwrap();
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(Frame::Stats));
        assert_eq!(reader.read_frame().unwrap(), Some(Frame::Cancel));
        assert_eq!(reader.read_frame().unwrap(), None);
    }
}
