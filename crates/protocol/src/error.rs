//! Typed protocol and wire errors.
//!
//! Two layers, mirroring the snapshot format's split between *container*
//! corruption and *content* semantics:
//!
//! * [`ProtocolError`] — the byte stream itself is unusable: truncated
//!   frame, bad magic, unsupported version, oversized length prefix,
//!   malformed field encodings. Raised by the frame decoder; never carried
//!   over the wire (there is no usable wire to carry it on).
//! * [`WireError`] — a request failed but the connection is fine. Carried
//!   inside a [`crate::Frame::Fail`] frame; every [`OmegaError`] variant
//!   maps losslessly into (and back out of) its `Engine` arm.

use std::fmt;
use std::time::Duration;

use omega_core::OmegaError;

/// Corruption of the byte stream: the frame layer could not produce a
/// well-formed frame. Decoding never panics; every malformation maps to one
/// of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The handshake's leading magic bytes are not [`crate::MAGIC`] — the
    /// peer is not speaking the omega wire protocol at all.
    BadMagic {
        /// The eight bytes actually received.
        found: [u8; 8],
    },
    /// The peer requested a protocol version this implementation does not
    /// speak.
    UnsupportedVersion {
        /// Version requested in the handshake.
        requested: u32,
        /// Highest version this implementation supports.
        supported: u32,
    },
    /// The stream ended (or the buffer ran out) in the middle of a frame.
    Truncated,
    /// A frame's length prefix exceeds [`crate::MAX_FRAME_LEN`]; treated as
    /// corruption rather than allocated on faith.
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The configured ceiling.
        max: u32,
    },
    /// The frame tag byte does not name any known frame type.
    UnknownTag(u8),
    /// A field inside the frame body is malformed (bad enum discriminant,
    /// non-boolean bool, trailing bytes, invalid UTF-8, …).
    Malformed(&'static str),
    /// The underlying transport failed (message keeps the error printable,
    /// clonable and comparable).
    Io(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic { found } => {
                write!(f, "bad protocol magic {found:?}")
            }
            ProtocolError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "unsupported protocol version {requested} (this side speaks up to {supported})"
            ),
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            ProtocolError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::Io(message) => write!(f, "transport error: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(err: std::io::Error) -> Self {
        ProtocolError::Io(err.to_string())
    }
}

/// A request-level failure carried over a healthy connection inside a
/// [`crate::Frame::Fail`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The engine rejected or aborted the request. Round-trips every
    /// [`OmegaError`] variant losslessly, including
    /// [`OmegaError::Overloaded`]'s `retry_after` and the positions and
    /// messages of parse errors.
    Engine(OmegaError),
    /// The client referenced a prepared-statement id this connection never
    /// prepared (or already closed).
    UnknownStatement(u64),
    /// The handshake versions do not overlap; the server reports both sides
    /// before closing the connection.
    VersionSkew {
        /// Version the client asked for.
        client: u32,
        /// Version the server speaks.
        server: u32,
    },
    /// The peer sent a frame that decodes but makes no sense in the current
    /// connection state (e.g. `Fetch` with no stream in flight).
    Malformed(String),
    /// The server is draining for shutdown and accepts no new work.
    Shutdown,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Engine(err) => write!(f, "{err}"),
            WireError::UnknownStatement(id) => {
                write!(f, "unknown prepared statement id {id}")
            }
            WireError::VersionSkew { client, server } => {
                write!(
                    f,
                    "protocol version skew: client speaks {client}, server speaks {server}"
                )
            }
            WireError::Malformed(message) => write!(f, "malformed request: {message}"),
            WireError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<OmegaError> for WireError {
    fn from(err: OmegaError) -> Self {
        WireError::Engine(err)
    }
}

/// `Overloaded { retry_after }`, the wire error clients should back off on.
impl WireError {
    /// The backoff hint when this error is a typed overload rejection.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            WireError::Engine(OmegaError::Overloaded { retry_after }) => Some(*retry_after),
            _ => None,
        }
    }
}
