//! # omega-protocol
//!
//! The wire protocol of the Omega serving layer: a versioned,
//! length-prefixed binary frame format connecting `omega-client` to
//! `omega-server`, carrying the full [`omega_core`] service surface —
//! prepared statements, per-request [`omega_core::ExecOptions`], streamed
//! ranked [`omega_core::Answer`]s with their [`omega_core::EvalStats`], and
//! every [`omega_core::OmegaError`] variant mapped losslessly to a typed
//! wire error.
//!
//! ## Design
//!
//! * **Versioned handshake** — the first frame on every connection is
//!   [`Frame::Hello`], opening with the 8-byte [`MAGIC`] and the client's
//!   protocol version, exactly like the `OMEGSNAP` snapshot header guards
//!   image files. A non-protocol peer fails with
//!   [`ProtocolError::BadMagic`]; a future version fails with
//!   [`ProtocolError::UnsupportedVersion`]. Never a panic.
//! * **Length-prefixed frames** — `u32` length, tag byte, body; lengths
//!   above [`MAX_FRAME_LEN`] are corruption, not allocations.
//! * **Streaming with credits** — answers flow in [`Frame::Answers`]
//!   batches only while the client has granted credits
//!   ([`Frame::Execute`]'s initial window plus [`Frame::Fetch`] top-ups),
//!   so a slow client never forces the server to buffer unboundedly.
//! * **Deadline propagation** — [`omega_core::ExecOptions`] serialises with
//!   its `timeout`/`deadline` folded into one remaining wall-clock budget,
//!   re-anchored server-side at execution start; budgets, distance
//!   ceilings and overload policies ride along unchanged.
//!
//! The codec has no dependency on sockets: [`Frame::encode`] /
//! [`Frame::decode`] work on byte slices, [`write_frame`] /
//! [`FrameReader`] adapt any `Write` / `Read` transport.

pub mod codec;
pub mod error;
pub mod frame;
pub mod transport;
pub mod wire;

pub use codec::ServerStats;
pub use error::{ProtocolError, WireError};
pub use frame::{write_frame, FinishReason, Frame, FrameReader, Poll, StatementRef};
pub use transport::Transport;

/// Protocol magic, the first bytes of every handshake — the serving-layer
/// sibling of the snapshot format's `OMEGSNAP`.
pub const MAGIC: [u8; 8] = *b"OMEGWIRE";

/// Highest protocol version this crate speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Ceiling on a frame's declared payload length (16 MiB). A prefix above
/// this is treated as stream corruption ([`ProtocolError::Oversized`])
/// instead of being allocated.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Default answer-batch size for [`Frame::Answers`] frames.
pub const DEFAULT_BATCH: usize = 64;

/// Default initial credit window granted by [`Frame::Execute`].
pub const DEFAULT_CREDITS: u32 = 256;

/// Version of the metrics exposition text format carried by
/// [`Frame::MetricsReply`]. Independent of [`PROTOCOL_VERSION`], so the
/// exposition can evolve without a handshake break.
pub const METRICS_EXPOSITION_VERSION: u32 = 1;
