//! Property-based round-trip and corruption coverage for the wire format.
//!
//! Mirrors `tests/snapshot.rs`'s posture for the snapshot container: every
//! frame the protocol can express must survive encode → decode bit-for-bit,
//! and *no* byte stream — truncated, bit-flipped, oversized or random — may
//! ever panic the decoder. Corruption always surfaces as a typed
//! [`ProtocolError`].

use std::collections::BTreeMap;
use std::time::Duration;

use omega_core::{
    Answer, EvalStats, ExecOptions, GovernorGauges, OmegaError, OverloadPolicy, QueryProfile,
    TruncationReason,
};
use omega_protocol::{
    write_frame, FinishReason, Frame, FrameReader, ProtocolError, ServerStats, StatementRef,
    WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use omega_regex::RegexParseError;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Short strings over a mixed ASCII/Unicode alphabet (enough to exercise
/// UTF-8 length handling without gigantic frames).
fn text() -> BoxedStrategy<String> {
    prop::collection::vec(prop_oneof![('a'..'{').boxed(), ('À'..'京').boxed()], 0..12)
        .prop_map(|chars| chars.into_iter().collect())
        .boxed()
}

fn duration() -> BoxedStrategy<Duration> {
    (0u64..u64::MAX).prop_map(Duration::from_nanos).boxed()
}

fn opt<T: 'static>(inner: BoxedStrategy<T>) -> BoxedStrategy<Option<T>> {
    (any::<bool>(), inner)
        .prop_map(|(present, value)| present.then_some(value))
        .boxed()
}

fn engine_error() -> BoxedStrategy<OmegaError> {
    prop_oneof![
        (any::<usize>(), text())
            .prop_map(|(position, message)| OmegaError::Parse { position, message }),
        (any::<usize>(), text()).prop_map(|(position, message)| OmegaError::Regex(
            RegexParseError { position, message }
        )),
        text().prop_map(OmegaError::UnknownConstant),
        text().prop_map(OmegaError::UnboundHeadVariable),
        Just(OmegaError::EmptyQuery),
        any::<usize>().prop_map(|tuples| OmegaError::ResourceExhausted { tuples }),
        Just(OmegaError::DeadlineExceeded),
        Just(OmegaError::Cancelled),
        duration().prop_map(|retry_after| OmegaError::Overloaded { retry_after }),
        text().prop_map(|message| OmegaError::Internal { message }),
    ]
    .boxed()
}

fn wire_error() -> BoxedStrategy<WireError> {
    prop_oneof![
        engine_error().prop_map(WireError::Engine),
        any::<u64>().prop_map(WireError::UnknownStatement),
        (any::<u32>(), any::<u32>())
            .prop_map(|(client, server)| WireError::VersionSkew { client, server }),
        text().prop_map(WireError::Malformed),
        Just(WireError::Shutdown),
    ]
    .boxed()
}

fn policy() -> BoxedStrategy<OverloadPolicy> {
    prop_oneof![
        Just(OverloadPolicy::Fail),
        Just(OverloadPolicy::Degrade),
        Just(OverloadPolicy::Shed),
    ]
    .boxed()
}

/// Options as they appear after a wire round trip: any `deadline` has been
/// folded into `timeout`, so only `timeout` is generated here.
fn exec_options() -> BoxedStrategy<ExecOptions> {
    let knobs = (
        opt((0usize..1 << 48).boxed()),
        opt(duration()),
        opt(any::<u32>().boxed()),
        opt((0usize..1 << 48).boxed()),
    );
    let toggles = (
        opt(any::<bool>().boxed()),
        opt(any::<bool>().boxed()),
        opt((0usize..1 << 16).boxed()),
        opt(any::<bool>().boxed()),
    );
    let parallel = (
        opt(any::<bool>().boxed()),
        opt((0usize..64).boxed()),
        opt((0usize..1 << 16).boxed()),
        opt(any::<bool>().boxed()),
    );
    (knobs, toggles, parallel, (opt(policy()), any::<bool>()))
        .prop_map(|(knobs, toggles, parallel, (on_overload, profile))| {
            let (limit, timeout, max_distance, max_tuples) = knobs;
            let (distance_aware, disjunction_decomposition, batch_size, prioritize_final) = toggles;
            let (parallel_conjuncts, parallel_workers, parallel_channel_capacity, cost_guided) =
                parallel;
            ExecOptions {
                limit,
                timeout,
                deadline: None,
                max_distance,
                max_tuples,
                distance_aware,
                disjunction_decomposition,
                batch_size,
                prioritize_final,
                parallel_conjuncts,
                parallel_workers,
                parallel_channel_capacity,
                cost_guided,
                on_overload,
                profile,
            }
        })
        .boxed()
}

fn answer() -> BoxedStrategy<Answer> {
    (prop::collection::vec((text(), text()), 0..5), any::<u32>())
        .prop_map(|(pairs, distance)| Answer {
            bindings: pairs.into_iter().collect::<BTreeMap<_, _>>(),
            distance,
        })
        .boxed()
}

fn eval_stats() -> BoxedStrategy<EvalStats> {
    (
        prop::collection::vec(any::<u64>(), 12..13),
        any::<bool>(),
        opt(prop_oneof![
            Just(TruncationReason::TupleBudget),
            Just(TruncationReason::PoolExhausted)
        ]
        .boxed()),
    )
        .prop_map(|(counters, degraded, truncation)| EvalStats {
            tuples_added: counters[0],
            tuples_processed: counters[1],
            succ_calls: counters[2],
            neighbour_lookups: counters[3],
            answers: counters[4],
            suppressed: counters[5],
            restarts: counters[6],
            pruned_dead: counters[7],
            pruned_bound: counters[8],
            deferred_expansions: counters[9],
            worker_panics: counters[10],
            sheds: counters[11],
            degraded,
            truncation,
        })
        .boxed()
}

fn server_stats() -> BoxedStrategy<ServerStats> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()),
        prop::collection::vec(any::<u64>(), 15..16),
    )
        .prop_map(|(gauges, counters)| ServerStats {
            gauges: GovernorGauges {
                live_tuples: gauges.0 as usize,
                join_buffer_entries: gauges.1 as usize,
                executions: gauges.2 as usize,
                rejected: gauges.3,
            },
            connections_total: counters[0],
            connections_open: counters[1],
            streams_in_flight: counters[2],
            statements_open: counters[3],
            answers_streamed: counters[4],
            sheds: counters[5],
            degraded: counters[6],
            rejected: counters[7],
            live_workers: counters[8],
            epoch: counters[9],
            overlay_edges: counters[10],
            uptime_secs: counters[11],
            prepared_statements: counters[12],
            wal_seq: counters[13],
            durable_epoch: counters[14],
        })
        .boxed()
}

fn query_profile() -> BoxedStrategy<QueryProfile> {
    prop::collection::vec((text(), any::<u64>()), 0..8)
        .prop_map(|phases| {
            let mut profile = QueryProfile::new();
            for (name, nanos) in phases {
                profile.push(name, nanos);
            }
            profile
        })
        .boxed()
}

fn frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        Just(Frame::Hello {
            version: PROTOCOL_VERSION
        }),
        text().prop_map(|text| Frame::Prepare { text }),
        (
            prop_oneof![
                any::<u64>().prop_map(StatementRef::Id),
                text().prop_map(StatementRef::Text)
            ]
            .boxed(),
            exec_options(),
            any::<u32>()
        )
            .prop_map(|(statement, options, credits)| Frame::Execute {
                statement,
                options,
                credits
            }),
        any::<u32>().prop_map(|credits| Frame::Fetch { credits }),
        Just(Frame::Cancel),
        any::<u64>().prop_map(|id| Frame::Close { id }),
        Just(Frame::Stats),
        Just(Frame::Metrics),
        Just(Frame::Shutdown),
        text().prop_map(|server| Frame::HelloOk {
            version: PROTOCOL_VERSION,
            server
        }),
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(text(), 0..4)
        )
            .prop_map(|(id, conjuncts, head)| Frame::Prepared {
                id,
                conjuncts,
                head
            }),
        prop::collection::vec(answer(), 0..6).prop_map(|answers| Frame::Answers { answers }),
        (
            eval_stats(),
            prop_oneof![Just(FinishReason::Complete), Just(FinishReason::Drained)].boxed(),
            opt(query_profile())
        )
            .prop_map(|(stats, reason, profile)| Frame::Finished {
                stats,
                reason,
                profile
            }),
        wire_error().prop_map(|error| Frame::Fail { error }),
        server_stats().prop_map(|stats| Frame::StatsReply { stats }),
        (any::<u32>(), text()).prop_map(|(version, text)| Frame::MetricsReply { version, text }),
        Just(Frame::Closed),
        Just(Frame::ShutdownOk),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    /// Every frame survives payload encode → decode bit-for-bit.
    #[test]
    fn frame_payload_round_trips(frame in frame()) {
        let payload = frame.encode();
        let back = Frame::decode(&payload).expect("valid payload decodes");
        prop_assert_eq!(back, frame);
    }

    /// Every frame survives the full wire path — length prefix, writer,
    /// buffered reader — including several frames back to back.
    #[test]
    fn frame_stream_round_trips(frames in prop::collection::vec(frame(), 1..5)) {
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).expect("write succeeds");
        }
        let mut reader = FrameReader::new(&wire[..]);
        for frame in &frames {
            let got = reader.read_frame().expect("decode").expect("frame present");
            prop_assert_eq!(&got, frame);
        }
        prop_assert_eq!(reader.read_frame().expect("clean end"), None);
    }

    /// Truncating a valid stream at any byte yields `Truncated` — typed,
    /// never a panic, never a bogus frame.
    #[test]
    fn truncation_is_always_typed(frame in frame(), cut in any::<usize>()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("write succeeds");
        let cut = 1 + cut % (wire.len() - 1).max(1);
        if cut >= wire.len() {
            return;
        }
        let mut reader = FrameReader::new(&wire[..cut]);
        let got = reader.read_frame();
        prop_assert!(
            matches!(got, Err(ProtocolError::Truncated)),
            "cut at {} gave {:?}",
            cut,
            got
        );
    }

    /// Bit-flipping a valid payload never panics the decoder: it either
    /// still decodes (the flip hit a don't-care bit such as a numeric
    /// field) or fails with a typed error.
    #[test]
    fn bit_flips_never_panic(frame in frame(), pos in any::<usize>(), bit in 0u8..8) {
        let mut payload = frame.encode();
        let idx = pos % payload.len();
        payload[idx] ^= 1 << bit;
        let _ = Frame::decode(&payload);
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes);
        let mut reader = FrameReader::new(&bytes[..]);
        while let Ok(Some(_)) = reader.read_frame() {}
    }
}

// ---------------------------------------------------------------------------
// Directed corruption cases (the snapshot.rs quartet)
// ---------------------------------------------------------------------------

#[test]
fn bad_magic_is_rejected_with_the_bytes_found() {
    let mut payload = Frame::Hello {
        version: PROTOCOL_VERSION,
    }
    .encode();
    payload[1..9].copy_from_slice(b"NOTOMEGA");
    assert_eq!(
        Frame::decode(&payload),
        Err(ProtocolError::BadMagic {
            found: *b"NOTOMEGA"
        })
    );
}

#[test]
fn version_skew_reports_both_sides() {
    let mut payload = Frame::Hello {
        version: PROTOCOL_VERSION,
    }
    .encode();
    let skewed = (PROTOCOL_VERSION + 41).to_le_bytes();
    let len = payload.len();
    payload[len - 4..].copy_from_slice(&skewed);
    assert_eq!(
        Frame::decode(&payload),
        Err(ProtocolError::UnsupportedVersion {
            requested: PROTOCOL_VERSION + 41,
            supported: PROTOCOL_VERSION,
        })
    );
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    wire.extend_from_slice(&[0u8; 32]);
    let mut reader = FrameReader::new(&wire[..]);
    assert_eq!(
        reader.read_frame(),
        Err(ProtocolError::Oversized {
            len: MAX_FRAME_LEN + 1,
            max: MAX_FRAME_LEN,
        })
    );
}

#[test]
fn truncated_mid_prefix_and_mid_payload_are_both_truncated() {
    let mut wire = Vec::new();
    write_frame(
        &mut wire,
        &Frame::Prepare {
            text: "(?X) <- (a, p, ?X)".into(),
        },
    )
    .expect("write succeeds");
    // Mid length prefix.
    let mut reader = FrameReader::new(&wire[..2]);
    assert_eq!(reader.read_frame(), Err(ProtocolError::Truncated));
    // Mid payload.
    let mut reader = FrameReader::new(&wire[..wire.len() - 3]);
    assert_eq!(reader.read_frame(), Err(ProtocolError::Truncated));
}

#[test]
fn overloaded_retry_after_round_trips_to_the_nanosecond() {
    let error = WireError::Engine(OmegaError::Overloaded {
        retry_after: Duration::new(3, 141_592_653),
    });
    let payload = Frame::Fail {
        error: error.clone(),
    }
    .encode();
    let Frame::Fail { error: back } = Frame::decode(&payload).expect("decodes") else {
        panic!("decoded to a different frame type");
    };
    assert_eq!(back, error);
    assert_eq!(back.retry_after(), Some(Duration::new(3, 141_592_653)));
}
