//! The L4All case study data (Section 4.1 of the paper).
//!
//! The data model is the one the paper describes: each user has a *timeline*
//! of episodes; an episode is
//!
//! * linked to its Episode category by a `type` edge,
//! * linked to the following episode by `next` and, where the earlier episode
//!   was a prerequisite, by `prereq`,
//! * linked to an occupational event by `job` (work episodes) or to an
//!   educational event by `qualif` (educational episodes); the event is in
//!   turn classified by a `type` edge into the Occupation or Subject
//!   hierarchy and carries a `sector` (Industry Sector) or `level`
//!   (Education Qualification Level) edge.
//!
//! The ontology reproduces Figure 2: five class hierarchies (Episode,
//! Subject, Occupation, Education Qualification Level, Industry Sector) with
//! the published depths and approximate fan-outs, and the single property
//! hierarchy `isEpisodeLink ⊒ {next, prereq}`.
//!
//! Scaling follows the paper: the 21 base timelines are duplicated, and each
//! duplicate reclassifies its episodes/events to *sibling* classes of the
//! original classes, so class-node degrees grow linearly with the number of
//! timelines. `type` edges are materialised up the class hierarchy
//! (transitive closure), as the paper's discussion of class-node degrees
//! implies.

// The generators below build fixed label sets and hand-written tree
// hierarchies: every lookup and hierarchy insert is infallible by
// construction, so a panic would flag a bug in this source file, never
// a runtime input.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use omega_graph::{GraphStore, NodeId};
use omega_ontology::Ontology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

/// The four graph sizes of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4AllScale {
    /// 143 timelines (≈2.7 K nodes).
    L1,
    /// 1,201 timelines (≈15 K nodes).
    L2,
    /// 5,221 timelines (≈69 K nodes).
    L3,
    /// 11,416 timelines (≈240 K nodes).
    L4,
}

impl L4AllScale {
    /// Number of timelines at this scale (as published in Section 4.1).
    pub fn timelines(self) -> usize {
        match self {
            L4AllScale::L1 => 143,
            L4AllScale::L2 => 1_201,
            L4AllScale::L3 => 5_221,
            L4AllScale::L4 => 11_416,
        }
    }

    /// The scale's name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            L4AllScale::L1 => "L1",
            L4AllScale::L2 => "L2",
            L4AllScale::L3 => "L3",
            L4AllScale::L4 => "L4",
        }
    }

    /// All four scales in increasing size order.
    pub fn all() -> [L4AllScale; 4] {
        [
            L4AllScale::L1,
            L4AllScale::L2,
            L4AllScale::L3,
            L4AllScale::L4,
        ]
    }
}

/// Configuration of the L4All generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L4AllConfig {
    /// Number of timelines to generate.
    pub timelines: usize,
    /// RNG seed (the generator is fully deterministic for a given seed).
    pub seed: u64,
    /// Materialise `type` edges to all superclasses (the paper's graphs do).
    pub materialize_type_closure: bool,
}

impl L4AllConfig {
    /// The configuration for one of the published scales.
    pub fn at_scale(scale: L4AllScale) -> L4AllConfig {
        L4AllConfig {
            timelines: scale.timelines(),
            ..L4AllConfig::default()
        }
    }

    /// A small configuration for unit tests and examples.
    pub fn tiny() -> L4AllConfig {
        L4AllConfig {
            timelines: 25,
            ..L4AllConfig::default()
        }
    }
}

impl Default for L4AllConfig {
    fn default() -> Self {
        L4AllConfig {
            timelines: 143,
            seed: 0x1_4a11,
            materialize_type_closure: true,
        }
    }
}

/// Number of base timelines (5 real + 16 realistic, per the paper).
const BASE_TIMELINES: usize = 21;

struct Hierarchies {
    episode_classes: Vec<NodeId>,
    /// leaf classes of the Episode hierarchy split into (work, educational)
    work_episode_leaves: Vec<NodeId>,
    edu_episode_leaves: Vec<NodeId>,
    subject_leaves: Vec<NodeId>,
    occupation_leaves: Vec<NodeId>,
    level_nodes: Vec<NodeId>,
    sector_nodes: Vec<NodeId>,
}

/// Generates the L4All dataset.
pub fn generate_l4all(config: &L4AllConfig) -> Dataset {
    let mut graph = GraphStore::new();
    let mut ontology = Ontology::new();
    let hierarchies = build_ontology(&mut graph, &mut ontology);

    // Pre-intern the edge labels used by timelines.
    for label in [
        "next",
        "prereq",
        "job",
        "qualif",
        "level",
        "sector",
        "isEpisodeLink",
    ] {
        graph.intern_label(label);
    }
    let next_l = graph.label_id("next").unwrap();
    let prereq_l = graph.label_id("prereq").unwrap();
    let link_l = graph.label_id("isEpisodeLink").unwrap();
    ontology.add_subproperty(next_l, link_l).expect("no cycle");
    ontology
        .add_subproperty(prereq_l, link_l)
        .expect("no cycle");
    // Domain/range declarations exist in the original ontology; they are not
    // used by the performance study but we declare them for completeness.
    let episode_root = hierarchies.episode_classes[0];
    ontology.set_domain(next_l, episode_root);
    ontology.set_range(next_l, episode_root);
    ontology.set_domain(prereq_l, episode_root);
    ontology.set_range(prereq_l, episode_root);

    // Base timeline templates.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let templates: Vec<TimelineTemplate> = (0..BASE_TIMELINES)
        .map(|i| TimelineTemplate::generate(i, &mut rng))
        .collect();

    for timeline_idx in 0..config.timelines {
        let template = &templates[timeline_idx % BASE_TIMELINES];
        let variant = timeline_idx / BASE_TIMELINES;
        instantiate_timeline(
            &mut graph,
            &ontology,
            &hierarchies,
            template,
            timeline_idx,
            variant,
            config.materialize_type_closure,
        );
    }

    // Generated datasets are read-only from here on: hand the engine the
    // frozen CSR representation up front.
    graph.freeze();
    Dataset { graph, ontology }
}

/// One episode of a timeline template.
#[derive(Debug, Clone)]
struct EpisodeTemplate {
    is_work: bool,
    /// Index into the leaf-class list of the relevant hierarchy; the variant
    /// offset rotates this among siblings when timelines are duplicated.
    episode_class: usize,
    event_class: usize,
    qualifier_class: usize,
    /// Whether this episode is a prerequisite of the next one.
    prereq_of_next: bool,
}

#[derive(Debug, Clone)]
struct TimelineTemplate {
    index: usize,
    episodes: Vec<EpisodeTemplate>,
}

impl TimelineTemplate {
    fn generate(index: usize, rng: &mut StdRng) -> TimelineTemplate {
        let length = rng.gen_range(4..=12);
        let episodes = (0..length)
            .map(|_| EpisodeTemplate {
                is_work: rng.gen_bool(0.55),
                episode_class: rng.gen_range(0..usize::MAX / 2),
                event_class: rng.gen_range(0..usize::MAX / 2),
                qualifier_class: rng.gen_range(0..usize::MAX / 2),
                prereq_of_next: rng.gen_bool(0.4),
            })
            .collect();
        TimelineTemplate { index, episodes }
    }
}

#[allow(clippy::too_many_arguments)]
fn instantiate_timeline(
    graph: &mut GraphStore,
    ontology: &Ontology,
    h: &Hierarchies,
    template: &TimelineTemplate,
    timeline_idx: usize,
    variant: usize,
    closure: bool,
) {
    let type_l = graph.type_label();
    let next_l = graph.label_id("next").unwrap();
    let prereq_l = graph.label_id("prereq").unwrap();
    let job_l = graph.label_id("job").unwrap();
    let qualif_l = graph.label_id("qualif").unwrap();
    let level_l = graph.label_id("level").unwrap();
    let sector_l = graph.label_id("sector").unwrap();

    let mut previous: Option<(NodeId, bool)> = None;
    for (ep_idx, episode) in template.episodes.iter().enumerate() {
        // Base timelines (variant 0) carry the names the paper's queries use
        // (e.g. "Alumni 4 Episode 1_1"); duplicates get a variant suffix.
        let episode_name = format!(
            "Alumni {} Episode {}_{}",
            template.index,
            ep_idx + 1,
            variant + 1
        );
        let node = graph.add_node(&episode_name);
        let _ = timeline_idx;

        // Episode classification, rotated to a sibling class per variant.
        let episode_leaves = if episode.is_work {
            &h.work_episode_leaves
        } else {
            &h.edu_episode_leaves
        };
        let episode_class =
            episode_leaves[(episode.episode_class + variant) % episode_leaves.len()];
        add_typed(graph, ontology, node, episode_class, type_l, closure);

        // Linked event and its classification.
        let event = graph.add_node(&format!("{episode_name} event"));
        if episode.is_work {
            graph.add_edge(node, job_l, event);
            let class =
                h.occupation_leaves[(episode.event_class + variant) % h.occupation_leaves.len()];
            add_typed(graph, ontology, event, class, type_l, closure);
            let sector = h.sector_nodes[(episode.qualifier_class + variant) % h.sector_nodes.len()];
            graph.add_edge(event, sector_l, sector);
        } else {
            graph.add_edge(node, qualif_l, event);
            let class = h.subject_leaves[(episode.event_class + variant) % h.subject_leaves.len()];
            add_typed(graph, ontology, event, class, type_l, closure);
            let level = h.level_nodes[(episode.qualifier_class + variant) % h.level_nodes.len()];
            graph.add_edge(event, level_l, level);
        }

        // Chain links.
        if let Some((prev, prev_prereq)) = previous {
            graph.add_edge(prev, next_l, node);
            if prev_prereq {
                graph.add_edge(prev, prereq_l, node);
            }
        }
        previous = Some((node, episode.prereq_of_next));
    }
}

fn add_typed(
    graph: &mut GraphStore,
    ontology: &Ontology,
    node: NodeId,
    class: NodeId,
    type_l: omega_graph::LabelId,
    closure: bool,
) {
    graph.add_edge(node, type_l, class);
    if closure {
        for (ancestor, _) in ontology.superclasses(class) {
            graph.add_edge(node, type_l, ancestor);
        }
    }
}

/// Builds the Figure 2 class hierarchies and returns handles to the classes
/// the timeline generator classifies against.
fn build_ontology(graph: &mut GraphStore, ontology: &mut Ontology) -> Hierarchies {
    let add_class = |graph: &mut GraphStore, ontology: &mut Ontology, name: &str| {
        let node = graph.add_node(name);
        ontology.add_class(node);
        node
    };
    let subclass = |ontology: &mut Ontology, child: NodeId, parent: NodeId| {
        ontology
            .add_subclass(child, parent)
            .expect("hierarchies are trees");
    };

    // --- Episode: depth 2, average fan-out 2.67 -------------------------
    let episode = add_class(graph, ontology, "Episode");
    let work = add_class(graph, ontology, "Work Episode");
    let edu = add_class(graph, ontology, "Educational Episode");
    let personal = add_class(graph, ontology, "Personal Episode");
    for c in [work, edu, personal] {
        subclass(ontology, c, episode);
    }
    let work_leaves: Vec<NodeId> = ["Job Episode", "Voluntary Work Episode"]
        .iter()
        .map(|n| {
            let c = add_class(graph, ontology, n);
            subclass(ontology, c, work);
            c
        })
        .collect();
    let edu_leaves: Vec<NodeId> = ["College Episode", "University Episode", "School Episode"]
        .iter()
        .map(|n| {
            let c = add_class(graph, ontology, n);
            subclass(ontology, c, edu);
            c
        })
        .collect();

    // --- Subject: depth 2, average fan-out 8 -----------------------------
    let subject = add_class(graph, ontology, "Subject");
    let subject_areas = [
        "Mathematical and Computer Sciences",
        "Engineering",
        "Medicine and Dentistry",
        "Creative Arts and Design",
        "Business and Administrative Studies",
        "Languages",
        "Social Studies",
        "Education",
    ];
    let mut subject_leaves = Vec::new();
    for (i, area) in subject_areas.iter().enumerate() {
        let area_node = add_class(graph, ontology, area);
        subclass(ontology, area_node, subject);
        if i == 0 {
            // "Mathematical and Computer Sciences" has eight child subjects,
            // including the "Information Systems" class used by query Q2.
            for name in [
                "Information Systems",
                "Computer Science",
                "Software Engineering",
                "Artificial Intelligence",
                "Mathematics",
                "Statistics",
                "Operational Research",
                "Computing Foundations",
            ] {
                let leaf = add_class(graph, ontology, name);
                subclass(ontology, leaf, area_node);
                subject_leaves.push(leaf);
            }
        } else {
            subject_leaves.push(area_node);
        }
    }

    // --- Occupation: depth 4, average fan-out ≈ 4 -------------------------
    let occupation = add_class(graph, ontology, "Occupation");
    let major_groups = [
        "Professional Occupations",
        "Associate Professional Occupations",
        "Administrative Occupations",
        "Skilled Trades Occupations",
    ];
    let mut occupation_leaves = Vec::new();
    for (gi, group) in major_groups.iter().enumerate() {
        let group_node = add_class(graph, ontology, group);
        subclass(ontology, group_node, occupation);
        for si in 0..4 {
            let sub_name = format!("{group} Subgroup {si}");
            let sub_node = add_class(graph, ontology, &sub_name);
            subclass(ontology, sub_node, group_node);
            if gi == 0 && si == 0 {
                // Deepest branch: contains the occupations used by the query
                // set (Software Professionals, Librarians).
                for name in [
                    "Software Professionals",
                    "Librarians",
                    "Engineers",
                    "Scientists",
                ] {
                    let leaf = add_class(graph, ontology, name);
                    subclass(ontology, leaf, sub_node);
                    if name == "Software Professionals" {
                        for deep in ["Web Developers", "Systems Programmers"] {
                            let deep_node = add_class(graph, ontology, deep);
                            subclass(ontology, deep_node, leaf);
                            occupation_leaves.push(deep_node);
                        }
                    } else {
                        occupation_leaves.push(leaf);
                    }
                }
            } else {
                occupation_leaves.push(sub_node);
            }
        }
    }

    // --- Education Qualification Level: depth 2, fan-out ≈ 3.89 ----------
    let level_root = add_class(graph, ontology, "Education Qualification Level");
    let mut level_nodes = Vec::new();
    let level_groups = [
        "Entry Level",
        "Further Education Level",
        "Higher Education Level",
        "Postgraduate Level",
    ];
    for (gi, group) in level_groups.iter().enumerate() {
        let group_node = add_class(graph, ontology, group);
        subclass(ontology, group_node, level_root);
        let children: &[&str] = match gi {
            0 => &["Entry Certificate", "Basic Skills Award"],
            1 => &[
                "BTEC Introductory Diploma",
                "BTEC First Diploma",
                "GCSE",
                "A Level",
            ],
            2 => &[
                "Higher National Certificate",
                "Foundation Degree",
                "Bachelors Degree",
            ],
            _ => &["Masters Degree", "Doctorate"],
        };
        for name in children {
            let leaf = add_class(graph, ontology, name);
            subclass(ontology, leaf, group_node);
            level_nodes.push(leaf);
        }
    }

    // --- Industry Sector: depth 1, fan-out 21 ------------------------------
    let sector_root = add_class(graph, ontology, "Industry Sector");
    let mut sector_nodes = Vec::new();
    for i in 0..21 {
        let leaf = add_class(graph, ontology, &format!("Industry Sector {i:02}"));
        subclass(ontology, leaf, sector_root);
        sector_nodes.push(leaf);
    }

    Hierarchies {
        episode_classes: vec![episode, work, edu, personal],
        work_episode_leaves: work_leaves,
        edu_episode_leaves: edu_leaves,
        subject_leaves,
        occupation_leaves,
        level_nodes,
        sector_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_ontology::HierarchyStats;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_l4all(&L4AllConfig::tiny());
        let b = generate_l4all(&L4AllConfig::tiny());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn hierarchies_match_figure_2_shape() {
        let data = generate_l4all(&L4AllConfig::tiny());
        let stats = HierarchyStats::compute_all(&data.ontology, &data.graph);
        let get = |name: &str| stats.iter().find(|s| s.root_label == name).unwrap();
        assert_eq!(get("Episode").depth, 2);
        assert_eq!(get("Subject").depth, 2);
        assert_eq!(get("Occupation").depth, 4);
        assert_eq!(get("Education Qualification Level").depth, 2);
        assert_eq!(get("Industry Sector").depth, 1);
        assert!((get("Industry Sector").average_fanout - 21.0).abs() < 1e-9);
        assert!((get("Episode").average_fanout - 2.66).abs() < 0.5);
        assert!((get("Subject").average_fanout - 8.0).abs() < 0.5);
        assert!((get("Occupation").average_fanout - 4.08).abs() < 1.0);
        assert!((get("Education Qualification Level").average_fanout - 3.89).abs() < 1.0);
    }

    #[test]
    fn query_constants_exist() {
        let data = generate_l4all(&L4AllConfig::tiny());
        for constant in [
            "Work Episode",
            "Information Systems",
            "Software Professionals",
            "Mathematical and Computer Sciences",
            "Alumni 4 Episode 1_1",
            "Librarians",
            "BTEC Introductory Diploma",
        ] {
            assert!(
                data.graph.node_by_label(constant).is_some(),
                "missing constant {constant}"
            );
        }
    }

    #[test]
    fn timelines_are_chained_and_classified() {
        let data = generate_l4all(&L4AllConfig::tiny());
        let g = &data.graph;
        let next = g.label_id("next").unwrap();
        let prereq = g.label_id("prereq").unwrap();
        assert!(g.edge_count_for_label(next) > 0);
        assert!(g.edge_count_for_label(prereq) > 0);
        assert!(g.edge_count_for_label(prereq) < g.edge_count_for_label(next));
        assert!(g.edge_count_for_label(g.type_label()) > 0);
        assert!(g.edge_count_for_label(g.label_id("job").unwrap()) > 0);
        assert!(g.edge_count_for_label(g.label_id("qualif").unwrap()) > 0);
    }

    #[test]
    fn class_degree_grows_with_timeline_count() {
        let small = generate_l4all(&L4AllConfig {
            timelines: 21,
            ..L4AllConfig::default()
        });
        let large = generate_l4all(&L4AllConfig {
            timelines: 84,
            ..L4AllConfig::default()
        });
        let degree = |d: &Dataset, label: &str| {
            let node = d.graph.node_by_label(label).unwrap();
            d.graph.degree(node)
        };
        assert!(degree(&large, "Work Episode") > degree(&small, "Work Episode"));
        // linear-ish growth: quadrupling the timelines roughly quadruples the
        // class degree
        let ratio = degree(&large, "Work Episode") as f64 / degree(&small, "Work Episode") as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn scale_presets_have_increasing_sizes() {
        // only generate the two smallest scales in tests; L3/L4 are large.
        let l1 = generate_l4all(&L4AllConfig::at_scale(L4AllScale::L1));
        assert!(
            l1.graph.node_count() > 1_500 && l1.graph.node_count() < 6_000,
            "L1 node count {} should be within a factor of ~2 of the published 2,691",
            l1.graph.node_count()
        );
        assert!(
            l1.graph.edge_count() > 8_000 && l1.graph.edge_count() < 40_000,
            "L1 edge count {} should be within a factor of ~2 of the published 19,856",
            l1.graph.edge_count()
        );
        assert_eq!(L4AllScale::L2.timelines(), 1_201);
        assert_eq!(L4AllScale::all().len(), 4);
    }

    #[test]
    fn duplicated_timelines_use_sibling_classes() {
        let data = generate_l4all(&L4AllConfig {
            timelines: 42, // two variants of each base timeline
            ..L4AllConfig::default()
        });
        let g = &data.graph;
        // the two variants of base timeline 4's first episode exist
        let original = g.node_by_label("Alumni 4 Episode 1_1").unwrap();
        let duplicate = g.node_by_label("Alumni 4 Episode 1_2").unwrap();
        let type_l = g.type_label();
        let orig_classes: Vec<_> = g
            .neighbors(original, type_l, omega_graph::Direction::Outgoing)
            .to_vec();
        let dup_classes: Vec<_> = g
            .neighbors(duplicate, type_l, omega_graph::Direction::Outgoing)
            .to_vec();
        assert_ne!(
            orig_classes[0], dup_classes[0],
            "the duplicate is reclassified to a sibling"
        );
    }
}
