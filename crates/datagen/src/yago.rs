//! A YAGO-like knowledge graph (Section 4.2 of the paper).
//!
//! The paper imports the SIMPLETAX + CORE portions of YAGO (3.1 M nodes,
//! 17 M edges, 38 properties, one very wide and shallow class taxonomy, two
//! property hierarchies with 6 and 2 sub-properties). That extract is not
//! redistributable here, so this module generates a *schema-compatible*
//! synthetic graph instead:
//!
//! * the class taxonomy has depth 2 and a very large fan-out, with the
//!   `wordnet_*` classes the queries mention,
//! * 38 properties, including the two hierarchies
//!   `relationLocatedByObject ⊒ {gradFrom, happenedIn, participatedIn,
//!   isLocatedIn, livesIn, wasBornIn}` and `actsUpon ⊒ {actedIn, directed}`,
//!   with domains and ranges,
//! * entity populations (people, universities, cities, countries, events,
//!   prizes, films, clubs, airports, commodities) connected so that the nine
//!   queries of Figure 9 reproduce the qualitative behaviour of Figure 10:
//!   Q2/Q3/Q9 return nothing or almost nothing exactly but are rescued by
//!   APPROX/RELAX; Q4/Q5 generate huge APPROX intermediate-result sets (the
//!   paper's out-of-memory cases); Q7/Q8 return well over 100 exact answers.
//!
//! The default scale is laptop-sized; `YagoConfig::scale` grows every entity
//! population linearly for larger experiments.

// The generators below build fixed label sets and hand-written tree
// hierarchies: every lookup and hierarchy insert is infallible by
// construction, so a panic would flag a bug in this source file, never
// a runtime input.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use omega_graph::{GraphStore, NodeId};
use omega_ontology::Ontology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

/// Configuration of the YAGO-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct YagoConfig {
    /// Linear scale factor applied to every entity population.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of filler classes in the (wide, shallow) taxonomy.
    pub filler_classes: usize,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            scale: 1.0,
            seed: 0x9a60,
            filler_classes: 200,
        }
    }
}

impl YagoConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> YagoConfig {
        YagoConfig {
            scale: 0.05,
            filler_classes: 20,
            ..YagoConfig::default()
        }
    }

    /// A configuration scaled by `factor` relative to the default.
    pub fn scaled(factor: f64) -> YagoConfig {
        YagoConfig {
            scale: factor,
            ..YagoConfig::default()
        }
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round().max(2.0) as usize
    }
}

/// The 38 properties of the YAGO extract (including `type`).
pub const YAGO_PROPERTIES: [&str; 37] = [
    "bornIn",
    "wasBornIn",
    "diedIn",
    "marriedTo",
    "married",
    "hasChild",
    "gradFrom",
    "hasWonPrize",
    "locatedIn",
    "isLocatedIn",
    "livesIn",
    "hasCurrency",
    "directed",
    "actedIn",
    "playsFor",
    "isConnectedTo",
    "imports",
    "exports",
    "happenedIn",
    "participatedIn",
    "hasCapital",
    "dealsWith",
    "owns",
    "created",
    "wrote",
    "produced",
    "influences",
    "isCitizenOf",
    "worksAt",
    "isLeaderOf",
    "hasOfficialLanguage",
    "hasAcademicAdvisor",
    "interestedIn",
    "knownFor",
    "hasArea",
    "relationLocatedByObject",
    "actsUpon",
];

/// Generates the YAGO-like dataset.
pub fn generate_yago(config: &YagoConfig) -> Dataset {
    let mut graph = GraphStore::new();
    let mut ontology = Ontology::new();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // ------------------------------------------------------------------
    // Properties and the two property hierarchies.
    // ------------------------------------------------------------------
    for name in YAGO_PROPERTIES {
        let label = graph.intern_label(name);
        ontology.add_property(label);
    }
    let label = |graph: &GraphStore, name: &str| graph.label_id(name).unwrap();
    let located_by = label(&graph, "relationLocatedByObject");
    for sub in [
        "gradFrom",
        "happenedIn",
        "participatedIn",
        "isLocatedIn",
        "livesIn",
        "wasBornIn",
    ] {
        ontology
            .add_subproperty(label(&graph, sub), located_by)
            .expect("property hierarchy is a tree");
    }
    let acts_upon = label(&graph, "actsUpon");
    for sub in ["actedIn", "directed"] {
        ontology
            .add_subproperty(label(&graph, sub), acts_upon)
            .expect("property hierarchy is a tree");
    }

    // ------------------------------------------------------------------
    // Class taxonomy: depth 2, very wide.
    // ------------------------------------------------------------------
    let root = graph.add_node("wordnet_entity");
    ontology.add_class(root);
    let class = |graph: &mut GraphStore, ontology: &mut Ontology, name: &str, parent: NodeId| {
        let node = graph.add_node(name);
        ontology.add_class(node);
        ontology
            .add_subclass(node, parent)
            .expect("taxonomy is a tree");
        node
    };
    let person_c = class(&mut graph, &mut ontology, "wordnet_person", root);
    let musician_c = class(&mut graph, &mut ontology, "wordnet_musician", person_c);
    let scientist_c = class(&mut graph, &mut ontology, "wordnet_scientist", person_c);
    let city_c = class(&mut graph, &mut ontology, "wordnet_city", root);
    let country_c = class(&mut graph, &mut ontology, "wordnet_country", root);
    let university_c = class(&mut graph, &mut ontology, "wordnet_university", root);
    let ziggurat_c = class(&mut graph, &mut ontology, "wordnet_ziggurat", root);
    let event_c = class(&mut graph, &mut ontology, "wordnet_event", root);
    let prize_c = class(&mut graph, &mut ontology, "wordnet_prize", root);
    let film_c = class(&mut graph, &mut ontology, "wordnet_film", root);
    let club_c = class(&mut graph, &mut ontology, "wordnet_football_club", root);
    let airport_c = class(&mut graph, &mut ontology, "wordnet_airport", root);
    let commodity_c = class(&mut graph, &mut ontology, "wordnet_commodity", root);
    for i in 0..config.filler_classes {
        class(
            &mut graph,
            &mut ontology,
            &format!("wordnet_filler_{i:04}"),
            root,
        );
    }

    // Domains and ranges (present in YAGO; only rule (ii) of RELAX uses them).
    ontology.set_domain(label(&graph, "gradFrom"), person_c);
    ontology.set_range(label(&graph, "gradFrom"), university_c);
    ontology.set_domain(label(&graph, "wasBornIn"), person_c);
    ontology.set_range(label(&graph, "wasBornIn"), city_c);
    ontology.set_domain(label(&graph, "livesIn"), person_c);
    ontology.set_range(label(&graph, "livesIn"), country_c);
    ontology.set_domain(label(&graph, "happenedIn"), event_c);
    ontology.set_range(label(&graph, "happenedIn"), city_c);
    ontology.set_domain(label(&graph, "actedIn"), person_c);
    ontology.set_range(label(&graph, "actedIn"), film_c);
    ontology.set_domain(label(&graph, "hasCurrency"), country_c);
    ontology.set_domain(label(&graph, "isLocatedIn"), university_c);
    ontology.set_range(label(&graph, "isLocatedIn"), country_c);

    // ------------------------------------------------------------------
    // Entity populations.
    // ------------------------------------------------------------------
    let type_l = graph.type_label();
    let n_countries = config.count(40);
    let n_cities = config.count(800);
    let n_universities = config.count(400);
    let n_people = config.count(8_000);
    let n_events = config.count(1_200);
    let n_prizes = config.count(60);
    let n_films = config.count(800);
    let n_clubs = config.count(120);
    let n_airports = config.count(300);
    let n_commodities = config.count(50);
    let n_ziggurats = config.count(40);

    let typed = |graph: &mut GraphStore, name: &str, class: NodeId| -> NodeId {
        let node = graph.add_node(name);
        graph.add_edge(node, type_l, class);
        node
    };

    // Countries. "UK" is the constant used by query Q9.
    let mut countries = Vec::with_capacity(n_countries);
    for i in 0..n_countries {
        let name = if i == 0 {
            "UK".to_owned()
        } else {
            format!("Country_{i:03}")
        };
        countries.push(typed(&mut graph, &name, country_c));
    }
    let currencies: Vec<NodeId> = (0..n_countries.min(30))
        .map(|i| graph.add_node(&format!("Currency_{i:02}")))
        .collect();
    let has_currency = label(&graph, "hasCurrency");
    let has_capital = label(&graph, "hasCapital");
    let deals_with = label(&graph, "dealsWith");
    for (i, &country) in countries.iter().enumerate() {
        graph.add_edge(country, has_currency, currencies[i % currencies.len()]);
        let partner = countries[(i + 1) % countries.len()];
        graph.add_edge(country, deals_with, partner);
    }

    // Cities; "Halle_Saxony-Anhalt" is the constant used by query Q1.
    let mut cities = Vec::with_capacity(n_cities);
    let located_in = label(&graph, "locatedIn");
    let is_located_in = label(&graph, "isLocatedIn");
    for i in 0..n_cities {
        let name = if i == 0 {
            "Halle_Saxony-Anhalt".to_owned()
        } else {
            format!("City_{i:05}")
        };
        let city = typed(&mut graph, &name, city_c);
        let country = countries[rng.gen_range(0..countries.len())];
        graph.add_edge(city, located_in, country);
        graph.add_edge(country, has_capital, cities.last().copied().unwrap_or(city));
        cities.push(city);
    }

    // Ziggurats: located in countries; nothing is located in a ziggurat, so
    // the exact version of Q3 returns nothing.
    for i in 0..n_ziggurats {
        let z = typed(&mut graph, &format!("Ziggurat_{i:03}"), ziggurat_c);
        graph.add_edge(z, located_in, countries[rng.gen_range(0..countries.len())]);
    }

    // Universities: located (isLocatedIn) in countries.
    let mut universities = Vec::with_capacity(n_universities);
    for i in 0..n_universities {
        let u = typed(&mut graph, &format!("University_{i:04}"), university_c);
        let country = countries[rng.gen_range(0..countries.len())];
        graph.add_edge(u, is_located_in, country);
        universities.push(u);
    }

    // Prizes, films, clubs, commodities, airports, events.
    let prizes: Vec<NodeId> = (0..n_prizes)
        .map(|i| typed(&mut graph, &format!("Prize_{i:03}"), prize_c))
        .collect();
    let films: Vec<NodeId> = (0..n_films)
        .map(|i| typed(&mut graph, &format!("Film_{i:04}"), film_c))
        .collect();
    let clubs: Vec<NodeId> = (0..n_clubs)
        .map(|i| typed(&mut graph, &format!("Club_{i:03}"), club_c))
        .collect();
    let commodities: Vec<NodeId> = (0..n_commodities)
        .map(|i| typed(&mut graph, &format!("Commodity_{i:02}"), commodity_c))
        .collect();
    let airports: Vec<NodeId> = (0..n_airports)
        .map(|i| typed(&mut graph, &format!("Airport_{i:03}"), airport_c))
        .collect();
    let events: Vec<NodeId> = (0..n_events)
        .map(|i| typed(&mut graph, &format!("Event_{i:04}"), event_c))
        .collect();

    // Airports are connected to each other (query Q5's isConnectedTo); the
    // exact version finds nothing because airports are never born anywhere.
    let is_connected_to = label(&graph, "isConnectedTo");
    for (i, &airport) in airports.iter().enumerate() {
        for hop in 1..=3 {
            graph.add_edge(
                airport,
                is_connected_to,
                airports[(i + hop) % airports.len()],
            );
        }
        // airports sit in cities via isLocatedIn (relevant for RELAX Q5)
        graph.add_edge(
            airport,
            is_located_in,
            cities[rng.gen_range(0..cities.len())],
        );
    }

    // Countries import/export commodities (query Q6).
    let imports = label(&graph, "imports");
    let exports = label(&graph, "exports");
    for (i, &country) in countries.iter().enumerate() {
        for k in 0..3 {
            graph.add_edge(country, imports, commodities[(i + k) % commodities.len()]);
            graph.add_edge(
                country,
                exports,
                commodities[(i + k + 5) % commodities.len()],
            );
        }
    }

    // Events happen in cities; people participate in events (query Q7).
    let happened_in = label(&graph, "happenedIn");
    for (i, &event) in events.iter().enumerate() {
        graph.add_edge(event, happened_in, cities[i % cities.len()]);
    }

    // People: the bulk of the graph.
    let was_born_in = label(&graph, "wasBornIn");
    let born_in = label(&graph, "bornIn");
    let married_to = label(&graph, "marriedTo");
    let married = label(&graph, "married");
    let has_child = label(&graph, "hasChild");
    let grad_from = label(&graph, "gradFrom");
    let has_won_prize = label(&graph, "hasWonPrize");
    let lives_in = label(&graph, "livesIn");
    let directed = label(&graph, "directed");
    let acted_in = label(&graph, "actedIn");
    let plays_for = label(&graph, "playsFor");
    let participated_in = label(&graph, "participatedIn");
    let is_citizen_of = label(&graph, "isCitizenOf");
    let works_at = label(&graph, "worksAt");

    let mut people = Vec::with_capacity(n_people);
    for i in 0..n_people {
        let name = match i {
            0 => "Li_Peng".to_owned(),
            1 => "Annie Haslam".to_owned(),
            _ => format!("Person_{i:06}"),
        };
        let class = match i % 10 {
            0..=6 => person_c,
            7 | 8 => musician_c,
            _ => scientist_c,
        };
        let person = typed(&mut graph, &name, class);
        people.push(person);
    }
    // Annie Haslam is (also) a musician so Q8's `type.type-` fans out over
    // the musician class.
    graph.add_edge(people[1], type_l, musician_c);

    for (i, &person) in people.iter().enumerate() {
        let city = cities[rng.gen_range(0..cities.len())];
        graph.add_edge(person, was_born_in, city);
        if i % 3 == 0 {
            graph.add_edge(person, born_in, city);
        }
        graph.add_edge(
            person,
            lives_in,
            countries[rng.gen_range(0..countries.len())],
        );
        graph.add_edge(
            person,
            is_citizen_of,
            countries[rng.gen_range(0..countries.len())],
        );
        // marriage: pair up neighbours; `married` is the sparser variant.
        if i % 2 == 0 && i + 1 < people.len() {
            graph.add_edge(person, married_to, people[i + 1]);
            graph.add_edge(people[i + 1], married_to, person);
            if i % 10 == 0 {
                graph.add_edge(person, married, people[i + 1]);
            }
        }
        // children: roughly half the population has one or two.
        if i % 2 == 0 {
            for k in 1..=(1 + (i % 2)) {
                let child = people[(i + 20 + k) % people.len()];
                graph.add_edge(person, has_child, child);
            }
        }
        // education: most people graduated from some university.
        if i % 4 != 3 {
            graph.add_edge(
                person,
                grad_from,
                universities[rng.gen_range(0..universities.len())],
            );
        }
        // prizes: sparse.
        if i % 37 == 0 {
            graph.add_edge(
                person,
                has_won_prize,
                prizes[rng.gen_range(0..prizes.len())],
            );
        }
        // films: a slice of the population acts, a few direct.
        if i % 9 == 0 {
            graph.add_edge(person, acted_in, films[rng.gen_range(0..films.len())]);
        }
        if i % 61 == 0 {
            graph.add_edge(person, directed, films[rng.gen_range(0..films.len())]);
        }
        // sport: a slice plays for clubs.
        if i % 23 == 0 {
            graph.add_edge(person, plays_for, clubs[rng.gen_range(0..clubs.len())]);
        }
        // events: plenty of participation so Q7 has > 100 exact answers.
        if i % 2 == 0 {
            graph.add_edge(
                person,
                participated_in,
                events[rng.gen_range(0..events.len())],
            );
        }
        if i % 13 == 0 {
            graph.add_edge(
                person,
                works_at,
                universities[rng.gen_range(0..universities.len())],
            );
        }
    }

    // Query Q2's seed pattern: Li_Peng has children who graduated from
    // universities that other (prize-winning) people also graduated from.
    let li_peng = people[0];
    let child_a = people[40];
    let child_b = people[41];
    graph.add_edge(li_peng, has_child, child_a);
    graph.add_edge(li_peng, has_child, child_b);
    graph.add_edge(child_a, grad_from, universities[0]);
    graph.add_edge(child_b, grad_from, universities[1]);
    let laureate_a = people[100];
    let laureate_b = people[101];
    graph.add_edge(laureate_a, grad_from, universities[0]);
    graph.add_edge(laureate_b, grad_from, universities[1]);
    graph.add_edge(laureate_a, has_won_prize, prizes[0]);
    graph.add_edge(laureate_b, has_won_prize, prizes[1 % prizes.len()]);

    // Query Q1's seed pattern: people born in Halle, married, with children.
    let halle = cities[0];
    let born_a = people[200];
    let born_b = people[201];
    graph.add_edge(born_a, born_in, halle);
    graph.add_edge(born_b, born_in, halle);
    graph.add_edge(born_a, married_to, people[202]);
    graph.add_edge(people[202], has_child, people[203]);
    graph.add_edge(born_b, married_to, people[204]);
    graph.add_edge(people[204], has_child, people[205]);

    // Query Q9: make sure the UK hosts universities with graduates, so the
    // APPROX/RELAX versions have at least 100 answers to find.
    let uk = countries[0];
    for (i, &u) in universities.iter().enumerate().take(universities.len() / 4) {
        graph.add_edge(u, is_located_in, uk);
        graph.add_edge(u, located_in, uk);
        let _ = i;
    }

    // Generated datasets are read-only from here on: hand the engine the
    // frozen CSR representation up front.
    graph.freeze();
    Dataset { graph, ontology }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_yago(&YagoConfig::tiny());
        let b = generate_yago(&YagoConfig::tiny());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn schema_matches_the_paper() {
        let data = generate_yago(&YagoConfig::tiny());
        // 38 properties including `type`.
        assert_eq!(YAGO_PROPERTIES.len() + 1, 38);
        for p in YAGO_PROPERTIES {
            assert!(data.graph.label_id(p).is_some(), "missing property {p}");
        }
        // Two property hierarchies with 6 and 2 subproperties.
        let located_by = data.graph.label_id("relationLocatedByObject").unwrap();
        assert_eq!(data.ontology.direct_subproperties(located_by).len(), 6);
        let acts = data.graph.label_id("actsUpon").unwrap();
        assert_eq!(data.ontology.direct_subproperties(acts).len(), 2);
        // The taxonomy has depth 2 (root → person → musician).
        let root = data.graph.node_by_label("wordnet_entity").unwrap();
        assert_eq!(data.ontology.class_hierarchy().depth_below(root), 2);
    }

    #[test]
    fn query_constants_exist() {
        let data = generate_yago(&YagoConfig::tiny());
        for constant in [
            "Halle_Saxony-Anhalt",
            "Li_Peng",
            "wordnet_ziggurat",
            "wordnet_city",
            "Annie Haslam",
            "UK",
        ] {
            assert!(
                data.graph.node_by_label(constant).is_some(),
                "missing constant {constant}"
            );
        }
    }

    #[test]
    fn scaling_grows_the_graph_linearly() {
        let small = generate_yago(&YagoConfig::tiny());
        let larger = generate_yago(&YagoConfig {
            scale: 0.1,
            filler_classes: 20,
            ..YagoConfig::default()
        });
        assert!(larger.graph.node_count() > small.graph.node_count());
        let ratio = larger.graph.edge_count() as f64 / small.graph.edge_count() as f64;
        assert!(ratio > 1.4 && ratio < 3.0, "edge ratio {ratio}");
    }

    #[test]
    fn ziggurats_have_nothing_located_in_them() {
        let data = generate_yago(&YagoConfig::tiny());
        let g = &data.graph;
        let located_in = g.label_id("locatedIn").unwrap();
        let ziggurat_class = g.node_by_label("wordnet_ziggurat").unwrap();
        for z in g.neighbors(
            ziggurat_class,
            g.type_label(),
            omega_graph::Direction::Incoming,
        ) {
            assert!(g
                .neighbors(*z, located_in, omega_graph::Direction::Incoming)
                .is_empty());
        }
    }

    #[test]
    fn nothing_graduates_from_a_country() {
        // Q9 must have zero exact answers: `gradFrom` never leaves a
        // university/country node.
        let data = generate_yago(&YagoConfig::tiny());
        let g = &data.graph;
        let grad_from = g.label_id("gradFrom").unwrap();
        let uk = g.node_by_label("UK").unwrap();
        let located_in = g.label_id("locatedIn").unwrap();
        for thing in g.neighbors(uk, located_in, omega_graph::Direction::Incoming) {
            assert!(g
                .neighbors(*thing, grad_from, omega_graph::Direction::Outgoing)
                .is_empty());
        }
    }
}
