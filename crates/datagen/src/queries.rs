//! The query sets of Figure 4 (L4All) and Figure 9 (YAGO), in the textual
//! syntax accepted by `omega_core::parse_query`.

/// One query of a case-study query set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The paper's identifier (`Q1` … `Q12`).
    pub id: &'static str,
    /// The query in Omega's textual syntax, in exact mode; APPROX/RELAX
    /// variants are produced with [`QuerySpec::with_operator`].
    pub text: &'static str,
    /// Whether the paper's performance study runs APPROX/RELAX variants of
    /// this query (queries with ample exact answers are exact-only).
    pub flexible_in_study: bool,
}

impl QuerySpec {
    /// The query text with the given operator (`"APPROX"` or `"RELAX"`)
    /// applied to its (single) conjunct; an empty operator returns the exact
    /// text.
    pub fn with_operator(&self, operator: &str) -> String {
        if operator.is_empty() {
            self.text.to_owned()
        } else {
            self.text.replacen("<- (", &format!("<- {operator} ("), 1)
        }
    }

    /// The query text with the operator applied to *every* conjunct (used by
    /// the multi-conjunct query sets); an empty operator returns the exact
    /// text.
    pub fn with_operator_everywhere(&self, operator: &str) -> String {
        if operator.is_empty() {
            self.text.to_owned()
        } else {
            // Conjuncts are parenthesised and comma-separated, so the first
            // starts after "<- " and every later one after "), ".
            self.text
                .replacen("<- (", &format!("<- {operator} ("), 1)
                .replace("), (", &format!("), {operator} ("))
        }
    }

    /// Number of conjuncts in the query body.
    pub fn conjunct_count(&self) -> usize {
        1 + self.text.matches("), (").count()
    }
}

/// The 12 L4All queries of Figure 4.
pub fn l4all_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "Q1",
            text: "(?X) <- (Work Episode, type-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q2",
            text: "(?X) <- (Information Systems, type-.qualif-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q3",
            text: "(?X) <- (Software Professionals, type-.job-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q4",
            text: "(?X, ?Y) <- (?X, job.type, ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q5",
            text: "(?X, ?Y) <- (?X, next+, ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q6",
            text: "(?X, ?Y) <- (?X, prereq+, ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q7",
            text: "(?X, ?Y) <- (?X, next+|(prereq+.next), ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q8",
            text: "(?X) <- (Mathematical and Computer Sciences, type.prereq+, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q9",
            text: "(?X) <- (Alumni 4 Episode 1_1, prereq*.next+.prereq, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q10",
            text: "(?X) <- (Librarians, type-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q11",
            text: "(?X) <- (Librarians, type-.job-.next, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q12",
            text: "(?X) <- (BTEC Introductory Diploma, level-.qualif-.prereq, ?X)",
            flexible_in_study: true,
        },
    ]
}

/// The 9 YAGO queries of Figure 9.
pub fn yago_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "Q1",
            text: "(?X) <- (Halle_Saxony-Anhalt, bornIn-.marriedTo.hasChild, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q2",
            text: "(?X) <- (Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q3",
            text: "(?X) <- (wordnet_ziggurat, type-.locatedIn-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q4",
            text: "(?X, ?Y) <- (?X, directed.married.married+.playsFor, ?Y)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q5",
            text: "(?X, ?Y) <- (?X, isConnectedTo.wasBornIn, ?Y)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q6",
            text: "(?X, ?Y) <- (?X, imports.exports-, ?Y)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q7",
            text: "(?X) <- (wordnet_city, type-.happenedIn-.participatedIn-, ?X)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q8",
            text: "(?X) <- (Annie Haslam, type.type-.actedIn, ?X)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q9",
            text: "(?X) <- (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)",
            flexible_in_study: true,
        },
    ]
}

/// Multi-conjunct L4All queries used by the parallel-conjunct study: star
/// and chain joins over episode timelines with two to four conjuncts per
/// query. Not part of the paper's query set (Figure 4 is single-conjunct
/// throughout); they exercise the ranked join on the same generated data.
///
/// The conjunct order matters to the HRJN join's cost model: every stream
/// except the last is drained before combinations can complete, and
/// arrivals are merged against earlier buffers in conjunct order — so the
/// sets keep anchored/sparse conjuncts first, give every later conjunct a
/// variable shared with the first, and put the one unbounded stream last.
pub fn l4all_multi_conjunct_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "M1",
            text: "(?E, ?N) <- (Work Episode, type-, ?E), (?E, next, ?N)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "M2",
            text: "(?E, ?J, ?N) <- (Work Episode, type-, ?E), (?E, job, ?J), (?E, next+, ?N)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "M3",
            text: "(?E, ?N, ?P) <- (Work Episode, type-, ?E), (?E, next, ?N), (?E, prereq, ?P)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "M4",
            text: "(?E, ?Q, ?N, ?P) <- (Educational Episode, type-, ?E), (?E, qualif, ?Q), \
                   (?E, next, ?N), (?E, prereq+, ?P)",
            flexible_in_study: true,
        },
    ]
}

/// Multi-conjunct YAGO queries for the parallel-conjunct study: star and
/// path joins over the person-centric portion of the graph, shaped by the
/// same join-cost rules as [`l4all_multi_conjunct_queries`].
pub fn yago_multi_conjunct_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "YM1",
            text: "(?X, ?U) <- (?U, isLocatedIn, ?C), (?X, gradFrom, ?U)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "YM2",
            text: "(?X, ?P, ?U) <- (?X, hasWonPrize, ?W), (?X, marriedTo, ?P), (?X, gradFrom, ?U)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "YM3",
            text: "(?X, ?C, ?Y) <- (?X, wasBornIn, ?C), (?C, locatedIn, ?Y), (?X, livesIn, ?Z)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "YM4",
            text: "(?X, ?F, ?P, ?U) <- (?X, directed, ?F), (?X, marriedTo, ?P), \
                   (?X, gradFrom, ?U), (?X, livesIn, ?Z)",
            flexible_in_study: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sets_have_the_published_sizes() {
        assert_eq!(l4all_queries().len(), 12);
        assert_eq!(yago_queries().len(), 9);
    }

    #[test]
    fn multi_conjunct_sets_have_two_to_four_conjuncts() {
        for spec in l4all_multi_conjunct_queries()
            .iter()
            .chain(yago_multi_conjunct_queries().iter())
        {
            let n = spec.conjunct_count();
            assert!((2..=4).contains(&n), "{} has {n} conjuncts", spec.id);
        }
    }

    #[test]
    fn operator_everywhere_rewrites_every_conjunct() {
        let spec = &l4all_multi_conjunct_queries()[1];
        let text = spec.with_operator_everywhere("APPROX");
        assert_eq!(text.matches("APPROX (").count(), spec.conjunct_count());
        assert_eq!(spec.with_operator_everywhere(""), spec.text);
    }

    #[test]
    fn operator_rewriting() {
        let q = &l4all_queries()[0];
        assert_eq!(q.with_operator(""), q.text);
        assert_eq!(
            q.with_operator("APPROX"),
            "(?X) <- APPROX (Work Episode, type-, ?X)"
        );
        assert_eq!(
            q.with_operator("RELAX"),
            "(?X) <- RELAX (Work Episode, type-, ?X)"
        );
    }

    #[test]
    fn ids_are_sequential() {
        for (i, q) in l4all_queries().iter().enumerate() {
            assert_eq!(q.id, format!("Q{}", i + 1));
        }
        for (i, q) in yago_queries().iter().enumerate() {
            assert_eq!(q.id, format!("Q{}", i + 1));
        }
    }
}
