//! The query sets of Figure 4 (L4All) and Figure 9 (YAGO), in the textual
//! syntax accepted by `omega_core::parse_query`.

/// One query of a case-study query set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The paper's identifier (`Q1` … `Q12`).
    pub id: &'static str,
    /// The query in Omega's textual syntax, in exact mode; APPROX/RELAX
    /// variants are produced with [`QuerySpec::with_operator`].
    pub text: &'static str,
    /// Whether the paper's performance study runs APPROX/RELAX variants of
    /// this query (queries with ample exact answers are exact-only).
    pub flexible_in_study: bool,
}

impl QuerySpec {
    /// The query text with the given operator (`"APPROX"` or `"RELAX"`)
    /// applied to its (single) conjunct; an empty operator returns the exact
    /// text.
    pub fn with_operator(&self, operator: &str) -> String {
        if operator.is_empty() {
            self.text.to_owned()
        } else {
            self.text.replacen("<- (", &format!("<- {operator} ("), 1)
        }
    }
}

/// The 12 L4All queries of Figure 4.
pub fn l4all_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "Q1",
            text: "(?X) <- (Work Episode, type-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q2",
            text: "(?X) <- (Information Systems, type-.qualif-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q3",
            text: "(?X) <- (Software Professionals, type-.job-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q4",
            text: "(?X, ?Y) <- (?X, job.type, ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q5",
            text: "(?X, ?Y) <- (?X, next+, ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q6",
            text: "(?X, ?Y) <- (?X, prereq+, ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q7",
            text: "(?X, ?Y) <- (?X, next+|(prereq+.next), ?Y)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q8",
            text: "(?X) <- (Mathematical and Computer Sciences, type.prereq+, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q9",
            text: "(?X) <- (Alumni 4 Episode 1_1, prereq*.next+.prereq, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q10",
            text: "(?X) <- (Librarians, type-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q11",
            text: "(?X) <- (Librarians, type-.job-.next, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q12",
            text: "(?X) <- (BTEC Introductory Diploma, level-.qualif-.prereq, ?X)",
            flexible_in_study: true,
        },
    ]
}

/// The 9 YAGO queries of Figure 9.
pub fn yago_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "Q1",
            text: "(?X) <- (Halle_Saxony-Anhalt, bornIn-.marriedTo.hasChild, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q2",
            text: "(?X) <- (Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q3",
            text: "(?X) <- (wordnet_ziggurat, type-.locatedIn-, ?X)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q4",
            text: "(?X, ?Y) <- (?X, directed.married.married+.playsFor, ?Y)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q5",
            text: "(?X, ?Y) <- (?X, isConnectedTo.wasBornIn, ?Y)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q6",
            text: "(?X, ?Y) <- (?X, imports.exports-, ?Y)",
            flexible_in_study: true,
        },
        QuerySpec {
            id: "Q7",
            text: "(?X) <- (wordnet_city, type-.happenedIn-.participatedIn-, ?X)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q8",
            text: "(?X) <- (Annie Haslam, type.type-.actedIn, ?X)",
            flexible_in_study: false,
        },
        QuerySpec {
            id: "Q9",
            text: "(?X) <- (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)",
            flexible_in_study: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sets_have_the_published_sizes() {
        assert_eq!(l4all_queries().len(), 12);
        assert_eq!(yago_queries().len(), 9);
    }

    #[test]
    fn operator_rewriting() {
        let q = &l4all_queries()[0];
        assert_eq!(q.with_operator(""), q.text);
        assert_eq!(
            q.with_operator("APPROX"),
            "(?X) <- APPROX (Work Episode, type-, ?X)"
        );
        assert_eq!(
            q.with_operator("RELAX"),
            "(?X) <- RELAX (Work Episode, type-, ?X)"
        );
    }

    #[test]
    fn ids_are_sequential() {
        for (i, q) in l4all_queries().iter().enumerate() {
            assert_eq!(q.id, format!("Q{}", i + 1));
        }
        for (i, q) in yago_queries().iter().enumerate() {
            assert_eq!(q.id, format!("Q{}", i + 1));
        }
    }
}
