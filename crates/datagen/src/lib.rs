//! # omega-datagen
//!
//! Deterministic synthetic data generators reproducing the two case studies
//! of the paper's performance evaluation (Section 4):
//!
//! * [`l4all`] — the L4All lifelong-learning timelines: the class hierarchies
//!   of Figure 2, the `isEpisodeLink ⊒ {next, prereq}` property hierarchy,
//!   21 base timelines, and the scaling scheme (duplicate timelines,
//!   reclassify each episode to a sibling class) that yields the four graphs
//!   L1–L4 of Figure 3.
//! * [`yago`] — a YAGO-like knowledge graph with the same schema shape as the
//!   SIMPLETAX + CORE extract the paper used: one flat, very wide class
//!   taxonomy, 38 properties, two property hierarchies (6 and 2
//!   sub-properties), domains/ranges, and entity populations wired so that
//!   the nine queries of Figure 9 behave as reported in Figure 10 (which
//!   return nothing exactly, which are rescued by APPROX/RELAX, which
//!   explode).
//! * [`queries`] — the verbatim query sets of Figure 4 and Figure 9.
//!
//! All generators are seeded and deterministic: the same configuration
//! always produces the same graph, so experiment results are reproducible
//! run-to-run.

pub mod l4all;
pub mod queries;
pub mod yago;

use omega_graph::GraphStore;
use omega_ontology::Ontology;

/// A generated data graph together with its ontology.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The data graph.
    pub graph: GraphStore,
    /// The accompanying ontology.
    pub ontology: Ontology,
}

impl Dataset {
    /// Convenience: node and edge counts.
    pub fn size(&self) -> (usize, usize) {
        (self.graph.node_count(), self.graph.edge_count())
    }
}

pub use l4all::{generate_l4all, L4AllConfig, L4AllScale};
pub use queries::{
    l4all_multi_conjunct_queries, l4all_queries, yago_multi_conjunct_queries, yago_queries,
    QuerySpec,
};
pub use yago::{generate_yago, YagoConfig};
