//! Property-based tests: NFA construction, ε-removal, reversal and APPROX
//! agree with reference semantics on randomly generated regular expressions
//! and words.

use omega_automata::simulate::{accepts, min_accept_cost};
use omega_automata::{approximate, build_nfa, remove_epsilons, reverse, ApproxConfig, MapResolver};
use omega_regex::{oracle, RpqRegex, Symbol};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_regex() -> impl Strategy<Value = RpqRegex> {
    let leaf = prop_oneof![
        Just(RpqRegex::Epsilon),
        (0usize..LABELS.len(), any::<bool>()).prop_map(|(i, inv)| {
            if inv {
                RpqRegex::inverse_label(LABELS[i])
            } else {
                RpqRegex::label(LABELS[i])
            }
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RpqRegex::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RpqRegex::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| RpqRegex::Star(Box::new(a))),
            inner.prop_map(|a| RpqRegex::Plus(Box::new(a))),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0usize..LABELS.len(), any::<bool>()), 0..6).prop_map(|syms| {
        syms.into_iter()
            .map(|(i, inv)| Symbol {
                label: LABELS[i].to_owned(),
                inverse: inv,
            })
            .collect()
    })
}

fn resolver() -> MapResolver {
    let mut r = MapResolver::new();
    for l in LABELS {
        r.add_label(l);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Thompson NFA accepts exactly the words the naive oracle accepts.
    #[test]
    fn nfa_agrees_with_oracle(regex in arb_regex(), word in arb_word()) {
        let nfa = build_nfa(&regex, &resolver());
        prop_assert_eq!(accepts(&nfa, &word), oracle::matches(&regex, &word));
    }

    /// ε-removal preserves the weighted language.
    #[test]
    fn epsilon_removal_preserves_language(regex in arb_regex(), word in arb_word()) {
        let nfa = build_nfa(&regex, &resolver());
        let cleaned = remove_epsilons(&nfa);
        prop_assert!(!cleaned.has_epsilon_transitions());
        prop_assert_eq!(min_accept_cost(&nfa, &word), min_accept_cost(&cleaned, &word));
    }

    /// Parsing the displayed form of an expression yields the same language.
    #[test]
    fn display_round_trip_preserves_language(regex in arb_regex(), word in arb_word()) {
        let reparsed = omega_regex::parse(&regex.to_string()).unwrap();
        prop_assert_eq!(
            oracle::matches(&regex, &word),
            oracle::matches(&reparsed, &word)
        );
    }

    /// The reversed automaton accepts exactly the reversed (and
    /// direction-flipped) words.
    #[test]
    fn reversal_matches_reversed_words(regex in arb_regex(), word in arb_word()) {
        let nfa = build_nfa(&regex, &resolver());
        let rev = remove_epsilons(&reverse(&nfa));
        let mut rev_word: Vec<Symbol> = word.iter().map(Symbol::flipped).collect();
        rev_word.reverse();
        prop_assert_eq!(min_accept_cost(&nfa, &word), min_accept_cost(&rev, &rev_word));
    }

    /// APPROX: every word is accepted at some finite cost, exact words stay
    /// at cost 0, and the cost never exceeds (|word| deletions of query
    /// symbols are not needed: inserting every word symbol and deleting the
    /// whole query) — we check the weaker, always-valid bound that the cost
    /// is at most |word| * insertion + (cost of accepting the empty word).
    #[test]
    fn approx_accepts_everything_with_bounded_cost(regex in arb_regex(), word in arb_word()) {
        let config = ApproxConfig::default();
        let nfa = build_nfa(&regex, &resolver());
        let approx = remove_epsilons(&approximate(&nfa, &config));
        let cost = min_accept_cost(&approx, &word);
        prop_assert!(cost.is_some());
        if oracle::matches(&regex, &word) {
            prop_assert_eq!(cost, Some(0));
        }
        let empty_cost = min_accept_cost(&approx, &[]).unwrap();
        let bound = empty_cost + word.len() as u32 * config.insertion;
        prop_assert!(cost.unwrap() <= bound, "cost {:?} exceeds bound {}", cost, bound);
    }

    /// The minimum acceptance cost of the APPROX automaton never exceeds the
    /// exact automaton's (approximation only adds cheaper alternatives).
    #[test]
    fn approx_cost_is_monotone(regex in arb_regex(), word in arb_word()) {
        let nfa = build_nfa(&regex, &resolver());
        let exact = remove_epsilons(&nfa);
        let approx = remove_epsilons(&approximate(&nfa, &ApproxConfig::default()));
        if let Some(exact_cost) = min_accept_cost(&exact, &word) {
            prop_assert!(min_accept_cost(&approx, &word).unwrap() <= exact_cost);
        }
    }
}
