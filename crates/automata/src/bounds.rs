//! Per-state accept lower bounds: the admissible heuristic behind
//! cost-guided (A*) evaluation.
//!
//! For every state `s` of an (ε-free) [`WeightedNfa`], [`MinCostToAccept`]
//! records the minimum total transition weight of any path from `s` to an
//! accepting state, including the accepting state's final weight. It is
//! computed once per compiled plan by a reverse Dijkstra over the automaton
//! — node count and transition count are tiny compared to the data graph,
//! so the cost is noise next to Thompson construction.
//!
//! ## Admissibility
//!
//! Evaluation explores the weighted product of the automaton with the data
//! graph: a traversal tuple `(v, n, s)` at accumulated distance `g` can only
//! become an answer by following product transitions whose automaton
//! projections form a path from `s` to some accepting state `f`, paying that
//! path's transition costs plus `weight(f)`. The graph can *restrict* which
//! automaton paths are realisable — it can never add paths or lower their
//! cost — so the final distance of **any** answer derived from the tuple is
//! at least `g + h(s)`, where `h = MinCostToAccept`. The bound therefore
//! never excludes or delays an answer: popping tuples in `f = g + h` order
//! still yields answers in non-decreasing final distance, and a tuple with
//! `g + h(s) > ψ` can be dropped without losing any answer of distance `≤ ψ`.
//!
//! ## Consistency
//!
//! `h` is a shortest-path distance, so `h(s) ≤ cost(t) + h(target(t))` for
//! every live transition `t` out of `s` and `h(s) ≤ weight(s)` for final
//! `s`. Consequently `f = g + h` is non-decreasing along any derivation,
//! which is what lets the evaluator use a monotone bucket queue keyed on `f`
//! without re-expansion.
//!
//! ## Graph-aware liveness
//!
//! Both flexible operators only *add* transitions to the 0-cost Thompson
//! skeleton, so over the bare automaton `h ≡ 0`. The bound starts to bite
//! when it is computed against what the data graph can actually fire:
//! [`MinCostToAccept::compute_with`] takes a liveness predicate and treats
//! transitions whose label can never match any edge of the graph (unresolved
//! symbols, labels with zero edges, `type`-constraints on classes with no
//! instances) as absent. States that then cannot reach acceptance at all are
//! **dead** (`h = `[`MinCostToAccept::DEAD`]) and whole traversal branches
//! into them are pruned before they ever touch the CSR.
//!
//! The predicate must *under*-approximate impossibility: it may report a
//! transition live that never fires on this graph (costing only missed
//! pruning), but must never report one dead that can fire (which would
//! break admissibility).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::label::TransitionLabel;
use crate::nfa::{StateId, WeightedNfa};

/// Per-state minimum remaining weight to reach acceptance.
///
/// See the module documentation for the admissibility and consistency
/// arguments. Build one with [`MinCostToAccept::compute`] (every
/// edge-consuming label assumed fireable) or
/// [`MinCostToAccept::compute_with`] (graph-aware liveness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCostToAccept {
    h: Vec<u32>,
}

impl MinCostToAccept {
    /// The bound of a state that cannot reach any accepting state: such
    /// states can never contribute an answer and are pruned outright.
    pub const DEAD: u32 = u32::MAX;

    /// Computes the bounds assuming every edge-consuming transition can
    /// fire. ε-transitions are treated as absent — these bounds are meant
    /// for the ε-free automata the evaluator runs on, where ε matches no
    /// edge.
    pub fn compute(nfa: &WeightedNfa) -> MinCostToAccept {
        MinCostToAccept::compute_with(nfa, |_| true)
    }

    /// Computes the bounds with a graph-aware liveness predicate: a
    /// transition whose label `live` rejects is treated as absent. The
    /// predicate must only reject labels that can never match an edge of
    /// the graph the automaton will run against.
    pub fn compute_with(
        nfa: &WeightedNfa,
        mut live: impl FnMut(&TransitionLabel) -> bool,
    ) -> MinCostToAccept {
        let n = nfa.state_count();
        // Reverse adjacency over live transitions.
        let mut reverse: Vec<Vec<(u32, StateId)>> = vec![Vec::new(); n];
        for t in nfa.transitions() {
            if t.label.is_epsilon() || !live(&t.label) {
                continue;
            }
            reverse[t.to.index()].push((t.cost, t.from));
        }
        let mut h = vec![MinCostToAccept::DEAD; n];
        // Multi-source Dijkstra seeded at the accepting states with their
        // final weights (the cost still owed when stopping there).
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for (state, weight) in nfa.finals() {
            if weight < h[state.index()] {
                h[state.index()] = weight;
                heap.push(Reverse((weight, state.0)));
            }
        }
        while let Some(Reverse((d, s))) = heap.pop() {
            if d > h[s as usize] {
                continue; // stale entry
            }
            for &(cost, from) in &reverse[s as usize] {
                let next = d.saturating_add(cost);
                if next < h[from.index()] {
                    h[from.index()] = next;
                    heap.push(Reverse((next, from.0)));
                }
            }
        }
        MinCostToAccept { h }
    }

    /// The lower bound of `state`, or [`MinCostToAccept::DEAD`] when no
    /// accepting state is reachable.
    #[inline]
    pub fn get(&self, state: StateId) -> u32 {
        self.h[state.index()]
    }

    /// Whether `state` can never reach acceptance.
    #[inline]
    pub fn is_dead(&self, state: StateId) -> bool {
        self.h[state.index()] == MinCostToAccept::DEAD
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.h.len()
    }

    /// Whether the automaton had no states (never the case for a
    /// constructed NFA, which always has its initial state).
    pub fn is_empty(&self) -> bool {
        self.h.is_empty()
    }

    /// Number of dead states.
    pub fn dead_states(&self) -> usize {
        self.h
            .iter()
            .filter(|&&v| v == MinCostToAccept::DEAD)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str) -> TransitionLabel {
        TransitionLabel::symbol(None, false, name)
    }

    /// s0 --a/0--> s1 --b/2--> s2(final, weight 3)
    fn chain() -> (WeightedNfa, StateId, StateId, StateId) {
        let mut nfa = WeightedNfa::new();
        let s0 = nfa.initial();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(s0, sym("a"), 0, s1);
        nfa.add_transition(s1, sym("b"), 2, s2);
        nfa.add_final(s2, 3);
        nfa.freeze();
        (nfa, s0, s1, s2)
    }

    #[test]
    fn chain_accumulates_costs_and_final_weight() {
        let (nfa, s0, s1, s2) = chain();
        let h = MinCostToAccept::compute(&nfa);
        assert_eq!(h.get(s2), 3);
        assert_eq!(h.get(s1), 5);
        assert_eq!(h.get(s0), 5);
        assert_eq!(h.dead_states(), 0);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn unreachable_acceptance_is_dead() {
        let mut nfa = WeightedNfa::new();
        let s0 = nfa.initial();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(s0, sym("a"), 0, s1);
        // s2 dangles with no path to the final state.
        nfa.add_transition(s2, sym("b"), 0, s2);
        nfa.add_final(s1, 0);
        nfa.freeze();
        let h = MinCostToAccept::compute(&nfa);
        assert_eq!(h.get(s0), 0);
        assert!(h.is_dead(s2));
        assert_eq!(h.dead_states(), 1);
    }

    #[test]
    fn cheapest_of_parallel_paths_wins() {
        let mut nfa = WeightedNfa::new();
        let s0 = nfa.initial();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(s0, sym("cheap"), 1, s2);
        nfa.add_transition(s0, sym("a"), 0, s1);
        nfa.add_transition(s1, sym("b"), 5, s2);
        nfa.add_final(s2, 0);
        nfa.freeze();
        let h = MinCostToAccept::compute(&nfa);
        assert_eq!(h.get(s0), 1, "the direct cost-1 edge beats 0 + 5");
        assert_eq!(h.get(s1), 5);
    }

    #[test]
    fn final_state_with_cheaper_outgoing_path_uses_it() {
        // A final state with a large weight but a cheap path to another
        // final state takes the path.
        let mut nfa = WeightedNfa::new();
        let s0 = nfa.initial();
        let s1 = nfa.add_state();
        nfa.add_final(s0, 9);
        nfa.add_transition(s0, sym("a"), 1, s1);
        nfa.add_final(s1, 0);
        nfa.freeze();
        let h = MinCostToAccept::compute(&nfa);
        assert_eq!(h.get(s0), 1);
    }

    #[test]
    fn liveness_predicate_kills_paths() {
        let (nfa, s0, s1, s2) = chain();
        // `b` can never fire: only s2 itself still accepts.
        let h = MinCostToAccept::compute_with(&nfa, |l| l.to_string() != "b");
        assert_eq!(h.get(s2), 3);
        assert!(h.is_dead(s1));
        assert!(h.is_dead(s0));
        assert_eq!(h.dead_states(), 2);
    }

    #[test]
    fn epsilon_transitions_are_ignored() {
        let mut nfa = WeightedNfa::new();
        let s0 = nfa.initial();
        let s1 = nfa.add_state();
        nfa.add_transition(s0, TransitionLabel::Epsilon, 0, s1);
        nfa.add_final(s1, 0);
        nfa.freeze();
        let h = MinCostToAccept::compute(&nfa);
        assert!(
            h.is_dead(s0),
            "ε matches no edge in the evaluator, so it must not carry the bound"
        );
    }

    #[test]
    fn consistency_holds_on_flexible_automata() {
        use crate::approx::{approximate, ApproxConfig};
        use crate::epsilon::remove_epsilons;
        use crate::resolver::MapResolver;
        use crate::thompson::build_nfa;
        use omega_regex::parse;

        let resolver = MapResolver::new();
        for expr in ["a.b", "a*|b.c", "a-.b+", "(a.b)|(c.d.a)"] {
            let base = build_nfa(&parse(expr).unwrap(), &resolver);
            for nfa in [
                remove_epsilons(&base),
                remove_epsilons(&approximate(&base, &ApproxConfig::default())),
            ] {
                let h = MinCostToAccept::compute(&nfa);
                for t in nfa.transitions() {
                    let (hs, ht) = (h.get(t.from), h.get(t.to));
                    if ht != MinCostToAccept::DEAD {
                        assert!(
                            hs <= t.cost.saturating_add(ht),
                            "consistency violated on {expr}: h({:?})={hs} > {} + h({:?})={ht}",
                            t.from,
                            t.cost,
                            t.to
                        );
                    }
                }
                for (state, weight) in nfa.finals() {
                    assert!(h.get(state) <= weight);
                }
                // Thompson skeletons are co-accessible at cost 0, so with
                // every label live the bound must be identically zero.
                assert_eq!(h.dead_states(), 0);
            }
        }
    }
}
