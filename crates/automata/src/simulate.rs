//! Word-level simulation of weighted NFAs.
//!
//! The evaluator never simulates words — it traverses the product of the
//! automaton with the data graph. Word simulation exists as a specification
//! and test oracle: it defines the weighted language of an automaton
//! (minimum cost to accept a word) and is used by unit and property tests to
//! check that ε-removal, reversal and the APPROX/RELAX augmentations do what
//! they claim.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use omega_regex::Symbol;

use crate::nfa::{StateId, WeightedNfa};

/// The minimum total cost at which `nfa` accepts `word`, or `None` if the
/// word is not accepted at any cost.
///
/// Runs a Dijkstra search over `(state, position)` pairs, so it handles
/// ε-transitions (including weighted ones) and cycles.
pub fn min_accept_cost(nfa: &WeightedNfa, word: &[Symbol]) -> Option<u32> {
    let mut dist: HashMap<(StateId, usize), u32> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u32, u32, usize)>> = BinaryHeap::new();
    dist.insert((nfa.initial(), 0), 0);
    heap.push(Reverse((0, nfa.initial().0, 0)));
    let mut best: Option<u32> = None;

    while let Some(Reverse((cost, state_raw, pos))) = heap.pop() {
        let state = StateId(state_raw);
        if dist.get(&(state, pos)).copied().unwrap_or(u32::MAX) < cost {
            continue;
        }
        if pos == word.len() {
            if let Some(weight) = nfa.final_weight(state) {
                let total = cost + weight;
                best = Some(best.map_or(total, |b| b.min(total)));
            }
        }
        for t in nfa.transitions().iter().filter(|t| t.from == state) {
            let (next_pos, applicable) = if t.label.is_epsilon() {
                (pos, true)
            } else if pos < word.len() && t.label.matches_symbol(&word[pos]) {
                (pos + 1, true)
            } else {
                (pos, false)
            };
            if !applicable {
                continue;
            }
            let next_cost = cost + t.cost;
            let key = (t.to, next_pos);
            if next_cost < dist.get(&key).copied().unwrap_or(u32::MAX) {
                dist.insert(key, next_cost);
                heap.push(Reverse((next_cost, t.to.0, next_pos)));
            }
        }
    }
    best
}

/// Whether `nfa` accepts `word` at cost 0.
pub fn accepts(nfa: &WeightedNfa, word: &[Symbol]) -> bool {
    min_accept_cost(nfa, word) == Some(0)
}

/// Whether `nfa` accepts `word` at any cost.
pub fn accepts_at_any_cost(nfa: &WeightedNfa, word: &[Symbol]) -> bool {
    min_accept_cost(nfa, word).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TransitionLabel;

    fn sym(name: &str) -> TransitionLabel {
        TransitionLabel::symbol(None, false, name)
    }

    fn w(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|&n| Symbol::forward(n)).collect()
    }

    #[test]
    fn weighted_acceptance() {
        // s0 --a/0--> s1 --b/2--> s2(final, weight 1)
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        nfa.add_transition(s1, sym("b"), 2, s2);
        nfa.add_final(s2, 1);
        nfa.freeze();
        assert_eq!(min_accept_cost(&nfa, &w(&["a", "b"])), Some(3));
        assert_eq!(min_accept_cost(&nfa, &w(&["a"])), None);
        assert!(!accepts(&nfa, &w(&["a", "b"])));
        assert!(accepts_at_any_cost(&nfa, &w(&["a", "b"])));
    }

    #[test]
    fn picks_cheapest_of_parallel_paths() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 5, s2);
        nfa.add_transition(nfa.initial(), TransitionLabel::Epsilon, 1, s1);
        nfa.add_transition(s1, sym("a"), 0, s2);
        nfa.add_final(s2, 0);
        nfa.freeze();
        assert_eq!(min_accept_cost(&nfa, &w(&["a"])), Some(1));
    }

    #[test]
    fn epsilon_cycles_terminate() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), TransitionLabel::Epsilon, 0, s1);
        nfa.add_transition(s1, TransitionLabel::Epsilon, 0, nfa.initial());
        nfa.add_final(s1, 0);
        nfa.freeze();
        assert_eq!(min_accept_cost(&nfa, &[]), Some(0));
        assert_eq!(min_accept_cost(&nfa, &w(&["a"])), None);
    }

    #[test]
    fn wildcard_any_matches_both_directions() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), TransitionLabel::Any, 1, s1);
        nfa.add_final(s1, 0);
        nfa.freeze();
        assert_eq!(min_accept_cost(&nfa, &[Symbol::inverse("zzz")]), Some(1));
        assert_eq!(min_accept_cost(&nfa, &[Symbol::forward("zzz")]), Some(1));
    }
}
