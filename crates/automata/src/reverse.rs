//! Automaton reversal.
//!
//! A conjunct `(?X, R, C)` is evaluated as `(C, R-, ?X)` (Case 2 of the
//! paper's `Open` procedure): evaluation starts from the constant `C` and
//! follows the *reversal* of `R`, flipping the traversal direction of every
//! label. The paper performs this reversal on the NFA in linear time [Zhu &
//! Ko]; we do the same here.

use crate::nfa::{StateId, WeightedNfa};

/// Reverses `nfa`: the returned automaton accepts exactly the reversed words
/// of `nfa`'s language, with every symbol's traversal direction flipped, at
/// the same cost.
///
/// Because [`WeightedNfa`] has a single initial state but possibly several
/// final states, the reversal introduces a fresh initial state with
/// ε-transitions (weighted by the original final weights) to the original
/// final states; callers should run [`crate::remove_epsilons`] afterwards,
/// which they already do as part of conjunct initialisation.
pub fn reverse(nfa: &WeightedNfa) -> WeightedNfa {
    let mut out = WeightedNfa::new();
    // Allocate one state per original state; `mapping[i]` is the new id of
    // original state i (shifted by one because `out` pre-allocates its
    // initial state).
    let mapping: Vec<StateId> = nfa.states().map(|_| out.add_state()).collect();

    for t in nfa.transitions() {
        out.add_transition(
            mapping[t.to.index()],
            t.label.flipped(),
            t.cost,
            mapping[t.from.index()],
        );
    }
    // New initial state branches to the original finals, carrying their
    // weights.
    for (state, weight) in nfa.finals() {
        out.add_transition(
            out.initial(),
            crate::label::TransitionLabel::Epsilon,
            weight,
            mapping[state.index()],
        );
    }
    // The original initial state becomes the unique final state.
    out.add_final(mapping[nfa.initial().index()], 0);
    out.freeze();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::remove_epsilons;
    use crate::resolver::MapResolver;
    use crate::simulate::min_accept_cost;
    use crate::thompson::build_nfa;
    use omega_regex::{parse, Symbol};

    fn reversed_word(word: &[Symbol]) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = word.iter().map(Symbol::flipped).collect();
        out.reverse();
        out
    }

    #[test]
    fn reversal_accepts_reversed_words() {
        let resolver = MapResolver::new();
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![Symbol::forward("a")],
            vec![Symbol::forward("a"), Symbol::forward("b")],
            vec![Symbol::inverse("a"), Symbol::forward("b")],
            vec![Symbol::forward("b"), Symbol::forward("c")],
            vec![
                Symbol::forward("a"),
                Symbol::forward("b"),
                Symbol::forward("c"),
            ],
        ];
        for expr in ["a.b", "a-.b", "a.b|c", "a*.b", "(a.b)+", "a.(b|c)*"] {
            let nfa = build_nfa(&parse(expr).unwrap(), &resolver);
            let rev = remove_epsilons(&reverse(&nfa));
            for word in &words {
                assert_eq!(
                    min_accept_cost(&nfa, word),
                    min_accept_cost(&rev, &reversed_word(word)),
                    "reversal mismatch for {expr} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn double_reversal_preserves_language() {
        let resolver = MapResolver::new();
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![Symbol::forward("a")],
            vec![Symbol::inverse("b"), Symbol::forward("a")],
            vec![Symbol::forward("a"), Symbol::forward("a")],
        ];
        for expr in ["a", "a.b-", "a+|b", "a*"] {
            let nfa = build_nfa(&parse(expr).unwrap(), &resolver);
            let double = remove_epsilons(&reverse(&remove_epsilons(&reverse(&nfa))));
            for word in &words {
                assert_eq!(
                    min_accept_cost(&nfa, word),
                    min_accept_cost(&double, word),
                    "double reversal mismatch for {expr} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn final_weights_are_preserved_through_reversal() {
        use crate::label::TransitionLabel;
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(
            nfa.initial(),
            TransitionLabel::symbol(None, false, "a"),
            2,
            s1,
        );
        nfa.add_final(s1, 3);
        nfa.freeze();
        let rev = remove_epsilons(&reverse(&nfa));
        assert_eq!(
            min_accept_cost(&rev, &[Symbol::inverse("a")]),
            Some(5),
            "cost must be preserved (2 transition + 3 final weight)"
        );
    }
}
