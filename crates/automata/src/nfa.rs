//! The weighted NFA representation.

use std::collections::BTreeMap;
use std::fmt;

use crate::label::TransitionLabel;

/// Identifier of an automaton state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One weighted transition `(from, label, cost, to)` — the representation
/// described in Section 3.3 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Transition label.
    pub label: TransitionLabel,
    /// Non-negative cost (0 for exact transitions, the edit/relaxation cost
    /// otherwise).
    pub cost: u32,
    /// Target state.
    pub to: StateId,
}

/// A weighted NFA: states, a single initial state, weighted final states and
/// weighted labelled transitions.
///
/// Final-state weights arise from weighted ε-removal (a path of ε-transitions
/// with positive cost into a final state becomes a weight on the state
/// itself, per the Handbook of Weighted Automata construction the paper
/// cites).
#[derive(Debug, Clone)]
pub struct WeightedNfa {
    state_count: u32,
    initial: StateId,
    finals: BTreeMap<StateId, u32>,
    transitions: Vec<Transition>,
    /// Outgoing transition indices per state; rebuilt lazily by `freeze`.
    outgoing: Vec<Vec<u32>>,
    frozen: bool,
}

impl WeightedNfa {
    /// Creates an automaton with a single (initial) state and no transitions.
    pub fn new() -> Self {
        WeightedNfa {
            state_count: 1,
            initial: StateId(0),
            finals: BTreeMap::new(),
            transitions: Vec::new(),
            outgoing: vec![Vec::new()],
            frozen: true,
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.state_count);
        self.state_count += 1;
        self.outgoing.push(Vec::new());
        id
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count as usize
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_count).map(StateId)
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        debug_assert!(state.0 < self.state_count);
        self.initial = state;
    }

    /// Marks `state` final with the given weight, keeping the minimum weight
    /// if it was already final.
    pub fn add_final(&mut self, state: StateId, weight: u32) {
        debug_assert!(state.0 < self.state_count);
        self.finals
            .entry(state)
            .and_modify(|w| *w = (*w).min(weight))
            .or_insert(weight);
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains_key(&state)
    }

    /// The weight of final state `state` (the paper's `weight(s)`), or `None`
    /// if it is not final.
    pub fn final_weight(&self, state: StateId) -> Option<u32> {
        self.finals.get(&state).copied()
    }

    /// Iterates over `(state, weight)` for all final states.
    pub fn finals(&self) -> impl Iterator<Item = (StateId, u32)> + '_ {
        self.finals.iter().map(|(&s, &w)| (s, w))
    }

    /// Adds a transition. Duplicate `(from, label, to)` triples keep the
    /// minimum cost.
    pub fn add_transition(
        &mut self,
        from: StateId,
        label: TransitionLabel,
        cost: u32,
        to: StateId,
    ) {
        debug_assert!(from.0 < self.state_count && to.0 < self.state_count);
        if let Some(existing) = self
            .transitions
            .iter_mut()
            .find(|t| t.from == from && t.to == to && t.label == label)
        {
            existing.cost = existing.cost.min(cost);
            return;
        }
        self.transitions.push(Transition {
            from,
            label,
            cost,
            to,
        });
        self.frozen = false;
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the automaton contains any ε-transition.
    pub fn has_epsilon_transitions(&self) -> bool {
        self.transitions.iter().any(|t| t.label.is_epsilon())
    }

    /// Sorts each state's outgoing transitions by label so that identical
    /// labels are consecutive (the property the paper's `Succ` relies on to
    /// avoid repeated neighbour lookups), and builds the per-state index.
    ///
    /// Called automatically by [`WeightedNfa::transitions_from`] when needed.
    pub fn freeze(&mut self) {
        for out in &mut self.outgoing {
            out.clear();
        }
        let mut order: Vec<u32> = (0..self.transitions.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let (ta, tb) = (&self.transitions[a as usize], &self.transitions[b as usize]);
            ta.label
                .cmp(&tb.label)
                .then(ta.cost.cmp(&tb.cost))
                .then(ta.to.cmp(&tb.to))
        });
        for idx in order {
            let from = self.transitions[idx as usize].from;
            self.outgoing[from.index()].push(idx);
        }
        self.frozen = true;
    }

    /// The outgoing transitions of `state`, sorted by label — the paper's
    /// `NextStates(s)`.
    ///
    /// # Panics
    /// Panics if transitions were added after the last [`WeightedNfa::freeze`]
    /// call; evaluators must freeze the automaton once construction is done.
    pub fn transitions_from(&self, state: StateId) -> impl Iterator<Item = &Transition> + '_ {
        assert!(
            self.frozen,
            "WeightedNfa::freeze must be called after construction"
        );
        self.outgoing[state.index()]
            .iter()
            .map(move |&i| &self.transitions[i as usize])
    }

    /// Whether the automaton is frozen (per-state indexes up to date).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Labels on transitions leaving the initial state (used by the `Open`
    /// procedure to seed evaluation for `(?X, R, ?Y)` conjuncts).
    pub fn initial_labels(&self) -> Vec<&TransitionLabel> {
        self.transitions
            .iter()
            .filter(|t| t.from == self.initial)
            .map(|t| &t.label)
            .collect()
    }

    /// The smallest strictly positive cost among transitions and final-state
    /// weights (`None` for an exact automaton). The distance-aware
    /// optimisation uses this as its escalation step φ.
    pub fn min_positive_cost(&self) -> Option<u32> {
        self.transitions
            .iter()
            .map(|t| t.cost)
            .chain(self.finals.values().copied())
            .filter(|&c| c > 0)
            .min()
    }
}

impl Default for WeightedNfa {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for WeightedNfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "NFA: {} states, {} transitions, initial {}",
            self.state_count,
            self.transitions.len(),
            self.initial
        )?;
        for t in &self.transitions {
            writeln!(f, "  {} --{}/{}--> {}", t.from, t.label, t.cost, t.to)?;
        }
        for (s, w) in &self.finals {
            writeln!(f, "  final {s} (weight {w})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str) -> TransitionLabel {
        TransitionLabel::symbol(None, false, name)
    }

    #[test]
    fn new_automaton_has_one_state() {
        let nfa = WeightedNfa::new();
        assert_eq!(nfa.state_count(), 1);
        assert_eq!(nfa.initial(), StateId(0));
        assert!(!nfa.is_final(StateId(0)));
    }

    #[test]
    fn add_states_and_transitions() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        nfa.add_final(s1, 0);
        nfa.freeze();
        assert_eq!(nfa.transition_count(), 1);
        assert_eq!(nfa.transitions_from(nfa.initial()).count(), 1);
        assert_eq!(nfa.transitions_from(s1).count(), 0);
        assert!(nfa.is_final(s1));
        assert_eq!(nfa.final_weight(s1), Some(0));
    }

    #[test]
    fn duplicate_transitions_keep_min_cost() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 5, s1);
        nfa.add_transition(nfa.initial(), sym("a"), 2, s1);
        nfa.add_transition(nfa.initial(), sym("a"), 9, s1);
        assert_eq!(nfa.transition_count(), 1);
        assert_eq!(nfa.transitions()[0].cost, 2);
    }

    #[test]
    fn duplicate_finals_keep_min_weight() {
        let mut nfa = WeightedNfa::new();
        nfa.add_final(StateId(0), 3);
        nfa.add_final(StateId(0), 1);
        nfa.add_final(StateId(0), 7);
        assert_eq!(nfa.final_weight(StateId(0)), Some(1));
    }

    #[test]
    fn transitions_from_groups_identical_labels() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("b"), 0, s1);
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        nfa.add_transition(nfa.initial(), sym("b"), 0, s2);
        nfa.add_transition(nfa.initial(), sym("a"), 0, s2);
        nfa.freeze();
        let labels: Vec<String> = nfa
            .transitions_from(nfa.initial())
            .map(|t| t.label.to_string())
            .collect();
        assert_eq!(labels, vec!["a", "a", "b", "b"]);
    }

    #[test]
    #[should_panic(expected = "freeze")]
    fn unfrozen_access_panics() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        let _ = nfa.transitions_from(nfa.initial()).count();
    }

    #[test]
    fn min_positive_cost() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        assert_eq!(nfa.min_positive_cost(), None);
        nfa.add_transition(nfa.initial(), TransitionLabel::Any, 3, s1);
        nfa.add_transition(nfa.initial(), TransitionLabel::AnyForward, 2, s1);
        assert_eq!(nfa.min_positive_cost(), Some(2));
    }

    #[test]
    fn initial_labels() {
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        nfa.add_transition(s1, sym("b"), 0, s1);
        assert_eq!(nfa.initial_labels().len(), 1);
    }
}
