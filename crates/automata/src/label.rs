//! Transition labels of weighted NFAs.

use std::fmt;

use omega_graph::{LabelId, NodeId};
use omega_regex::Symbol;

/// The label carried by an NFA transition.
///
/// Unlike a textbook NFA over a flat alphabet, Omega's automata need a few
/// structured label forms:
///
/// * [`TransitionLabel::Symbol`] — a concrete edge label traversed forwards
///   or backwards. If the label does not occur in the data graph the
///   resolved id is `None` and the transition can never match an edge (it is
///   still kept so that APPROX edits apply to it).
/// * [`TransitionLabel::AnyForward`] — the query wildcard `_` (any label,
///   forward traversal).
/// * [`TransitionLabel::Any`] — the APPROX wildcard `*`: any label traversed
///   in either direction. The paper introduces it so that the insertion and
///   substitution edit operations do not require one transition per label in
///   `Σ ∪ {type}` and their reversals.
/// * [`TransitionLabel::TypeTo`] — a `type` edge whose target must be the
///   given class node; produced by RELAX rule (ii) (replace a property edge
///   by a `type` edge to the property's domain/range class).
/// * [`TransitionLabel::Epsilon`] — the empty transition; removed before
///   evaluation by weighted ε-elimination.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransitionLabel {
    /// ε — consumes no edge.
    Epsilon,
    /// A concrete edge label, possibly traversed in reverse.
    Symbol {
        /// Resolved edge label (None if the label does not exist in the graph).
        label: Option<LabelId>,
        /// Whether the edge is traversed target→source.
        inverse: bool,
        /// The label's name, kept for display and for re-resolution.
        name: String,
    },
    /// `_` — any edge label, forward traversal.
    AnyForward,
    /// `*` — any edge label, either traversal direction (APPROX wildcard).
    Any,
    /// A `type` edge whose target must be the given class node (RELAX rule ii).
    TypeTo {
        /// The required target class node.
        class: NodeId,
        /// The class node's name, kept for display.
        name: String,
    },
}

impl TransitionLabel {
    /// Builds a [`TransitionLabel::Symbol`].
    pub fn symbol(label: Option<LabelId>, inverse: bool, name: impl Into<String>) -> Self {
        TransitionLabel::Symbol {
            label,
            inverse,
            name: name.into(),
        }
    }

    /// Whether this is the ε label.
    pub fn is_epsilon(&self) -> bool {
        matches!(self, TransitionLabel::Epsilon)
    }

    /// Whether the transition consumes a graph edge (everything except ε).
    pub fn consumes_edge(&self) -> bool {
        !self.is_epsilon()
    }

    /// The same label with the traversal direction flipped (used by
    /// automaton reversal and by the inversion edit operation).
    pub fn flipped(&self) -> TransitionLabel {
        match self {
            TransitionLabel::Symbol {
                label,
                inverse,
                name,
            } => TransitionLabel::Symbol {
                label: *label,
                inverse: !inverse,
                name: name.clone(),
            },
            // `Any` is direction-symmetric; `_` flips to "any label backwards",
            // which we conservatively widen to `Any`.
            TransitionLabel::AnyForward => TransitionLabel::Any,
            other => other.clone(),
        }
    }

    /// Whether this label can match the word symbol `sym` (a label name plus
    /// direction). This is the *word-level* matching used by tests and the
    /// simulation oracle; graph-level matching (which also needs subproperty
    /// inference and class targets) lives in the evaluator.
    pub fn matches_symbol(&self, sym: &Symbol) -> bool {
        match self {
            TransitionLabel::Epsilon => false,
            TransitionLabel::Symbol { inverse, name, .. } => {
                *name == sym.label && *inverse == sym.inverse
            }
            TransitionLabel::AnyForward => !sym.inverse,
            TransitionLabel::Any => true,
            TransitionLabel::TypeTo { .. } => sym.label == "type" && !sym.inverse,
        }
    }
}

impl fmt::Display for TransitionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionLabel::Epsilon => write!(f, "ε"),
            TransitionLabel::Symbol { name, inverse, .. } => {
                write!(f, "{name}{}", if *inverse { "-" } else { "" })
            }
            TransitionLabel::AnyForward => write!(f, "_"),
            TransitionLabel::Any => write!(f, "*"),
            TransitionLabel::TypeTo { name, .. } => write!(f, "type→{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_matching_respects_direction() {
        let fwd = TransitionLabel::symbol(Some(LabelId(0)), false, "knows");
        let back = fwd.flipped();
        assert!(fwd.matches_symbol(&Symbol::forward("knows")));
        assert!(!fwd.matches_symbol(&Symbol::inverse("knows")));
        assert!(back.matches_symbol(&Symbol::inverse("knows")));
        assert!(!fwd.matches_symbol(&Symbol::forward("likes")));
    }

    #[test]
    fn wildcards() {
        assert!(TransitionLabel::Any.matches_symbol(&Symbol::inverse("x")));
        assert!(TransitionLabel::AnyForward.matches_symbol(&Symbol::forward("x")));
        assert!(!TransitionLabel::AnyForward.matches_symbol(&Symbol::inverse("x")));
        assert_eq!(TransitionLabel::AnyForward.flipped(), TransitionLabel::Any);
    }

    #[test]
    fn epsilon_consumes_nothing() {
        assert!(TransitionLabel::Epsilon.is_epsilon());
        assert!(!TransitionLabel::Epsilon.consumes_edge());
        assert!(!TransitionLabel::Epsilon.matches_symbol(&Symbol::forward("a")));
    }

    #[test]
    fn type_to_matches_type_symbol_at_word_level() {
        let t = TransitionLabel::TypeTo {
            class: NodeId(3),
            name: "Person".into(),
        };
        assert!(t.matches_symbol(&Symbol::forward("type")));
        assert!(!t.matches_symbol(&Symbol::forward("knows")));
        assert_eq!(t.flipped(), t);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TransitionLabel::Epsilon.to_string(), "ε");
        assert_eq!(
            TransitionLabel::symbol(None, true, "knows").to_string(),
            "knows-"
        );
        assert_eq!(TransitionLabel::Any.to_string(), "*");
    }
}
