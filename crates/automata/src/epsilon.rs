//! Weighted ε-removal.
//!
//! After APPROX augmentation the automaton contains weighted ε-transitions
//! (the deletion edit consumes no graph edge but costs `deletion`), and the
//! Thompson construction contributes zero-cost ε-transitions. The evaluator
//! requires an ε-free automaton; removal follows the weighted-automata
//! construction the paper cites (Droste, Kuich & Vogler, *Handbook of
//! Weighted Automata*): every state gains direct copies of the transitions
//! reachable through its ε-closure (with the closure cost added), and a
//! state whose ε-closure reaches a final state becomes final itself with the
//! closure cost added to the final weight — this is how final states end up
//! carrying a positive `weight(s)`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::nfa::{StateId, WeightedNfa};

/// Returns an equivalent automaton without ε-transitions.
///
/// Equivalence is in the weighted sense: every word keeps the same minimum
/// acceptance cost (see `crate::simulate::min_accept_cost`).
pub fn remove_epsilons(nfa: &WeightedNfa) -> WeightedNfa {
    let mut out = WeightedNfa::new();
    // Mirror the state set (state ids are preserved).
    for _ in 1..nfa.state_count() {
        out.add_state();
    }
    out.set_initial(nfa.initial());

    for state in nfa.states() {
        let closure = epsilon_closure(nfa, state);
        // Final weight: the cheapest way to reach a final state via ε.
        let mut final_weight: Option<u32> = None;
        for (&target, &cost) in &closure {
            if let Some(w) = nfa.final_weight(target) {
                let total = cost + w;
                final_weight = Some(final_weight.map_or(total, |fw| fw.min(total)));
            }
        }
        if let Some(w) = final_weight {
            out.add_final(state, w);
        }
        // Copy non-ε transitions reachable through the closure.
        for (&via, &closure_cost) in &closure {
            for t in nfa.transitions().iter().filter(|t| t.from == via) {
                if t.label.is_epsilon() {
                    continue;
                }
                out.add_transition(state, t.label.clone(), closure_cost + t.cost, t.to);
            }
        }
    }
    out.freeze();
    prune_unreachable(&out)
}

/// Minimum ε-cost from `state` to every state reachable by ε-transitions
/// (including `state` itself at cost 0).
fn epsilon_closure(nfa: &WeightedNfa, state: StateId) -> HashMap<StateId, u32> {
    let mut dist: HashMap<StateId, u32> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    dist.insert(state, 0);
    heap.push(Reverse((0, state.0)));
    while let Some(Reverse((cost, raw))) = heap.pop() {
        let current = StateId(raw);
        if dist.get(&current).copied().unwrap_or(u32::MAX) < cost {
            continue;
        }
        for t in nfa
            .transitions()
            .iter()
            .filter(|t| t.from == current && t.label.is_epsilon())
        {
            let next = cost + t.cost;
            if next < dist.get(&t.to).copied().unwrap_or(u32::MAX) {
                dist.insert(t.to, next);
                heap.push(Reverse((next, t.to.0)));
            }
        }
    }
    dist
}

/// Drops states unreachable from the initial state, compacting ids.
/// ε-removal leaves the interior states of Thompson fragments dangling;
/// pruning keeps the automata the evaluator sees small.
fn prune_unreachable(nfa: &WeightedNfa) -> WeightedNfa {
    let mut reachable = vec![false; nfa.state_count()];
    let mut stack = vec![nfa.initial()];
    reachable[nfa.initial().index()] = true;
    while let Some(s) = stack.pop() {
        for t in nfa.transitions().iter().filter(|t| t.from == s) {
            if !reachable[t.to.index()] {
                reachable[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    let mut mapping: HashMap<StateId, StateId> = HashMap::new();
    let mut out = WeightedNfa::new();
    // The initial state of `out` exists already; map it first.
    mapping.insert(nfa.initial(), out.initial());
    for state in nfa.states() {
        if reachable[state.index()] && state != nfa.initial() {
            mapping.insert(state, out.add_state());
        }
    }
    for (state, weight) in nfa.finals() {
        if let Some(&mapped) = mapping.get(&state) {
            out.add_final(mapped, weight);
        }
    }
    for t in nfa.transitions() {
        if let (Some(&from), Some(&to)) = (mapping.get(&t.from), mapping.get(&t.to)) {
            out.add_transition(from, t.label.clone(), t.cost, to);
        }
    }
    out.freeze();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TransitionLabel;
    use crate::resolver::MapResolver;
    use crate::simulate::min_accept_cost;
    use crate::thompson::build_nfa;
    use omega_regex::{parse, Symbol};

    fn sym(name: &str) -> TransitionLabel {
        TransitionLabel::symbol(None, false, name)
    }

    fn w(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|&n| Symbol::forward(n)).collect()
    }

    #[test]
    fn removes_all_epsilons() {
        let resolver = MapResolver::new();
        for expr in ["a*", "a.b|c", "(a|b)*.c", "a+.b*", "()"] {
            let nfa = build_nfa(&parse(expr).unwrap(), &resolver);
            let cleaned = remove_epsilons(&nfa);
            assert!(!cleaned.has_epsilon_transitions(), "{expr} kept ε");
        }
    }

    #[test]
    fn preserves_language_of_regex_nfas() {
        let resolver = MapResolver::new();
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            w(&["a"]),
            w(&["b"]),
            w(&["c"]),
            w(&["a", "b"]),
            w(&["a", "a", "b"]),
            w(&["a", "b", "c"]),
            w(&["c", "c"]),
        ];
        for expr in ["a*", "a.b|c", "(a|b)*.c", "a+.b*", "()", "a.b.c", "(a.b)+"] {
            let nfa = build_nfa(&parse(expr).unwrap(), &resolver);
            let cleaned = remove_epsilons(&nfa);
            for word in &words {
                assert_eq!(
                    min_accept_cost(&nfa, word),
                    min_accept_cost(&cleaned, word),
                    "language changed for {expr} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn weighted_epsilon_becomes_final_weight() {
        // s0 --a/0--> s1 --ε/2--> s2(final,0): after removal s1 must be final
        // with weight 2.
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_transition(nfa.initial(), sym("a"), 0, s1);
        nfa.add_transition(s1, TransitionLabel::Epsilon, 2, s2);
        nfa.add_final(s2, 0);
        nfa.freeze();
        let cleaned = remove_epsilons(&nfa);
        assert!(!cleaned.has_epsilon_transitions());
        assert_eq!(min_accept_cost(&cleaned, &w(&["a"])), Some(2));
        // some state carries the positive weight
        assert!(cleaned.finals().any(|(_, w)| w == 2));
    }

    #[test]
    fn weighted_epsilon_chains_accumulate() {
        // ε/1 . a/0 . ε/3 accepted word "a" must cost 4 before and after.
        let mut nfa = WeightedNfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        let s3 = nfa.add_state();
        nfa.add_transition(nfa.initial(), TransitionLabel::Epsilon, 1, s1);
        nfa.add_transition(s1, sym("a"), 0, s2);
        nfa.add_transition(s2, TransitionLabel::Epsilon, 3, s3);
        nfa.add_final(s3, 0);
        nfa.freeze();
        let cleaned = remove_epsilons(&nfa);
        assert_eq!(min_accept_cost(&nfa, &w(&["a"])), Some(4));
        assert_eq!(min_accept_cost(&cleaned, &w(&["a"])), Some(4));
    }

    #[test]
    fn prunes_unreachable_states() {
        let resolver = MapResolver::new();
        let nfa = build_nfa(&parse("(a|b).c*").unwrap(), &resolver);
        let cleaned = remove_epsilons(&nfa);
        // Every state of the cleaned automaton must be reachable from the
        // initial state.
        let mut reachable = vec![false; cleaned.state_count()];
        reachable[cleaned.initial().index()] = true;
        let mut stack = vec![cleaned.initial()];
        while let Some(s) = stack.pop() {
            for t in cleaned.transitions().iter().filter(|t| t.from == s) {
                if !reachable[t.to.index()] {
                    reachable[t.to.index()] = true;
                    stack.push(t.to);
                }
            }
        }
        assert!(reachable.iter().all(|&r| r));
        assert!(cleaned.state_count() <= nfa.state_count());
    }
}
