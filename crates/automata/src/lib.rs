//! # omega-automata
//!
//! Weighted non-deterministic finite automata (NFAs) over edge-label
//! alphabets, as used by the Omega query processor (Section 3.3 of the
//! paper):
//!
//! * [`thompson::build_nfa`] constructs the weighted NFA `M_R` for a regular
//!   expression `R` (all weights 0, ε-transitions present),
//! * [`approx::approximate`] augments `M_R` into `A_R` with edit-operation
//!   transitions (insertion/deletion/substitution, optionally inversion),
//!   representing insertions/substitutions compactly with the wildcard `*`
//!   label,
//! * [`relax::relax`] augments `M_R` into `M_R^K` with ontology-driven
//!   relaxation transitions (superproperty steps at cost β, property →
//!   `type`-edge-to-domain/range at cost γ),
//! * [`epsilon::remove_epsilons`] performs weighted ε-removal, which may
//!   leave final states carrying a positive weight,
//! * [`reverse::reverse`] reverses an automaton (used to turn a conjunct
//!   `(?X, R, C)` into `(C, R-, ?X)`),
//! * [`decompose::decompose_alternation`] splits a top-level alternation
//!   into sub-automata for the "replacing alternation by disjunction"
//!   optimisation of Section 4.3.
//!
//! The automaton states and transitions are deliberately simple `Vec`-backed
//! structures: query automata have tens of states, and the evaluator's hot
//! path only ever asks for the (label-sorted) outgoing transitions of a
//! state ([`WeightedNfa::transitions_from`], the paper's `NextStates`).

pub mod approx;
pub mod bounds;
pub mod decompose;
pub mod epsilon;
pub mod error;
pub mod label;
pub mod nfa;
pub mod relax;
pub mod resolver;
pub mod reverse;
pub mod simulate;
pub mod thompson;

pub use approx::{approximate, ApproxConfig};
pub use bounds::MinCostToAccept;
pub use decompose::decompose_alternation;
pub use epsilon::remove_epsilons;
pub use error::AutomatonError;
pub use label::TransitionLabel;
pub use nfa::{StateId, Transition, WeightedNfa};
pub use relax::{relax, RelaxConfig};
pub use resolver::{LabelResolver, MapResolver};
pub use reverse::reverse;
pub use thompson::build_nfa;
