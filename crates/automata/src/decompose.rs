//! Replacing alternation by disjunction (Section 4.3 of the paper).
//!
//! When a query's regular expression is a top-level alternation
//! `R = R1 | R2 | …`, its NFA can be decomposed into one sub-automaton per
//! branch. The evaluator then schedules the sub-automata adaptively: the
//! branch that returned the fewest answers at distance *k·φ* is evaluated
//! first for distance *(k+1)·φ*, which in the paper reduces YAGO query 9 from
//! 101 ms to 12.65 ms.
//!
//! This module only performs the syntactic decomposition; the adaptive
//! scheduling lives in the evaluator (`omega-core`).

use omega_regex::RpqRegex;

/// Splits a top-level alternation into its branches.
///
/// Returns `None` when `regex` is not an alternation (fewer than two
/// branches), in which case the optimisation does not apply.
pub fn decompose_alternation(regex: &RpqRegex) -> Option<Vec<RpqRegex>> {
    let branches = regex.top_level_branches();
    if branches.len() < 2 {
        return None;
    }
    Some(branches.into_iter().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_regex::parse;

    #[test]
    fn splits_top_level_alternation() {
        let r = parse("(livesIn-.hasCurrency)|(locatedIn-.gradFrom)").unwrap();
        let parts = decompose_alternation(&r).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].to_string(), "livesIn-.hasCurrency");
        assert_eq!(parts[1].to_string(), "locatedIn-.gradFrom");
    }

    #[test]
    fn splits_multi_way_alternation() {
        let r = parse("a|b.c|d*").unwrap();
        let parts = decompose_alternation(&r).unwrap();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn non_alternations_are_not_decomposed() {
        assert!(decompose_alternation(&parse("a.b").unwrap()).is_none());
        assert!(decompose_alternation(&parse("(a|b).c").unwrap()).is_none());
        assert!(decompose_alternation(&parse("(a|b)*").unwrap()).is_none());
    }

    #[test]
    fn union_of_branch_languages_equals_original() {
        use crate::resolver::MapResolver;
        use crate::simulate::accepts;
        use crate::thompson::build_nfa;
        use omega_regex::Symbol;

        let resolver = MapResolver::new();
        let r = parse("a.b|c|d.e*").unwrap();
        let parts = decompose_alternation(&r).unwrap();
        let whole = build_nfa(&r, &resolver);
        let part_nfas: Vec<_> = parts.iter().map(|p| build_nfa(p, &resolver)).collect();
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![Symbol::forward("a"), Symbol::forward("b")],
            vec![Symbol::forward("c")],
            vec![Symbol::forward("d")],
            vec![
                Symbol::forward("d"),
                Symbol::forward("e"),
                Symbol::forward("e"),
            ],
            vec![Symbol::forward("a")],
        ];
        for w in &words {
            let whole_accepts = accepts(&whole, w);
            let any_part = part_nfas.iter().any(|n| accepts(n, w));
            assert_eq!(whole_accepts, any_part, "mismatch on {w:?}");
        }
    }
}
