//! Errors for automaton construction.

use std::fmt;

/// Errors raised during automaton construction or transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomatonError {
    /// The automaton has no initial state / is structurally invalid.
    Invalid(String),
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::Invalid(msg) => write!(f, "invalid automaton: {msg}"),
        }
    }
}

impl std::error::Error for AutomatonError {}
