//! Resolution of label names and class-node names to graph identifiers.
//!
//! Automaton construction happens at query-compilation time and needs to map
//! the label strings appearing in a regular expression to the data graph's
//! interned [`LabelId`]s (and, for RELAX, class names to [`NodeId`]s).
//! Labels that do not occur in the graph resolve to `None`; the resulting
//! transitions can never match an edge but are still subject to APPROX edit
//! operations, exactly as in the paper (a mistyped label can be *substituted*
//! into a matching one).

use std::collections::HashMap;

use omega_graph::{GraphStore, LabelId, NodeId};

/// Maps label/class names to graph identifiers.
pub trait LabelResolver {
    /// Resolves an edge-label name.
    fn resolve_label(&self, name: &str) -> Option<LabelId>;
    /// Resolves a node (typically a class node) by its unique label.
    fn resolve_node(&self, name: &str) -> Option<NodeId>;
    /// The id of the distinguished `type` label, if the graph has one.
    fn type_label(&self) -> Option<LabelId>;
    /// The display name of a node, used when annotating RELAX transitions.
    fn node_name(&self, node: NodeId) -> String;
    /// The display name of an edge label, used when annotating RELAX
    /// transitions with superproperty labels.
    fn label_name(&self, label: LabelId) -> String;
}

impl LabelResolver for GraphStore {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.label_id(name)
    }

    fn resolve_node(&self, name: &str) -> Option<NodeId> {
        self.node_by_label(name)
    }

    fn type_label(&self) -> Option<LabelId> {
        Some(GraphStore::type_label(self))
    }

    fn node_name(&self, node: NodeId) -> String {
        self.node_label(node).to_owned()
    }

    fn label_name(&self, label: LabelId) -> String {
        GraphStore::label_name(self, label).to_owned()
    }
}

/// A map-backed resolver for unit tests that do not want to build a graph.
#[derive(Debug, Default, Clone)]
pub struct MapResolver {
    labels: HashMap<String, LabelId>,
    nodes: HashMap<String, NodeId>,
}

impl MapResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or reuses) a label mapping and returns its id.
    pub fn add_label(&mut self, name: &str) -> LabelId {
        let next = LabelId(self.labels.len() as u32);
        *self.labels.entry(name.to_owned()).or_insert(next)
    }

    /// Adds (or reuses) a node mapping and returns its id.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let next = NodeId(self.nodes.len() as u32);
        *self.nodes.entry(name.to_owned()).or_insert(next)
    }
}

impl LabelResolver for MapResolver {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name).copied()
    }

    fn resolve_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name).copied()
    }

    fn type_label(&self) -> Option<LabelId> {
        self.labels.get("type").copied()
    }

    fn node_name(&self, node: NodeId) -> String {
        self.nodes
            .iter()
            .find(|(_, &id)| id == node)
            .map(|(name, _)| name.clone())
            .unwrap_or_else(|| format!("{node}"))
    }

    fn label_name(&self, label: LabelId) -> String {
        self.labels
            .iter()
            .find(|(_, &id)| id == label)
            .map(|(name, _)| name.clone())
            .unwrap_or_else(|| format!("{label:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_store_resolver() {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        assert_eq!(g.resolve_label("knows"), g.label_id("knows"));
        assert_eq!(g.resolve_label("missing"), None);
        assert_eq!(g.resolve_node("a"), g.node_by_label("a"));
        assert_eq!(
            LabelResolver::type_label(&g),
            Some(GraphStore::type_label(&g))
        );
        assert_eq!(g.node_name(g.node_by_label("b").unwrap()), "b");
    }

    #[test]
    fn map_resolver_is_stable() {
        let mut r = MapResolver::new();
        let a = r.add_label("a");
        let a2 = r.add_label("a");
        assert_eq!(a, a2);
        let n = r.add_node("Person");
        assert_eq!(r.resolve_node("Person"), Some(n));
        assert_eq!(r.resolve_label("b"), None);
        assert_eq!(r.node_name(n), "Person");
    }
}
