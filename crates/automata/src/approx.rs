//! APPROX: edit-distance augmentation of a query automaton.
//!
//! Following [Hurtado, Poulovassilis & Wood, ESWC 2009] and Section 3.3 of
//! the paper, the automaton `A_R` is obtained from `M_R` by adding, for a
//! user-configurable cost each:
//!
//! * **insertion** — an extra edge may be traversed at any point without
//!   consuming a query symbol: a wildcard `*` self-loop on every state,
//! * **deletion** — a query symbol may be skipped: an ε-transition parallel
//!   to every symbol transition (the ε is later removed by weighted
//!   ε-elimination, possibly surfacing as a final-state weight),
//! * **substitution** — a query symbol may be matched by any edge label in
//!   either direction: a wildcard `*` transition parallel to every symbol
//!   transition,
//! * **inversion** (optional) — a query symbol may be matched by the same
//!   label traversed in the opposite direction.
//!
//! The paper represents the "one transition per label in `Σ ∪ {type}` and
//! their reversals" explosion compactly with the single wildcard label `*`;
//! [`crate::TransitionLabel::Any`] is that wildcard.

use crate::label::TransitionLabel;
use crate::nfa::WeightedNfa;

/// Costs of the edit operations applied by APPROX.
///
/// The paper's experiments use cost 1 for insertion, deletion and
/// substitution and do not enable inversion as a separate operation
/// (substitution by `*` already covers flipping a label's direction at the
/// same cost); [`ApproxConfig::default`] mirrors that setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxConfig {
    /// Cost of traversing an extra, unmatched edge.
    pub insertion: u32,
    /// Cost of skipping a query symbol.
    pub deletion: u32,
    /// Cost of matching a query symbol with an arbitrary edge label.
    pub substitution: u32,
    /// Optional cheaper cost for matching a query symbol with the *same*
    /// label traversed in the opposite direction.
    pub inversion: Option<u32>,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            insertion: 1,
            deletion: 1,
            substitution: 1,
            inversion: None,
        }
    }
}

impl ApproxConfig {
    /// Uniform cost `c` for insertion, deletion and substitution.
    pub fn uniform(c: u32) -> Self {
        ApproxConfig {
            insertion: c,
            deletion: c,
            substitution: c,
            inversion: None,
        }
    }

    /// The smallest cost of any enabled edit operation — the paper's φ, the
    /// step by which the distance-aware optimisation escalates its cost
    /// bound ψ.
    pub fn min_cost(&self) -> u32 {
        let mut m = self.insertion.min(self.deletion).min(self.substitution);
        if let Some(inv) = self.inversion {
            m = m.min(inv);
        }
        m
    }
}

/// Builds the APPROX automaton `A_R` from `M_R`.
///
/// The input may contain ε-transitions (it usually comes straight from the
/// Thompson construction); the output generally does too, so callers run
/// [`crate::remove_epsilons`] afterwards.
pub fn approximate(nfa: &WeightedNfa, config: &ApproxConfig) -> WeightedNfa {
    let mut out = nfa.clone();

    // Deletion, substitution and inversion apply to every edge-consuming
    // transition of the original automaton.
    let originals: Vec<_> = nfa
        .transitions()
        .iter()
        .filter(|t| t.label.consumes_edge())
        .cloned()
        .collect();
    for t in &originals {
        out.add_transition(
            t.from,
            TransitionLabel::Epsilon,
            t.cost + config.deletion,
            t.to,
        );
        out.add_transition(
            t.from,
            TransitionLabel::Any,
            t.cost + config.substitution,
            t.to,
        );
        if let Some(inversion) = config.inversion {
            out.add_transition(t.from, t.label.flipped(), t.cost + inversion, t.to);
        }
    }
    // Insertion: a wildcard self-loop on every state.
    for state in nfa.states() {
        out.add_transition(state, TransitionLabel::Any, config.insertion, state);
    }
    out.freeze();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::remove_epsilons;
    use crate::resolver::MapResolver;
    use crate::simulate::min_accept_cost;
    use crate::thompson::build_nfa;
    use omega_regex::{parse, Symbol};

    fn approx_nfa(expr: &str, config: &ApproxConfig) -> WeightedNfa {
        let resolver = MapResolver::new();
        let nfa = build_nfa(&parse(expr).unwrap(), &resolver);
        remove_epsilons(&approximate(&nfa, config))
    }

    fn w(specs: &[(&str, bool)]) -> Vec<Symbol> {
        specs
            .iter()
            .map(|&(l, inv)| Symbol {
                label: l.to_owned(),
                inverse: inv,
            })
            .collect()
    }

    #[test]
    fn exact_words_stay_at_cost_zero() {
        let a = approx_nfa("a.b", &ApproxConfig::default());
        assert_eq!(
            min_accept_cost(&a, &w(&[("a", false), ("b", false)])),
            Some(0)
        );
    }

    #[test]
    fn substitution_costs_one() {
        let a = approx_nfa("a.b", &ApproxConfig::default());
        // 'z' substituted for 'a'
        assert_eq!(
            min_accept_cost(&a, &w(&[("z", false), ("b", false)])),
            Some(1)
        );
        // the paper's running example: gradFrom substituted by gradFrom-
        let q = approx_nfa("isLocatedIn-.gradFrom", &ApproxConfig::default());
        assert_eq!(
            min_accept_cost(&q, &w(&[("isLocatedIn", true), ("gradFrom", true)])),
            Some(1)
        );
    }

    #[test]
    fn deletion_costs_one() {
        let a = approx_nfa("a.b", &ApproxConfig::default());
        assert_eq!(min_accept_cost(&a, &w(&[("a", false)])), Some(1));
        assert_eq!(min_accept_cost(&a, &[]), Some(2));
    }

    #[test]
    fn insertion_costs_one() {
        let a = approx_nfa("a.b", &ApproxConfig::default());
        assert_eq!(
            min_accept_cost(&a, &w(&[("a", false), ("x", false), ("b", false)])),
            Some(1)
        );
        assert_eq!(
            min_accept_cost(&a, &w(&[("x", true), ("a", false), ("b", false)])),
            Some(1)
        );
    }

    #[test]
    fn edit_distance_accumulates() {
        let a = approx_nfa("a.b.c", &ApproxConfig::default());
        // delete 'a', substitute 'c' -> distance 2
        assert_eq!(
            min_accept_cost(&a, &w(&[("b", false), ("z", false)])),
            Some(2)
        );
        // completely unrelated word of same length -> one substitution each
        assert_eq!(
            min_accept_cost(&a, &w(&[("x", false), ("y", false), ("z", false)])),
            Some(3)
        );
    }

    #[test]
    fn custom_costs_are_respected() {
        let config = ApproxConfig {
            insertion: 5,
            deletion: 2,
            substitution: 3,
            inversion: None,
        };
        let a = approx_nfa("a.b", &config);
        assert_eq!(min_accept_cost(&a, &w(&[("a", false)])), Some(2)); // deletion
        assert_eq!(
            min_accept_cost(&a, &w(&[("z", false), ("b", false)])),
            Some(3)
        ); // subst
        assert_eq!(
            min_accept_cost(&a, &w(&[("a", false), ("q", false), ("b", false)])),
            Some(5)
        ); // insertion
        assert_eq!(config.min_cost(), 2);
    }

    #[test]
    fn inversion_can_be_cheaper_than_substitution() {
        let config = ApproxConfig {
            insertion: 10,
            deletion: 10,
            substitution: 10,
            inversion: Some(1),
        };
        let a = approx_nfa("a", &config);
        assert_eq!(min_accept_cost(&a, &w(&[("a", true)])), Some(1));
        // a different label still needs a full substitution
        assert_eq!(min_accept_cost(&a, &w(&[("b", false)])), Some(10));
    }

    #[test]
    fn never_rejects_entirely() {
        // With all three edit operations any word is accepted at *some* cost.
        let a = approx_nfa("a.b", &ApproxConfig::default());
        for word in [
            w(&[]),
            w(&[("q", false)]),
            w(&[("q", true), ("r", false), ("s", true), ("t", false)]),
        ] {
            assert!(min_accept_cost(&a, &word).is_some());
        }
    }

    #[test]
    fn approximation_never_increases_cost_of_any_word() {
        let resolver = MapResolver::new();
        let exprs = ["a.b", "a*|b.c", "a-.b+"];
        let words = [
            w(&[]),
            w(&[("a", false)]),
            w(&[("a", false), ("b", false)]),
            w(&[("b", false), ("c", false)]),
            w(&[("a", true), ("b", false)]),
        ];
        for expr in exprs {
            let exact = remove_epsilons(&build_nfa(&parse(expr).unwrap(), &resolver));
            let approx = approx_nfa(expr, &ApproxConfig::default());
            for word in &words {
                let exact_cost = min_accept_cost(&exact, word);
                let approx_cost = min_accept_cost(&approx, word);
                assert!(approx_cost.is_some());
                if let Some(e) = exact_cost {
                    assert!(approx_cost.unwrap() <= e);
                }
            }
        }
    }
}
