//! Thompson-style construction of the weighted NFA `M_R` for a regular
//! expression `R`. All transitions produced here have cost 0; positive costs
//! only appear after APPROX/RELAX augmentation or weighted ε-removal.

use omega_regex::RpqRegex;

use crate::label::TransitionLabel;
use crate::nfa::{StateId, WeightedNfa};
use crate::resolver::LabelResolver;

/// Builds the NFA `M_R` recognising the language of `regex`.
///
/// The returned automaton has a single initial state, a single final state of
/// weight 0, and may contain ε-transitions; callers typically follow up with
/// [`crate::approximate`]/[`crate::relax()`] and then
/// [`crate::remove_epsilons`].
pub fn build_nfa<R: LabelResolver>(regex: &RpqRegex, resolver: &R) -> WeightedNfa {
    let mut nfa = WeightedNfa::new();
    let start = nfa.initial();
    let end = build_fragment(regex, resolver, &mut nfa, start);
    nfa.add_final(end, 0);
    nfa.freeze();
    nfa
}

/// Recursively builds the fragment for `regex` starting at `start`, returning
/// the fragment's accepting state.
fn build_fragment<R: LabelResolver>(
    regex: &RpqRegex,
    resolver: &R,
    nfa: &mut WeightedNfa,
    start: StateId,
) -> StateId {
    match regex {
        RpqRegex::Epsilon => {
            let end = nfa.add_state();
            nfa.add_transition(start, TransitionLabel::Epsilon, 0, end);
            end
        }
        RpqRegex::Label(sym) => {
            let end = nfa.add_state();
            let label = TransitionLabel::Symbol {
                label: resolver.resolve_label(&sym.label),
                inverse: sym.inverse,
                name: sym.label.clone(),
            };
            nfa.add_transition(start, label, 0, end);
            end
        }
        RpqRegex::Wildcard => {
            let end = nfa.add_state();
            nfa.add_transition(start, TransitionLabel::AnyForward, 0, end);
            end
        }
        RpqRegex::Concat(a, b) => {
            let mid = build_fragment(a, resolver, nfa, start);
            build_fragment(b, resolver, nfa, mid)
        }
        RpqRegex::Alt(a, b) => {
            // Branch entry states so the two branches cannot interfere.
            let start_a = nfa.add_state();
            let start_b = nfa.add_state();
            nfa.add_transition(start, TransitionLabel::Epsilon, 0, start_a);
            nfa.add_transition(start, TransitionLabel::Epsilon, 0, start_b);
            let end_a = build_fragment(a, resolver, nfa, start_a);
            let end_b = build_fragment(b, resolver, nfa, start_b);
            let end = nfa.add_state();
            nfa.add_transition(end_a, TransitionLabel::Epsilon, 0, end);
            nfa.add_transition(end_b, TransitionLabel::Epsilon, 0, end);
            end
        }
        RpqRegex::Star(a) => {
            let loop_entry = nfa.add_state();
            let end = nfa.add_state();
            nfa.add_transition(start, TransitionLabel::Epsilon, 0, loop_entry);
            nfa.add_transition(start, TransitionLabel::Epsilon, 0, end);
            let loop_exit = build_fragment(a, resolver, nfa, loop_entry);
            nfa.add_transition(loop_exit, TransitionLabel::Epsilon, 0, loop_entry);
            nfa.add_transition(loop_exit, TransitionLabel::Epsilon, 0, end);
            end
        }
        RpqRegex::Plus(a) => {
            let loop_entry = nfa.add_state();
            let end = nfa.add_state();
            nfa.add_transition(start, TransitionLabel::Epsilon, 0, loop_entry);
            let loop_exit = build_fragment(a, resolver, nfa, loop_entry);
            nfa.add_transition(loop_exit, TransitionLabel::Epsilon, 0, loop_entry);
            nfa.add_transition(loop_exit, TransitionLabel::Epsilon, 0, end);
            end
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::MapResolver;
    use crate::simulate::accepts;
    use omega_regex::{parse, Symbol};

    fn word(specs: &[(&str, bool)]) -> Vec<Symbol> {
        specs
            .iter()
            .map(|&(l, inv)| Symbol {
                label: l.to_owned(),
                inverse: inv,
            })
            .collect()
    }

    fn nfa_for(expr: &str) -> WeightedNfa {
        let mut resolver = MapResolver::new();
        for label in parse(expr).unwrap().alphabet() {
            resolver.add_label(&label);
        }
        build_nfa(&parse(expr).unwrap(), &resolver)
    }

    #[test]
    fn single_label() {
        let nfa = nfa_for("a");
        assert!(accepts(&nfa, &word(&[("a", false)])));
        assert!(!accepts(&nfa, &word(&[("a", true)])));
        assert!(!accepts(&nfa, &[]));
    }

    #[test]
    fn concatenation_and_alternation() {
        let nfa = nfa_for("a.b|c");
        assert!(accepts(&nfa, &word(&[("a", false), ("b", false)])));
        assert!(accepts(&nfa, &word(&[("c", false)])));
        assert!(!accepts(&nfa, &word(&[("a", false), ("c", false)])));
    }

    #[test]
    fn star_plus_and_epsilon() {
        let star = nfa_for("a*");
        assert!(accepts(&star, &[]));
        assert!(accepts(&star, &word(&[("a", false), ("a", false)])));
        let plus = nfa_for("a+");
        assert!(!accepts(&plus, &[]));
        assert!(accepts(&plus, &word(&[("a", false)])));
        let eps = nfa_for("()");
        assert!(accepts(&eps, &[]));
        assert!(!accepts(&eps, &word(&[("a", false)])));
    }

    #[test]
    fn inverse_labels_and_wildcard() {
        let nfa = nfa_for("isLocatedIn-.gradFrom");
        assert!(accepts(
            &nfa,
            &word(&[("isLocatedIn", true), ("gradFrom", false)])
        ));
        assert!(!accepts(
            &nfa,
            &word(&[("isLocatedIn", false), ("gradFrom", false)])
        ));
        let wild = nfa_for("_.b");
        assert!(accepts(&wild, &word(&[("zzz", false), ("b", false)])));
        assert!(!accepts(&wild, &word(&[("zzz", true), ("b", false)])));
    }

    #[test]
    fn unresolved_labels_still_build() {
        let resolver = MapResolver::new();
        let nfa = build_nfa(&parse("ghost").unwrap(), &resolver);
        // Word-level simulation matches by name, so the language is intact…
        assert!(accepts(&nfa, &word(&[("ghost", false)])));
        // …but the transition carries no resolved LabelId.
        let has_unresolved = nfa.transitions().iter().any(|t| {
            matches!(
                &t.label,
                TransitionLabel::Symbol { label: None, name, .. } if name == "ghost"
            )
        });
        assert!(has_unresolved);
    }

    /// NFA acceptance agrees with the naive regex oracle on the paper's
    /// query expressions over a small set of words.
    #[test]
    fn agrees_with_oracle_on_paper_queries() {
        let exprs = [
            "type-",
            "type-.qualif-",
            "type-.job-",
            "job.type",
            "next+",
            "prereq+",
            "next+|(prereq+.next)",
            "type.prereq+",
            "prereq*.next+.prereq",
            "type-.job-.next",
            "level-.qualif-.prereq",
            "bornIn-.marriedTo.hasChild",
            "hasChild.gradFrom.gradFrom-.hasWonPrize",
            "(livesIn-.hasCurrency)|(locatedIn-.gradFrom)",
        ];
        let labels = [
            "type",
            "qualif",
            "job",
            "next",
            "prereq",
            "level",
            "bornIn",
            "marriedTo",
            "hasChild",
            "gradFrom",
            "hasWonPrize",
            "livesIn",
            "hasCurrency",
            "locatedIn",
        ];
        let mut resolver = MapResolver::new();
        for l in labels {
            resolver.add_label(l);
        }
        // A deterministic bag of short words over the label set.
        let mut words: Vec<Vec<Symbol>> = vec![vec![]];
        for (i, &a) in labels.iter().enumerate() {
            words.push(word(&[(a, i % 2 == 0)]));
            for (j, &b) in labels.iter().enumerate() {
                if (i + j) % 3 == 0 {
                    words.push(word(&[(a, i % 2 == 1), (b, j % 2 == 0)]));
                }
            }
        }
        words.push(word(&[("next", false), ("next", false), ("prereq", false)]));
        words.push(word(&[
            ("prereq", false),
            ("next", false),
            ("prereq", false),
        ]));
        for expr in exprs {
            let regex = parse(expr).unwrap();
            let nfa = build_nfa(&regex, &resolver);
            for w in &words {
                assert_eq!(
                    accepts(&nfa, w),
                    omega_regex::oracle::matches(&regex, w),
                    "mismatch for {expr} on {w:?}"
                );
            }
        }
    }
}
