//! RELAX: ontology-driven relaxation of a query automaton.
//!
//! Following [Poulovassilis & Wood, ISWC 2010] and Section 2 of the paper,
//! the automaton `M_R^K` is obtained from `M_R` using the ontology `K`:
//!
//! * **rule (i)** — a property label may be replaced by its immediate
//!   superproperty at cost β; the replacement cascades, so an ancestor at
//!   distance *k* in the subproperty hierarchy costs *k·β*. (The analogous
//!   rule for classes is applied to class *constants* by the evaluator's
//!   `Open` procedure via `GetAncestors`, since classes appear as nodes, not
//!   edge labels, in this data model.)
//! * **rule (ii)** — a property edge `(x, p, y)` may be replaced by a `type`
//!   edge from `x` to the class `dom(p)` at cost γ; when the property is
//!   traversed in reverse (`p-`), the range class is used instead. The
//!   produced [`TransitionLabel::TypeTo`] transitions may themselves be
//!   relaxed further up the class hierarchy at β per step.
//!
//! The paper's performance study enables only rule (i) at cost 1, which is
//! what [`RelaxConfig::default`] does; rule (ii) is available through
//! [`RelaxConfig::with_domain_range`].

use omega_ontology::Ontology;

use crate::label::TransitionLabel;
use crate::nfa::WeightedNfa;
use crate::resolver::LabelResolver;

/// Costs of the relaxation operations applied by RELAX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxConfig {
    /// Cost β of one step up a class/property hierarchy.
    pub beta: u32,
    /// Cost γ of replacing a property edge by a `type` edge to its
    /// domain/range class; `None` disables rule (ii).
    pub gamma: Option<u32>,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        RelaxConfig {
            beta: 1,
            gamma: None,
        }
    }
}

impl RelaxConfig {
    /// Rule (i) at cost `beta` only.
    pub fn hierarchy_only(beta: u32) -> Self {
        RelaxConfig { beta, gamma: None }
    }

    /// Enables rule (ii) at cost `gamma`.
    pub fn with_domain_range(mut self, gamma: u32) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// The smallest cost of any enabled relaxation operation — the step φ
    /// used by the distance-aware optimisation.
    pub fn min_cost(&self) -> u32 {
        match self.gamma {
            Some(g) => self.beta.min(g),
            None => self.beta,
        }
    }
}

/// Builds the RELAX automaton `M_R^K` from `M_R`, the ontology and the
/// relaxation costs.
pub fn relax<R: LabelResolver>(
    nfa: &WeightedNfa,
    ontology: &Ontology,
    config: &RelaxConfig,
    resolver: &R,
) -> WeightedNfa {
    let mut out = nfa.clone();
    let originals: Vec<_> = nfa.transitions().to_vec();

    for t in &originals {
        let TransitionLabel::Symbol {
            label: Some(property),
            inverse,
            ..
        } = &t.label
        else {
            continue;
        };
        if !ontology.is_property(*property) {
            continue;
        }

        // Rule (i): superproperty steps, cascading with distance.
        for (sup, dist) in ontology.superproperties(*property) {
            let cost = t.cost + dist * config.beta;
            out.add_transition(
                t.from,
                TransitionLabel::Symbol {
                    label: Some(sup),
                    inverse: *inverse,
                    name: resolver.label_name(sup),
                },
                cost,
                t.to,
            );
        }

        // Rule (ii): replace the property edge by a `type` edge to its
        // domain (forward traversal) or range (reverse traversal) class.
        if let Some(gamma) = config.gamma {
            let class = if *inverse {
                ontology.range(*property)
            } else {
                ontology.domain(*property)
            };
            if let Some(class) = class {
                let base = t.cost + gamma;
                out.add_transition(
                    t.from,
                    TransitionLabel::TypeTo {
                        class,
                        name: resolver.node_name(class),
                    },
                    base,
                    t.to,
                );
                for (sup, dist) in ontology.superclasses(class) {
                    out.add_transition(
                        t.from,
                        TransitionLabel::TypeTo {
                            class: sup,
                            name: resolver.node_name(sup),
                        },
                        base + dist * config.beta,
                        t.to,
                    );
                }
            }
        }
    }
    out.freeze();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::remove_epsilons;
    use crate::simulate::min_accept_cost;
    use crate::thompson::build_nfa;
    use omega_graph::GraphStore;
    use omega_regex::{parse, Symbol};

    /// Graph + ontology used by the RELAX tests:
    /// property hierarchy: gradFrom ⊑ relationLocatedByObject,
    ///                     happenedIn ⊑ relationLocatedByObject,
    /// domain(gradFrom) = Person, Person ⊑ Agent.
    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        let grad = g.intern_label("gradFrom");
        let rel = g.intern_label("relationLocatedByObject");
        let happened = g.intern_label("happenedIn");
        let person = g.add_node("Person");
        let agent = g.add_node("Agent");
        let mut o = Ontology::new();
        o.add_subproperty(grad, rel).unwrap();
        o.add_subproperty(happened, rel).unwrap();
        o.add_subclass(person, agent).unwrap();
        o.set_domain(grad, person);
        (g, o)
    }

    #[test]
    fn rule_one_adds_superproperty_transition() {
        let (g, o) = setup();
        let nfa = build_nfa(&parse("gradFrom").unwrap(), &g);
        let relaxed = remove_epsilons(&relax(&nfa, &o, &RelaxConfig::default(), &g));
        // exact label still costs 0
        assert_eq!(
            min_accept_cost(&relaxed, &[Symbol::forward("gradFrom")]),
            Some(0)
        );
        // the superproperty is matched at cost β = 1
        let rel_id = g.label_id("relationLocatedByObject").unwrap();
        let has = relaxed.transitions().iter().any(|t| {
            matches!(&t.label, TransitionLabel::Symbol { label: Some(l), .. } if *l == rel_id)
                && t.cost == 1
        });
        assert!(has);
    }

    #[test]
    fn rule_one_preserves_direction() {
        let (g, o) = setup();
        let nfa = build_nfa(&parse("gradFrom-").unwrap(), &g);
        let relaxed = relax(&nfa, &o, &RelaxConfig::default(), &g);
        let rel_id = g.label_id("relationLocatedByObject").unwrap();
        assert!(relaxed.transitions().iter().any(|t| matches!(
            &t.label,
            TransitionLabel::Symbol { label: Some(l), inverse: true, .. } if *l == rel_id
        )));
    }

    #[test]
    fn cascade_costs_scale_with_distance() {
        // a ⊑ b ⊑ c: relaxing a to c costs 2β.
        let mut g = GraphStore::new();
        let a = g.intern_label("a");
        let b = g.intern_label("b");
        let c = g.intern_label("c");
        let mut o = Ontology::new();
        o.add_subproperty(a, b).unwrap();
        o.add_subproperty(b, c).unwrap();
        let nfa = build_nfa(&parse("a").unwrap(), &g);
        let relaxed = relax(
            &nfa,
            &o,
            &RelaxConfig {
                beta: 2,
                gamma: None,
            },
            &g,
        );
        let cost_of = |label: omega_graph::LabelId| {
            relaxed
                .transitions()
                .iter()
                .find_map(|t| match &t.label {
                    TransitionLabel::Symbol { label: Some(l), .. } if *l == label => Some(t.cost),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(cost_of(b), 2);
        assert_eq!(cost_of(c), 4);
    }

    #[test]
    fn rule_two_adds_type_to_domain() {
        let (g, o) = setup();
        let nfa = build_nfa(&parse("gradFrom").unwrap(), &g);
        let config = RelaxConfig::default().with_domain_range(3);
        let relaxed = relax(&nfa, &o, &config, &g);
        let person = g.node_by_label("Person").unwrap();
        let agent = g.node_by_label("Agent").unwrap();
        let find = |class| {
            relaxed.transitions().iter().find_map(|t| match &t.label {
                TransitionLabel::TypeTo { class: c, .. } if *c == class => Some(t.cost),
                _ => None,
            })
        };
        assert_eq!(find(person), Some(3)); // γ
        assert_eq!(find(agent), Some(4)); // γ + β for the superclass step
    }

    #[test]
    fn rule_two_uses_range_for_inverse_traversal() {
        let mut g = GraphStore::new();
        let p = g.intern_label("p");
        let thing = g.add_node("Thing");
        let mut o = Ontology::new();
        o.add_property(p);
        o.set_range(p, thing);
        let nfa = build_nfa(&parse("p-").unwrap(), &g);
        let relaxed = relax(&nfa, &o, &RelaxConfig::default().with_domain_range(1), &g);
        assert!(relaxed.transitions().iter().any(|t| matches!(
            &t.label,
            TransitionLabel::TypeTo { class, .. } if *class == thing
        )));
        // forward traversal has no domain declared, so no TypeTo is added
        let nfa_fwd = build_nfa(&parse("p").unwrap(), &g);
        let relaxed_fwd = relax(
            &nfa_fwd,
            &o,
            &RelaxConfig::default().with_domain_range(1),
            &g,
        );
        assert!(!relaxed_fwd
            .transitions()
            .iter()
            .any(|t| matches!(&t.label, TransitionLabel::TypeTo { .. })));
    }

    #[test]
    fn non_property_labels_are_untouched() {
        let (g, o) = setup();
        let nfa = build_nfa(&parse("type-.unknownLabel").unwrap(), &g);
        let relaxed = relax(&nfa, &o, &RelaxConfig::default(), &g);
        assert_eq!(relaxed.transition_count(), nfa.transition_count());
    }

    #[test]
    fn relaxation_never_removes_exact_matches() {
        let (g, o) = setup();
        for expr in ["gradFrom", "gradFrom-.happenedIn", "gradFrom*"] {
            let nfa = remove_epsilons(&build_nfa(&parse(expr).unwrap(), &g));
            let relaxed = remove_epsilons(&relax(
                &build_nfa(&parse(expr).unwrap(), &g),
                &o,
                &RelaxConfig::default().with_domain_range(1),
                &g,
            ));
            let words = [
                vec![Symbol::forward("gradFrom")],
                vec![Symbol::inverse("gradFrom"), Symbol::forward("happenedIn")],
                vec![],
            ];
            for word in &words {
                if let Some(exact) = min_accept_cost(&nfa, word) {
                    assert_eq!(min_accept_cost(&relaxed, word), Some(exact));
                }
            }
        }
    }
}
