//! The per-connection protocol state machine: handshake, request dispatch,
//! credit-driven answer streaming, cancellation and drain.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use omega_core::{ExecOptions, OmegaError, PreparedQuery, QueryProfile};
use omega_protocol::{
    write_frame, FinishReason, Frame, FrameReader, Poll, ProtocolError, StatementRef, Transport,
    WireError, METRICS_EXPOSITION_VERSION, PROTOCOL_VERSION,
};

use crate::{CounterGuard, Shared};

/// Why the connection thread is ending. Either way the socket just closes;
/// the split only exists so call sites read correctly.
enum Hangup {
    /// The peer disconnected or the transport failed.
    Gone,
    /// The server is draining and this connection is (now) idle.
    Drained,
}

type ConnResult<T> = Result<T, Hangup>;

/// A control frame observed while a stream is in flight.
enum Control {
    /// Nothing pending.
    None,
    /// The client granted more answer credits.
    Fetch(u32),
    /// The client abandoned the stream.
    Cancel,
    /// A frame that has no business arriving mid-stream.
    Unexpected,
}

/// How a stream ended (the terminal frame is chosen from this).
enum Outcome {
    /// Ran to completion: limit reached or answers exhausted.
    Complete,
    /// Cut short at a batch boundary by server drain.
    Drained,
    /// The client sent `Cancel`.
    Cancelled,
    /// The evaluator failed with a typed error.
    Failed(OmegaError),
    /// The client broke protocol mid-stream.
    Abuse,
}

/// Entry point of a connection thread.
pub(crate) fn connection(shared: Arc<Shared>, transport: Transport) {
    let _open = CounterGuard::enter(&shared.counters.connections_open);
    // The only reasons `serve` ends are peer disconnect and server drain;
    // both are handled by closing the socket, which happens on drop.
    let _ = serve(&shared, transport);
}

fn serve(shared: &Arc<Shared>, transport: Transport) -> ConnResult<()> {
    // Reads poll at the drain interval; writes are bounded so a client that
    // stops reading cannot pin this thread (or the drain) forever.
    let _ = transport.set_read_timeout(Some(shared.config.poll_interval));
    let _ = transport.set_write_timeout(shared.config.write_timeout);
    let reader_half = transport.try_clone().map_err(|_| Hangup::Gone)?;
    let mut conn = Conn {
        shared,
        reader: FrameReader::new(reader_half),
        writer: transport,
        statements: HashMap::new(),
        next_id: 1,
        bytes_in_seen: 0,
    };
    conn.handshake()?;
    loop {
        match conn.next_request()? {
            Some(frame) => {
                let kind = frame_kind(&frame);
                let started = Instant::now();
                conn.dispatch(frame)?;
                shared.metrics.frame_ns(kind).observe(started.elapsed());
            }
            None => return Ok(()),
        }
    }
}

/// The label under which a request lands in the per-frame latency
/// histogram.
fn frame_kind(frame: &Frame) -> &'static str {
    match frame {
        Frame::Prepare { .. } => "prepare",
        Frame::Execute { .. } => "execute",
        Frame::Stats => "stats",
        Frame::Metrics => "metrics",
        Frame::Mutate { .. } => "mutate",
        Frame::Close { .. } => "close",
        Frame::Shutdown => "shutdown",
        _ => "other",
    }
}

/// FNV-1a over the debug rendering of the request options: a stable,
/// dependency-free digest that lets slow-query lines be grouped by
/// execution configuration without reprinting the whole struct.
fn options_digest(options: &ExecOptions) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in format!("{options:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Minimal JSON string escaping for the slow-query log line.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Conn<'a> {
    shared: &'a Arc<Shared>,
    reader: FrameReader<Transport>,
    writer: Transport,
    /// Connection-scoped statement table. The values are clones out of the
    /// database's shared LRU cache, so identical text prepared on two
    /// connections shares one compiled plan.
    statements: HashMap<u64, PreparedQuery>,
    next_id: u64,
    /// Reader byte total already credited to the `bytes_in` counter.
    bytes_in_seen: u64,
}

impl Drop for Conn<'_> {
    fn drop(&mut self) {
        // Return this connection's statement-table contribution.
        self.shared
            .counters
            .statements_open
            .fetch_sub(self.statements.len() as u64, Ordering::SeqCst);
    }
}

impl Conn<'_> {
    fn send(&mut self, frame: &Frame) -> ConnResult<()> {
        let written = write_frame(&mut self.writer, frame).map_err(|_| Hangup::Gone)?;
        self.shared.metrics.bytes_out.add(written as u64);
        Ok(())
    }

    /// Credits reader bytes consumed since the last call to the `bytes_in`
    /// counter (called after every poll, so partial frames count too).
    fn note_read_bytes(&mut self) {
        let total = self.reader.bytes_read();
        self.shared.metrics.bytes_in.add(total - self.bytes_in_seen);
        self.bytes_in_seen = total;
    }

    /// Sends a typed failure and counts it.
    fn send_fail(&mut self, error: WireError) -> ConnResult<()> {
        self.shared.counters.rejected.fetch_add(1, Ordering::SeqCst);
        self.send(&Frame::Fail { error })
    }

    /// First frame must be a well-formed `Hello`; version skew and foreign
    /// magic are reported as typed failures before the socket closes.
    fn handshake(&mut self) -> ConnResult<()> {
        loop {
            let polled = self.reader.poll();
            self.note_read_bytes();
            match polled {
                Ok(Poll::Frame(Frame::Hello { .. })) => {
                    let server = self.shared.config.server_name.clone();
                    return self.send(&Frame::HelloOk {
                        version: PROTOCOL_VERSION,
                        server,
                    });
                }
                Ok(Poll::Frame(_)) => {
                    let _ = self.send_fail(WireError::Malformed(
                        "connection must open with a Hello handshake".into(),
                    ));
                    return Err(Hangup::Gone);
                }
                Ok(Poll::Pending) => {
                    if self.shared.draining() {
                        return Err(Hangup::Drained);
                    }
                }
                Ok(Poll::Eof) => return Err(Hangup::Gone),
                Err(ProtocolError::UnsupportedVersion {
                    requested,
                    supported,
                }) => {
                    let _ = self.send_fail(WireError::VersionSkew {
                        client: requested,
                        server: supported,
                    });
                    return Err(Hangup::Gone);
                }
                Err(err) => {
                    // Includes BadMagic: the peer is not speaking this
                    // protocol; report best-effort and hang up.
                    let _ = self.send_fail(WireError::Malformed(err.to_string()));
                    return Err(Hangup::Gone);
                }
            }
        }
    }

    /// Waits for the next request frame; `None` is a clean client
    /// disconnect. During drain an idle connection closes instead of
    /// waiting.
    fn next_request(&mut self) -> ConnResult<Option<Frame>> {
        loop {
            let polled = self.reader.poll();
            self.note_read_bytes();
            match polled {
                Ok(Poll::Frame(frame)) => return Ok(Some(frame)),
                Ok(Poll::Eof) => return Ok(None),
                Ok(Poll::Pending) => {
                    if self.shared.draining() {
                        return Err(Hangup::Drained);
                    }
                }
                Err(err) => {
                    let _ = self.send_fail(WireError::Malformed(err.to_string()));
                    return Err(Hangup::Gone);
                }
            }
        }
    }

    fn dispatch(&mut self, frame: Frame) -> ConnResult<()> {
        match frame {
            Frame::Prepare { text } => self.prepare(text),
            Frame::Execute {
                statement,
                options,
                credits,
            } => self.execute(statement, options, credits),
            Frame::Close { id } => {
                if self.statements.remove(&id).is_some() {
                    self.shared
                        .counters
                        .statements_open
                        .fetch_sub(1, Ordering::SeqCst);
                    self.send(&Frame::Closed)
                } else {
                    self.send_fail(WireError::UnknownStatement(id))
                }
            }
            Frame::Stats => {
                let stats = self.shared.stats();
                self.send(&Frame::StatsReply { stats })
            }
            Frame::Metrics => {
                let text = self.shared.metrics_text();
                self.send(&Frame::MetricsReply {
                    version: METRICS_EXPOSITION_VERSION,
                    text,
                })
            }
            Frame::Mutate { adds, removes } => self.mutate(adds, removes),
            Frame::Shutdown => {
                self.shared.drain.store(true, Ordering::SeqCst);
                self.send(&Frame::ShutdownOk)
            }
            // A Fetch or Cancel can legitimately arrive after the stream it
            // belongs to ended: the client grants credits (or aborts) while
            // the terminal frame is still in flight towards it. Stale flow
            // control is dropped silently — replying would desynchronise
            // the next request/reply exchange.
            Frame::Fetch { .. } | Frame::Cancel => Ok(()),
            Frame::Hello { .. } => {
                self.send_fail(WireError::Malformed("duplicate handshake".into()))
            }
            // A server→client frame arriving at the server is protocol
            // abuse; hang up after reporting.
            _ => {
                let _ = self.send_fail(WireError::Malformed(
                    "server-to-client frame sent by client".into(),
                ));
                Err(Hangup::Gone)
            }
        }
    }

    fn prepare(&mut self, text: String) -> ConnResult<()> {
        if self.shared.draining() {
            return self.send_fail(WireError::Shutdown);
        }
        match self.shared.db.prepare(&text) {
            Ok(prepared) => {
                let id = self.next_id;
                self.next_id += 1;
                let conjuncts = prepared.query().conjuncts.len() as u32;
                let head = prepared.query().head.clone();
                self.statements.insert(id, prepared);
                self.shared
                    .counters
                    .statements_open
                    .fetch_add(1, Ordering::SeqCst);
                self.send(&Frame::Prepared {
                    id,
                    conjuncts,
                    head,
                })
            }
            Err(err) => self.send_fail(WireError::Engine(err)),
        }
    }

    /// Applies one mutation batch atomically against the shared database.
    /// In-flight streams — on this connection and every other — keep their
    /// pinned epoch; only statements prepared afterwards see the change.
    fn mutate(
        &mut self,
        adds: Vec<(String, String, String)>,
        removes: Vec<(String, String, String)>,
    ) -> ConnResult<()> {
        if self.shared.draining() {
            return self.send_fail(WireError::Shutdown);
        }
        let mut batch = self.shared.db.begin_mutation();
        for (tail, label, head) in &adds {
            batch.add(tail, label, head);
        }
        for (tail, label, head) in &removes {
            batch.remove(tail, label, head);
        }
        match self.shared.db.apply(&batch) {
            Ok(report) => {
                self.maybe_compact();
                self.send(&Frame::MutateOk {
                    epoch: report.epoch,
                    added: report.added,
                    removed: report.removed,
                })
            }
            Err(err) => self.send_fail(WireError::Engine(err)),
        }
    }

    /// Kicks off a background compaction when the delta overlay has grown
    /// past the configured threshold. At most one compactor runs at a time;
    /// it swaps in a fresh frozen CSR without blocking readers or writers.
    fn maybe_compact(&self) {
        let threshold = self.shared.config.compact_threshold;
        if threshold == 0 || self.shared.db.graph().overlay_edges() < threshold as u64 {
            return;
        }
        if self.shared.compacting.swap(true, Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(self.shared);
        std::thread::spawn(move || {
            shared.db.compact();
            shared.compacting.store(false, Ordering::SeqCst);
        });
    }

    fn execute(
        &mut self,
        statement: StatementRef,
        options: ExecOptions,
        credits: u32,
    ) -> ConnResult<()> {
        if self.shared.draining() {
            return self.send_fail(WireError::Shutdown);
        }
        let prepared = match statement {
            StatementRef::Id(id) => match self.statements.get(&id) {
                Some(prepared) => prepared.clone(),
                None => return self.send_fail(WireError::UnknownStatement(id)),
            },
            StatementRef::Text(text) => match self.shared.db.prepare(&text) {
                Ok(prepared) => prepared,
                Err(err) => return self.send_fail(WireError::Engine(err)),
            },
        };
        self.stream(prepared, options, credits)
    }

    /// Runs one execution, streaming ranked answers in credit-bounded
    /// batches. Returns when the terminal frame (`Finished` or `Fail`) is
    /// on the wire — or with a hangup, which drops the [`omega_core::Answers`]
    /// stream and thereby cancels the execution (cancellation on
    /// disconnect).
    fn stream(
        &mut self,
        prepared: PreparedQuery,
        request: ExecOptions,
        credits: u32,
    ) -> ConnResult<()> {
        let _in_flight = CounterGuard::enter(&self.shared.counters.streams_in_flight);
        let started = Instant::now();
        let mut stream = prepared.answers(&request);
        let mut credits = u64::from(credits);
        let batch_cap = self.shared.config.batch.max(1) as u64;
        let mut batch = Vec::new();
        let outcome = loop {
            if self.shared.draining() {
                break Outcome::Drained;
            }
            // Opportunistic, non-blocking control poll: `Cancel` and
            // `Fetch` top-ups can arrive while answers still flow.
            match self.try_control()? {
                Control::None => {}
                Control::Fetch(extra) => {
                    credits = credits.saturating_add(u64::from(extra));
                    continue;
                }
                Control::Cancel => break Outcome::Cancelled,
                Control::Unexpected => break Outcome::Abuse,
            }
            if credits == 0 {
                // Out of credits: block (at the poll interval) until the
                // client grants more, cancels, or disconnects.
                match self.wait_control()? {
                    Control::None => continue,
                    Control::Fetch(extra) => {
                        credits = credits.saturating_add(u64::from(extra));
                    }
                    Control::Cancel => break Outcome::Cancelled,
                    Control::Unexpected => break Outcome::Abuse,
                }
                continue;
            }
            batch.clear();
            let mut finished = false;
            let mut failure = None;
            while (batch.len() as u64) < credits.min(batch_cap) {
                match stream.next_answer() {
                    Ok(Some(answer)) => batch.push(answer),
                    Ok(None) => {
                        finished = true;
                        break;
                    }
                    Err(err) => {
                        failure = Some(err);
                        break;
                    }
                }
            }
            if !batch.is_empty() {
                credits -= batch.len() as u64;
                self.shared
                    .counters
                    .answers_streamed
                    .fetch_add(batch.len() as u64, Ordering::SeqCst);
                let answers = std::mem::take(&mut batch);
                self.send(&Frame::Answers { answers })?;
            }
            if let Some(err) = failure {
                break Outcome::Failed(err);
            }
            if finished {
                break Outcome::Complete;
            }
        };
        let stats = stream.stats();
        let profile = stream.take_profile();
        // Drop before the terminal frame: cancels any conjunct workers and
        // returns every governor resource, so a client observing `Finished`
        // observes the gauges already settled.
        drop(stream);
        self.shared
            .counters
            .sheds
            .fetch_add(stats.sheds, Ordering::SeqCst);
        let drained = matches!(outcome, Outcome::Drained);
        if drained || stats.degraded {
            self.shared.counters.degraded.fetch_add(1, Ordering::SeqCst);
        }
        self.log_slow_query(&prepared, &request, &outcome, started, &stats, &profile);
        match outcome {
            Outcome::Complete => self.send(&Frame::Finished {
                stats,
                reason: FinishReason::Complete,
                profile,
            }),
            Outcome::Drained => {
                // The answers already sent are a correct rank-order prefix;
                // tell the client so, then let the request loop close the
                // (now idle, draining) connection.
                self.send(&Frame::Finished {
                    stats,
                    reason: FinishReason::Drained,
                    profile,
                })
            }
            Outcome::Cancelled => self.send_fail(WireError::Engine(OmegaError::Cancelled)),
            Outcome::Failed(err) => self.send_fail(WireError::Engine(err)),
            Outcome::Abuse => {
                let _ = self.send_fail(WireError::Malformed(
                    "unexpected frame while a stream was in flight".into(),
                ));
                Err(Hangup::Gone)
            }
        }
    }

    /// Emits the structured slow-query line when the execution crossed the
    /// configured threshold. One stderr line, fixed prefix, hand-rolled
    /// JSON — greppable and machine-parseable without a logging stack.
    fn log_slow_query(
        &self,
        prepared: &PreparedQuery,
        request: &ExecOptions,
        outcome: &Outcome,
        started: Instant,
        stats: &omega_core::EvalStats,
        profile: &Option<QueryProfile>,
    ) {
        let Some(threshold) = self.shared.config.slow_query_ms else {
            return;
        };
        let elapsed_ms = started.elapsed().as_millis() as u64;
        if elapsed_ms < threshold {
            return;
        }
        let reason = match outcome {
            Outcome::Complete => "complete",
            Outcome::Drained => "drained",
            Outcome::Cancelled => "cancelled",
            Outcome::Failed(_) => "failed",
            Outcome::Abuse => "abuse",
        };
        let profile_json = match profile {
            Some(profile) => {
                let phases: Vec<String> = profile
                    .phases()
                    .iter()
                    .map(|p| format!("\"{}\":{}", json_escape(&p.name), p.nanos))
                    .collect();
                format!(",\"profile\":{{{}}}", phases.join(","))
            }
            None => String::new(),
        };
        eprintln!(
            "omega-server: slow-query {{\"elapsed_ms\":{},\"query\":\"{}\",\"epoch\":{},\
             \"options_digest\":\"{:016x}\",\"answers\":{},\"degraded\":{},\"reason\":\"{}\"{}}}",
            elapsed_ms,
            json_escape(&prepared.query().to_string()),
            prepared.epoch(),
            options_digest(request),
            stats.answers,
            stats.degraded,
            reason,
            profile_json,
        );
    }

    /// Non-blocking control poll (flips the socket to non-blocking for one
    /// read burst; partial frames are retained by the reader).
    fn try_control(&mut self) -> ConnResult<Control> {
        let _ = self.writer.set_nonblocking(true);
        let polled = self.reader.poll();
        let _ = self.writer.set_nonblocking(false);
        self.control_from(polled)
    }

    /// Blocking control wait at the read-timeout (poll) interval, so the
    /// drain flag is re-checked by the caller between ticks.
    fn wait_control(&mut self) -> ConnResult<Control> {
        let polled = self.reader.poll();
        self.control_from(polled)
    }

    fn control_from(&mut self, polled: Result<Poll, ProtocolError>) -> ConnResult<Control> {
        self.note_read_bytes();
        match polled {
            Ok(Poll::Frame(Frame::Fetch { credits })) => Ok(Control::Fetch(credits)),
            Ok(Poll::Frame(Frame::Cancel)) => Ok(Control::Cancel),
            Ok(Poll::Frame(Frame::Stats)) => {
                // Stats are safe (and useful) mid-stream: a monitoring
                // client can watch the gauges move.
                let stats = self.shared.stats();
                self.send(&Frame::StatsReply { stats })?;
                Ok(Control::None)
            }
            Ok(Poll::Frame(Frame::Metrics)) => {
                // Metrics too: scrapers must not be blocked by a long
                // stream on the same connection.
                let text = self.shared.metrics_text();
                self.send(&Frame::MetricsReply {
                    version: METRICS_EXPOSITION_VERSION,
                    text,
                })?;
                Ok(Control::None)
            }
            Ok(Poll::Frame(_)) => Ok(Control::Unexpected),
            Ok(Poll::Pending) => Ok(Control::None),
            // Disconnect mid-stream: the caller drops the answer stream,
            // which cancels the execution.
            Ok(Poll::Eof) => Err(Hangup::Gone),
            Err(_) => Err(Hangup::Gone),
        }
    }
}
