//! The `omega-server` daemon: serves a snapshot image or a generated
//! dataset over unix-domain and/or TCP sockets.
//!
//! ```text
//! omega-server --unix /tmp/omega.sock --snapshot graph.omega
//! omega-server --tcp 127.0.0.1:7474 --dataset l4all:l2 --max-concurrent 8
//! ```
//!
//! Shutdown is protocol-driven: any client may send the `Shutdown` frame
//! (e.g. `omega-client shutdown`), which drains the daemon gracefully.

use std::process::exit;
use std::time::Duration;

use omega_core::{Database, EvalOptions, FsyncPolicy, GovernorConfig, RecoveryReport, WalConfig};
use omega_datagen::{generate_l4all, generate_yago, Dataset, L4AllConfig, L4AllScale, YagoConfig};
use omega_server::{Server, ServerConfig};

const USAGE: &str = "\
omega-server: the Omega flexible-RPQ serving daemon

USAGE:
    omega-server [--unix PATH] [--tcp ADDR] [DATA] [GOVERNOR] [TUNING]

At least one of --unix / --tcp is required.

DATA (default: $OMEGA_SNAPSHOT_FILE if set, else --dataset l4all):
    --snapshot PATH       open an on-disk snapshot image (mmap, zero-copy)
    --dataset SPEC        build a generated dataset: l4all, l4all:l1..l4,
                          yago, yago:FACTOR (e.g. yago:0.5)

DURABILITY (unset = in-memory only; mutations evaporate on crash):
    --wal-dir PATH        write-ahead log directory: every acknowledged
                          mutation is logged before it is published, and a
                          restart replays the log (plus any rotation
                          checkpoint) before serving. Append failures
                          degrade the daemon to read-only instead of
                          dropping durability silently.
    --fsync POLICY        always (default; MutateOk implies durable),
                          every:<ms> (group commit, bounded loss), or
                          never (page-cache durability only)

GOVERNOR (admission control at the edge; unset = unbounded):
    --max-live-tuples N   shared live-tuple pool across all executions
    --max-concurrent N    concurrent-execution ceiling
    --admission-rate R    token-bucket refill rate (executions/second)
    --admission-burst N   token-bucket capacity (default 1 with --admission-rate)
    --retry-after-ms N    retry hint attached to Overloaded rejections
    --acquire-timeout-ms N  how long admission waits before rejecting

TUNING:
    --batch N             max answers per Answers frame (default 64)
    --compact-threshold N overlay edges above which a Mutate triggers
                          background compaction (default 8192, 0 = never)
    --poll-interval-ms N  drain/cancel poll interval (default 25)
    --write-timeout-ms N  per-frame write timeout (default 10000, 0 = none)
    --slow-query-ms N     log executions slower than N ms to stderr as one
                          structured slow-query line (0 = every execution;
                          default: disabled)
    --help                print this text
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("omega-server: {message}");
        exit(2);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut unix_path: Option<String> = None;
    let mut tcp_addr: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut dataset: Option<String> = None;
    let mut wal_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut governor = GovernorConfig::default();
    let mut admission_rate: Option<f64> = None;
    let mut admission_burst: Option<usize> = None;
    let mut config = ServerConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--unix" => unix_path = Some(value("--unix")?.clone()),
            "--tcp" => tcp_addr = Some(value("--tcp")?.clone()),
            "--snapshot" => snapshot = Some(value("--snapshot")?.clone()),
            "--dataset" => dataset = Some(value("--dataset")?.clone()),
            "--wal-dir" => wal_dir = Some(value("--wal-dir")?.clone()),
            "--fsync" => fsync = FsyncPolicy::parse(value("--fsync")?)?,
            "--max-live-tuples" => {
                governor = governor.with_max_live_tuples(parse(value("--max-live-tuples")?)?);
            }
            "--max-concurrent" => {
                governor = governor.with_max_concurrent(parse(value("--max-concurrent")?)?);
            }
            "--admission-rate" => admission_rate = Some(parse(value("--admission-rate")?)?),
            "--admission-burst" => admission_burst = Some(parse(value("--admission-burst")?)?),
            "--retry-after-ms" => {
                governor = governor
                    .with_retry_after(Duration::from_millis(parse(value("--retry-after-ms")?)?));
            }
            "--acquire-timeout-ms" => {
                governor = governor.with_acquire_timeout(Duration::from_millis(parse(value(
                    "--acquire-timeout-ms",
                )?)?));
            }
            "--batch" => config.batch = parse(value("--batch")?)?,
            "--compact-threshold" => {
                config.compact_threshold = parse(value("--compact-threshold")?)?;
            }
            "--poll-interval-ms" => {
                config.poll_interval = Duration::from_millis(parse(value("--poll-interval-ms")?)?);
            }
            "--write-timeout-ms" => {
                let ms: u64 = parse(value("--write-timeout-ms")?)?;
                config.write_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--slow-query-ms" => {
                config.slow_query_ms = Some(parse(value("--slow-query-ms")?)?);
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }

    if let Some(rate) = admission_rate {
        governor = governor.with_admission_rate(rate, admission_burst.unwrap_or(1));
    } else if admission_burst.is_some() {
        return Err("--admission-burst requires --admission-rate".into());
    }
    if unix_path.is_none() && tcp_addr.is_none() {
        return Err("at least one of --unix / --tcp is required (see --help)".into());
    }
    if snapshot.is_some() && dataset.is_some() {
        return Err("--snapshot and --dataset are mutually exclusive".into());
    }
    // The daemon honours the same snapshot environment variable as the
    // test and bench harnesses.
    if snapshot.is_none() && dataset.is_none() {
        snapshot = std::env::var("OMEGA_SNAPSHOT_FILE")
            .ok()
            .filter(|v| !v.is_empty());
    }

    let wal = wal_dir
        .as_ref()
        .map(|dir| WalConfig::new(dir).with_fsync(fsync));
    let db = match (&snapshot, &dataset) {
        (Some(path), _) => {
            let db = match &wal {
                Some(wal) => {
                    let (db, recovery) = Database::open_snapshot_durable(
                        path,
                        EvalOptions::default(),
                        governor,
                        wal,
                    )
                    .map_err(|e| format!("cannot open snapshot '{path}': {e}"))?;
                    report_recovery(&recovery, wal);
                    db
                }
                None => {
                    Database::open_snapshot_with_governor(path, EvalOptions::default(), governor)
                        .map_err(|e| format!("cannot open snapshot '{path}': {e}"))?
                }
            };
            eprintln!(
                "omega-server: snapshot '{path}' mapped ({} nodes, {} edges)",
                db.graph().node_count(),
                db.graph().edge_count()
            );
            db
        }
        (None, spec) => {
            let spec = spec.as_deref().unwrap_or("l4all");
            let data = build_dataset(spec)?;
            let db = match &wal {
                Some(wal) => {
                    let (db, recovery) = Database::with_governor_durable(
                        data.graph,
                        data.ontology,
                        EvalOptions::default(),
                        governor,
                        wal,
                    )
                    .map_err(|e| format!("cannot open wal '{}': {e}", wal.dir.display()))?;
                    report_recovery(&recovery, wal);
                    db
                }
                None => Database::with_governor(
                    data.graph,
                    data.ontology,
                    EvalOptions::default(),
                    governor,
                ),
            };
            eprintln!(
                "omega-server: dataset '{spec}' built ({} nodes, {} edges)",
                db.graph().node_count(),
                db.graph().edge_count()
            );
            db
        }
    };

    let mut server = Server::with_config(db, config);
    if let Some(path) = &unix_path {
        server
            .listen_unix(path)
            .map_err(|e| format!("cannot bind unix socket '{path}': {e}"))?;
        eprintln!("omega-server: listening on unix:{path}");
    }
    if let Some(addr) = &tcp_addr {
        let local = server
            .listen_tcp(addr)
            .map_err(|e| format!("cannot bind tcp address '{addr}': {e}"))?;
        eprintln!("omega-server: listening on tcp:{local}");
    }
    server.run();
    eprintln!("omega-server: drained, bye");
    Ok(())
}

fn report_recovery(recovery: &RecoveryReport, wal: &WalConfig) {
    eprintln!(
        "omega-server: wal '{}' fsync={}: recovered {} record(s){}{}",
        wal.dir.display(),
        wal.fsync,
        recovery.records,
        if recovery.from_checkpoint {
            " over rotation checkpoint"
        } else {
            ""
        },
        if recovery.truncated_bytes > 0 {
            format!(", truncated {} torn byte(s)", recovery.truncated_bytes)
        } else {
            String::new()
        }
    );
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("invalid value '{raw}': {e}"))
}

fn build_dataset(spec: &str) -> Result<Dataset, String> {
    let (name, param) = match spec.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (spec, None),
    };
    match name {
        "l4all" => {
            let config = match param {
                None => L4AllConfig::tiny(),
                Some("l1") => L4AllConfig::at_scale(L4AllScale::L1),
                Some("l2") => L4AllConfig::at_scale(L4AllScale::L2),
                Some("l3") => L4AllConfig::at_scale(L4AllScale::L3),
                Some("l4") => L4AllConfig::at_scale(L4AllScale::L4),
                Some(other) => {
                    return Err(format!("unknown l4all scale '{other}' (expected l1..l4)"))
                }
            };
            Ok(generate_l4all(&config))
        }
        "yago" => {
            let config = match param {
                None => YagoConfig::tiny(),
                Some(factor) => YagoConfig::scaled(parse(factor)?),
            };
            Ok(generate_yago(&config))
        }
        other => Err(format!(
            "unknown dataset '{other}' (expected l4all[:l1..l4] or yago[:FACTOR])"
        )),
    }
}
