//! # omega-server
//!
//! The Omega serving daemon: a thread-per-connection accept loop over unix
//! and TCP sockets, speaking [`omega_protocol`] frames against one shared
//! [`Database`].
//!
//! ## Architecture
//!
//! * **Accept loops** — one thread per listener, polling a non-blocking
//!   socket so the drain flag is observed within one poll interval. Each
//!   accepted connection gets its own thread over the `Send + Sync`
//!   [`Database`] handle.
//! * **Admission at the edge** — every execution passes through the
//!   database-wide [`omega_core::ResourceGovernor`] (token bucket,
//!   concurrency ceiling, shared tuple pool); a rejection surfaces to the
//!   client as the typed `Overloaded { retry_after }` wire error.
//! * **Prepared statements** — each connection keeps an id → statement
//!   table; the entries are [`omega_core::PreparedQuery`] clones obtained
//!   through the database's LRU cache, so two connections preparing the
//!   same text share one compiled plan.
//! * **Credit-driven streaming** — answers flow in batches only while the
//!   client has granted credits; a stalled client stalls only its own
//!   execution (which keeps holding exactly the governor resources the
//!   gauges show), never the daemon.
//! * **Cancellation on disconnect** — dropping the server-side
//!   [`omega_core::Answers`] stream triggers the execution's
//!   [`omega_core::CancelToken`]; a vanished client cancels its in-flight
//!   work within one evaluator check interval.
//! * **Graceful drain** — [`ServerHandle::shutdown`] (or a client `Shutdown`
//!   frame) stops the accept loops, ends in-flight streams at their next
//!   batch boundary with `Finished { reason: Drained }` (the answers already
//!   sent are a correct rank-order prefix), closes idle connections, and
//!   [`Server::run`] returns once every connection thread has exited — with
//!   all governor gauges back at zero.

mod conn;

use std::io::Result as IoResult;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use omega_core::{live_parallel_workers, Database};
use omega_obs::{Counter as MetricCounter, Gauge, Histogram, Registry};
use omega_protocol::{ServerStats, Transport};

/// Tunables of the serving loop. The defaults suit both tests and the
/// daemon binary.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Informational software identifier sent in the handshake reply.
    pub server_name: String,
    /// How often blocked waits (accept, idle read, credit wait) re-check
    /// the drain flag. Bounds shutdown latency from below.
    pub poll_interval: Duration,
    /// Write timeout per frame; a client that stops reading for longer is
    /// treated as gone and its execution cancelled.
    pub write_timeout: Option<Duration>,
    /// Maximum answers per `Answers` frame.
    pub batch: usize,
    /// Overlay size (in live delta edges) above which a successful `Mutate`
    /// triggers a background compaction of the graph into a fresh frozen
    /// CSR. Compaction never blocks readers or writers of the serving
    /// epoch; `0` disables the trigger.
    pub compact_threshold: usize,
    /// When set, executions slower than this many milliseconds are logged
    /// to stderr as one structured slow-query line (query text, epoch,
    /// options digest, answer count and — when requested — the per-phase
    /// profile). `Some(0)` logs every execution; `None` disables the log.
    pub slow_query_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            server_name: format!("omega-server/{}", env!("CARGO_PKG_VERSION")),
            poll_interval: Duration::from_millis(25),
            write_timeout: Some(Duration::from_secs(10)),
            batch: omega_protocol::DEFAULT_BATCH,
            compact_threshold: 8192,
            slow_query_ms: None,
        }
    }
}

/// Monotonic daemon counters, exposed through the protocol's `Stats`
/// request (alongside the governor's gauges).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections_total: AtomicU64,
    pub(crate) connections_open: AtomicU64,
    pub(crate) streams_in_flight: AtomicU64,
    pub(crate) statements_open: AtomicU64,
    pub(crate) answers_streamed: AtomicU64,
    pub(crate) sheds: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) rejected: AtomicU64,
}

/// The frame kinds the per-frame request-latency histogram distinguishes;
/// anything else (stale flow control, abuse) lands in `"other"`.
const FRAME_KINDS: [&str; 8] = [
    "prepare", "execute", "stats", "metrics", "mutate", "close", "shutdown", "other",
];

/// The daemon's handles into the database's shared metrics [`Registry`]:
/// request-latency histograms per frame kind, wire byte counters, and
/// point-in-time gauges refreshed at scrape.
pub(crate) struct ServerMetrics {
    pub(crate) bytes_in: Arc<MetricCounter>,
    pub(crate) bytes_out: Arc<MetricCounter>,
    connections_open: Arc<Gauge>,
    draining: Arc<Gauge>,
    uptime_secs: Arc<Gauge>,
    frames: Vec<(&'static str, Arc<Histogram>)>,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> ServerMetrics {
        ServerMetrics {
            bytes_in: registry.counter("omega_server_bytes_in_total", &[]),
            bytes_out: registry.counter("omega_server_bytes_out_total", &[]),
            connections_open: registry.gauge("omega_server_connections_open", &[]),
            draining: registry.gauge("omega_server_draining", &[]),
            uptime_secs: registry.gauge("omega_server_uptime_secs", &[]),
            frames: FRAME_KINDS
                .iter()
                .map(|kind| {
                    (
                        *kind,
                        registry.histogram("omega_server_frame_ns", &[("frame", kind)]),
                    )
                })
                .collect(),
        }
    }

    /// The request-latency histogram for `kind` (falling back to `other`).
    pub(crate) fn frame_ns(&self, kind: &str) -> &Arc<Histogram> {
        self.frames
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h)
            .unwrap_or(&self.frames[FRAME_KINDS.len() - 1].1)
    }
}

/// State shared by the accept loops, every connection thread and every
/// [`ServerHandle`].
pub(crate) struct Shared {
    pub(crate) db: Database,
    pub(crate) config: ServerConfig,
    pub(crate) drain: AtomicBool,
    pub(crate) counters: Counters,
    pub(crate) metrics: ServerMetrics,
    pub(crate) started: Instant,
    /// Set while a background compaction thread is running, so overlapping
    /// `Mutate` bursts trigger at most one compactor at a time.
    pub(crate) compacting: AtomicBool,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    pub(crate) fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            gauges: self.db.governor().gauges(),
            connections_total: c.connections_total.load(Ordering::SeqCst),
            connections_open: c.connections_open.load(Ordering::SeqCst),
            streams_in_flight: c.streams_in_flight.load(Ordering::SeqCst),
            statements_open: c.statements_open.load(Ordering::SeqCst),
            answers_streamed: c.answers_streamed.load(Ordering::SeqCst),
            sheds: c.sheds.load(Ordering::SeqCst),
            degraded: c.degraded.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            live_workers: live_parallel_workers() as u64,
            epoch: self.db.epoch(),
            overlay_edges: self.db.graph().overlay_edges(),
            uptime_secs: self.started.elapsed().as_secs(),
            prepared_statements: self.db.prepared_cache_len() as u64,
            wal_seq: self.db.wal_seq(),
            durable_epoch: self.db.durable_epoch(),
        }
    }

    /// Renders the full metrics exposition, refreshing the point-in-time
    /// gauges first so a scrape always sees current values.
    pub(crate) fn metrics_text(&self) -> String {
        let m = &self.metrics;
        m.connections_open
            .set(self.counters.connections_open.load(Ordering::SeqCst) as i64);
        m.draining.set(self.draining() as i64);
        m.uptime_secs.set(self.started.elapsed().as_secs() as i64);
        self.db.metrics().expose()
    }
}

/// A cloneable control handle: trigger the drain and observe the counters
/// from outside the serving threads (tests, signal handlers, monitoring).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Flips the drain flag: accept loops stop, in-flight streams end at
    /// their next batch boundary with `Finished { reason: Drained }`, idle
    /// connections close. Idempotent.
    pub fn shutdown(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Whether the drain flag is set.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Point-in-time daemon statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The full metrics exposition, as served to `Metrics` frames.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// One accept attempt; `None` when no connection is pending.
    fn try_accept(&self) -> Option<Transport> {
        match self {
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => Some(Transport::Unix(stream)),
                Err(_) => None,
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    // Frames are small and latency-sensitive; never Nagle.
                    let _ = stream.set_nodelay(true);
                    Some(Transport::Tcp(stream))
                }
                Err(_) => None,
            },
        }
    }
}

/// The daemon: listeners, accept threads and connection threads over one
/// shared [`Database`].
pub struct Server {
    shared: Arc<Shared>,
    accepts: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    unix_paths: Vec<PathBuf>,
}

impl Server {
    /// A server over `db` with default [`ServerConfig`].
    pub fn new(db: Database) -> Server {
        Server::with_config(db, ServerConfig::default())
    }

    /// A server over `db` with explicit tunables.
    pub fn with_config(db: Database, config: ServerConfig) -> Server {
        let metrics = ServerMetrics::new(db.metrics());
        Server {
            shared: Arc::new(Shared {
                db,
                config,
                drain: AtomicBool::new(false),
                counters: Counters::default(),
                metrics,
                started: Instant::now(),
                compacting: AtomicBool::new(false),
            }),
            accepts: Vec::new(),
            conns: Arc::new(Mutex::new(Vec::new())),
            unix_paths: Vec::new(),
        }
    }

    /// A control handle, cloneable into other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Point-in-time daemon statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Binds a unix-domain listener at `path` (removing a stale socket file
    /// from a previous run) and starts its accept loop.
    ///
    /// A socket file with a live listener behind it — another daemon, or a
    /// second listener of this one — is never removed: the bind fails with
    /// `AddrInUse` instead. Only a stale file (nothing accepts on it) from
    /// a crashed previous run is cleaned up.
    pub fn listen_unix<P: AsRef<Path>>(&mut self, path: P) -> IoResult<()> {
        use std::os::unix::fs::FileTypeExt;
        let path = path.as_ref();
        // A bind over a stale socket file fails with AddrInUse even when no
        // process listens, so the file must be removed first — but blindly
        // removing would silently hijack the address of a *live* daemon.
        // Probe-connect to tell the two apart.
        if let Ok(meta) = std::fs::symlink_metadata(path) {
            if !meta.file_type().is_socket() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("{} exists and is not a socket", path.display()),
                ));
            }
            if std::os::unix::net::UnixStream::connect(path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("{} is in use by a live server", path.display()),
                ));
            }
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        self.unix_paths.push(path.to_path_buf());
        self.spawn_accept(Listener::Unix(listener));
        Ok(())
    }

    /// Binds a TCP listener and starts its accept loop; returns the bound
    /// address (useful with port `0`).
    pub fn listen_tcp<A: ToSocketAddrs>(&mut self, addr: A) -> IoResult<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        self.spawn_accept(Listener::Tcp(listener));
        Ok(local)
    }

    fn spawn_accept(&mut self, listener: Listener) {
        let shared = Arc::clone(&self.shared);
        let conns = Arc::clone(&self.conns);
        self.accepts.push(std::thread::spawn(move || {
            accept_loop(listener, shared, conns);
        }));
    }

    /// Serves until drained: blocks while the accept loops run, then joins
    /// every connection thread. Returns only after the last in-flight
    /// stream has finished or been drained — at which point all governor
    /// gauges are back at zero. Unix socket files are removed on the way
    /// out.
    pub fn run(self) {
        for accept in self.accepts {
            let _ = accept.join();
        }
        loop {
            let handle = self.conns.lock().unwrap_or_else(|e| e.into_inner()).pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        for path in &self.unix_paths {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    while !shared.draining() {
        match listener.try_accept() {
            Some(transport) => {
                shared
                    .counters
                    .connections_total
                    .fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    conn::connection(conn_shared, transport);
                });
                let mut guard = conns.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished threads so a long-running daemon's handle
                // list tracks open connections, not historical ones.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            None => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

/// Increments a counter for the guard's lifetime (connection and stream
/// gauges stay exact even on panicking paths).
pub(crate) struct CounterGuard<'a>(&'a AtomicU64);

impl<'a> CounterGuard<'a> {
    pub(crate) fn enter(counter: &'a AtomicU64) -> CounterGuard<'a> {
        counter.fetch_add(1, Ordering::SeqCst);
        CounterGuard(counter)
    }
}

impl Drop for CounterGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}
